"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` also works on environments whose setuptools
lacks the ``bdist_wheel``/PEP-660 editable path (e.g. offline boxes
without the ``wheel`` package).
"""

from setuptools import setup

setup()
