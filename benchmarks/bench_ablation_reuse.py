"""Ablation: reuse alternation x stall policy (Section 3.5, Step 3).

The paper justifies alternating OFM/IFM reuse across consecutive layers
by observing that a uniform strategy stalls the pipeline.  This bench
crosses the three ordering strategies with the two runtime policies
over the Figure 8 architecture set, isolating two mechanisms:

* under strict **in-order** execution, alternation avoids the stalls a
  uniform strategy incurs (the paper's observation);
* the **ready-to-run queue** (principle P3) independently hides those
  stalls, so with the queue enabled the strategies converge.
"""

from repro.experiments.ablation import run_reuse_ablation


def test_reuse_ablation(once, emit):
    result = once(run_reuse_ablation)

    emit("\n=== Reuse-strategy x policy ablation (cycles) ===")
    emit(result.format())
    emit(f"in-order: alternating <= uniform-OFM on "
          f"{result.win_or_tie_rate('alt/inorder', 'ofm/inorder'):.0%}; "
          f"<= uniform-IFM on "
          f"{result.win_or_tie_rate('alt/inorder', 'ifm/inorder'):.0%}")
    emit(f"queue rescues uniform-OFM: mean ofm/queue vs ofm/inorder = "
          f"{result.mean_ratio('ofm/queue', 'ofm/inorder'):.2f}")

    # Paper's observation: in-order + uniform stalls; alternation avoids it.
    assert result.win_or_tie_rate("alt/inorder", "ofm/inorder") >= 0.9
    assert result.win_or_tie_rate("alt/inorder", "ifm/inorder") >= 0.9
    # The ready queue on its own removes most of the uniform-OFM stalls.
    assert result.mean_ratio("ofm/queue", "ofm/inorder") < 0.95
    # With the queue, alternating and uniform-OFM are nearly equivalent.
    assert 0.9 <= result.mean_ratio("alt/queue", "ofm/queue") <= 1.15
