"""Shard-level memoization: re-submit cost vs cold execution.

Runs one FNAS sweep cold through a persistent result store, then

* re-submits the identical sweep -- every shard must be served from
  the store (zero executions), and
* re-submits the sweep with **one changed timing spec** -- exactly one
  shard (the novel one) may execute; the rest are cache hits.

Correctness bars: the warm merged result is byte-identical to the cold
one (canonical scrubbed bytes), and the executed-shard counts are
exact, not approximate.  Emits the measurements as
``BENCH_store_memo.json`` next to the repo root so trajectory tooling
can track the re-submit cost across PRs.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.events import SearchStarted, ShardCached
from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service.executor import execute_plan
from repro.service.store import (
    ResultStore,
    canonical_payload_bytes,
    encode_result,
)

SPECS_A = (2.5, 5.0, 7.5, 10.0)
SPECS_B = (2.5, 5.0, 8.0, 10.0)  # one changed spec: 7.5 -> 8.0
TRIALS = 600

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store_memo.json"


def _sweep(specs):
    return RunPlan(
        workload="sweep",
        search=SearchPlan(trials=TRIALS),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=specs),
    )


def _run(plan, store):
    """Execute one sweep; returns (result, executed_ids, cached_ids)."""
    executed, cached = [], []

    def watch(event):
        if isinstance(event, ShardCached):
            cached.append(event.shard_id)
        elif isinstance(event, SearchStarted) and event.shard_id != "sweep":
            executed.append(event.shard_id)

    result = execute_plan(plan, emit=watch, store=store)
    return result, executed, cached


def run_memo() -> dict:
    """Cold sweep, warm re-submit, one-changed-spec re-submit."""
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        cold, cold_exec, cold_cached = _run(_sweep(SPECS_A), store)
        warm, warm_exec, warm_cached = _run(_sweep(SPECS_A), store)
        changed, changed_exec, changed_cached = _run(_sweep(SPECS_B), store)
    cold_bytes = canonical_payload_bytes(
        encode_result(_sweep(SPECS_A), cold)
    )
    warm_bytes = canonical_payload_bytes(
        encode_result(_sweep(SPECS_A), warm)
    )
    return {
        "shards": len(SPECS_A),
        "trials_per_shard": TRIALS,
        "cold": {"wall_seconds": cold.wall_seconds,
                 "executed": len(cold_exec), "cached": len(cold_cached)},
        "warm": {"wall_seconds": warm.wall_seconds,
                 "executed": len(warm_exec), "cached": len(warm_cached)},
        "one_changed_spec": {
            "wall_seconds": changed.wall_seconds,
            "executed": len(changed_exec), "cached": len(changed_cached),
            "executed_ids": changed_exec,
        },
        "warm_bytes_identical": warm_bytes == cold_bytes,
        "resubmit_speedup": cold.wall_seconds / max(
            changed.wall_seconds, 1e-9
        ),
    }


def test_store_memo(once, emit):
    data = once(run_memo)

    emit("\n=== Shard memoization: re-submit cost (FNAS, MNIST/PYNQ) ===")
    emit(f"{'run':>18} {'executed':>8} {'cached':>6} {'wall(s)':>8}")
    for label in ("cold", "warm", "one_changed_spec"):
        row = data[label]
        emit(f"{label:>18} {row['executed']:>8} {row['cached']:>6} "
             f"{row['wall_seconds']:>8.3f}")
    emit(f"one-changed-spec re-submit: {data['resubmit_speedup']:.1f}x "
         "faster than cold")

    OUTPUT_PATH.write_text(json.dumps(
        {"benchmark": "store_memo", **data}, indent=2
    ) + "\n")
    emit(f"wrote {OUTPUT_PATH.name}")

    # The acceptance bars, exact by construction.
    assert data["cold"] == {
        "wall_seconds": data["cold"]["wall_seconds"],
        "executed": len(SPECS_A), "cached": 0,
    }
    assert data["warm"]["executed"] == 0
    assert data["warm"]["cached"] == len(SPECS_A)
    assert data["warm_bytes_identical"]
    assert data["one_changed_spec"]["executed"] == 1
    assert data["one_changed_spec"]["executed_ids"] == [
        "mnist-pynq-z1-fnas8ms-s0"
    ]
    assert data["one_changed_spec"]["cached"] == len(SPECS_A) - 1
    # The changed re-submit pays ~one shard, not four: strictly cheaper
    # than cold by a comfortable margin even on noisy runners.
    assert data["resubmit_speedup"] > 1.5
