"""Search throughput: sequential seed path vs the batched runtime.

Measures trials/sec for the FNAS loop (MNIST space, PYNQ-Z1, 5 ms spec,
surrogate evaluator) in three configurations:

* ``sequential-seed`` -- ``batch_size=1`` with the layer-level tiling
  memo disabled: the exact wall-clock profile (and trajectory) of the
  pre-refactor seed code.
* ``sequential-cached`` -- ``batch_size=1`` with the two-tier cache on:
  isolates the tier-1 (cross-fingerprint layer memo) win.
* ``batched`` -- ``batch_size=32`` with the full batched runtime:
  vectorized controller steps + two-tier cached batch estimation.

Emits the measurements as ``BENCH_search_throughput.json`` next to the
repo root so trajectory tooling can track throughput across PRs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.controller import LstmController
from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.core.search import FnasSearch
from repro.core.search_space import SearchSpace
from repro.configs import MNIST_CONFIG
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator

TRIALS = 1200
SPEC_MS = 5.0
BATCH_SIZE = 32

OUTPUT_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_search_throughput.json"
)


@dataclass(frozen=True)
class ThroughputPoint:
    """One measured search configuration."""

    mode: str
    batch_size: int
    trials: int
    wall_seconds: float
    trials_per_second: float
    trained: int
    pruned: int
    arch_cache_hit_rate: float
    layer_memo_hit_rate: float


def run_mode(mode: str, batch_size: int, use_layer_memo: bool) -> ThroughputPoint:
    """Run one FNAS search configuration and collect its metrics."""
    space = SearchSpace.from_config(MNIST_CONFIG)
    estimator = LatencyEstimator(
        Platform.single(PYNQ_Z1), use_layer_memo=use_layer_memo
    )
    search = FnasSearch(
        space,
        SurrogateAccuracyEvaluator(space),
        estimator,
        required_latency_ms=SPEC_MS,
        controller=LstmController(space, seed=0),
    )
    result = search.run(
        TRIALS, np.random.default_rng(0), batch_size=batch_size
    )
    return ThroughputPoint(
        mode=mode,
        batch_size=batch_size,
        trials=TRIALS,
        wall_seconds=result.wall_seconds,
        trials_per_second=TRIALS / result.wall_seconds,
        trained=result.trained_count,
        pruned=result.pruned_count,
        arch_cache_hit_rate=estimator.stats.hit_rate,
        layer_memo_hit_rate=estimator.layer_memo_stats.hit_rate,
    )


def run_best_of(reps: int, mode: str, batch_size: int,
                use_layer_memo: bool) -> ThroughputPoint:
    """Best throughput over ``reps`` identical runs.

    Each run is deterministic (same seed), so repetition only absorbs
    wall-clock noise -- noisy-neighbour CI runners, throttling, GC --
    and the fastest run is the honest measurement of each mode.
    """
    points = [
        run_mode(mode, batch_size, use_layer_memo) for _ in range(reps)
    ]
    return max(points, key=lambda p: p.trials_per_second)


def run_throughput_comparison() -> list[ThroughputPoint]:
    """All three configurations, sequential seed path first."""
    return [
        run_best_of(2, "sequential-seed", batch_size=1, use_layer_memo=False),
        run_best_of(2, "sequential-cached", batch_size=1, use_layer_memo=True),
        run_best_of(2, "batched", batch_size=BATCH_SIZE, use_layer_memo=True),
    ]


def test_search_throughput(once, emit):
    points = once(run_throughput_comparison)
    seed, cached, batched = points
    speedup = batched.trials_per_second / seed.trials_per_second

    emit("\n=== Search throughput (FNAS, MNIST/PYNQ, 5ms spec) ===")
    header = (f"{'mode':<18} {'bs':>3} {'trials/s':>9} {'wall(s)':>8} "
              f"{'arch-hit':>8} {'layer-hit':>9}")
    emit(header)
    for p in points:
        emit(f"{p.mode:<18} {p.batch_size:>3} {p.trials_per_second:>9.1f} "
             f"{p.wall_seconds:>8.3f} {p.arch_cache_hit_rate:>8.2f} "
             f"{p.layer_memo_hit_rate:>9.2f}")
    emit(f"batched vs sequential-seed: {speedup:.2f}x")

    OUTPUT_PATH.write_text(json.dumps(
        {
            "benchmark": "search_throughput",
            "trials": TRIALS,
            "spec_ms": SPEC_MS,
            "points": [asdict(p) for p in points],
            "batched_speedup_vs_seed": speedup,
        },
        indent=2,
    ) + "\n")
    emit(f"wrote {OUTPUT_PATH.name}")

    # The acceptance bar: the batched runtime must at least double the
    # seed path's throughput, and the layer memo must actually fire.
    assert speedup >= 2.0, (
        f"batched search only {speedup:.2f}x over the sequential seed path"
    )
    assert batched.layer_memo_hit_rate > 0.0, (
        "layer-level cache never hit across fingerprints"
    )
    # Loose tripwire: the layer memo must never make the sequential
    # path meaningfully slower (generous margin for runner noise).
    assert (cached.trials_per_second
            >= 0.75 * seed.trials_per_second)
