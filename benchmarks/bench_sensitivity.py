"""Seed-sensitivity: the Table 1 shape must hold for every seed.

Reruns the Table 1 protocol over five seeds; the paper's three claims
(spec always met, <1% loss, real speedup) are asserted across all of
them, not just the seed used in EXPERIMENTS.md.
"""

from repro.experiments.sensitivity import run_sensitivity


def test_seed_sensitivity(once, emit):
    result = once(run_sensitivity, seeds=(0, 1, 2, 3, 4))

    emit("\n=== Table 1 across 5 seeds ===")
    emit(result.format())

    assert result.shape_holds_everywhere(), (
        "a seed broke one of the paper's claims")
    # Speedup ordering (tighter => faster search) holds on the means.
    means = [s.speedup_mean for s in result.stats]
    assert means == sorted(means)
