"""Federation throughput and failover recovery latency.

Two measurements against a live HTTP coordinator:

* **throughput** -- the same batch of CPU-bound single-search plans
  (distinct seeds, nothing dedups) pushed through 1 worker agent and
  then through 2, measuring end-to-end jobs/second.  Each agent runs
  one job at a time in its own subprocess, so on a multi-core host two
  agents should beat one by a clear margin (the scaling bar is skipped
  loudly below 4 cores, where two busy agents plus the coordinator
  cannot all run at once).

* **recovery latency** -- one agent armed (via ``REPRO_CRASH_POINTS``)
  to SIGKILL itself mid event stream while holding the lease on a job;
  measures how long after the agent's death the coordinator expires
  the lease and re-queues the job, and how long until the job still
  completes (locally, zero agents left) with a full result.

Emits the measurements as ``BENCH_federation.json`` next to the repo
root so trajectory tooling can track federation scaling across PRs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service.agent import WorkerAgent
from repro.service.client import ServiceClient
from repro.service.faults import CRASH_POINTS_ENV
from repro.service.http import make_server

JOBS = 4
TRIALS = 300
RECOVERY_TRIALS = 600
LEASE_SECONDS = 1.0

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_federation.json"
SRC = REPO_ROOT / "src"


@dataclass(frozen=True)
class ThroughputPoint:
    """One measured (agent count) federation configuration."""

    agents: int
    jobs: int
    trials_per_job: int
    wall_seconds: float
    jobs_per_second: float


def _plans(trials=TRIALS):
    return [
        RunPlan(
            workload="search",
            search=SearchPlan(seed=seed, trials=trials),
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  specs_ms=(5.0,)),
        )
        for seed in range(JOBS)
    ]


class _Coordinator:
    """A live HTTP coordinator over throwaway directories."""

    def __init__(self, tmp_path, lease_seconds=LEASE_SECONDS):
        self.server = make_server(
            port=0, workers=1,
            store_dir=str(tmp_path / "store"),
            checkpoint_dir=str(tmp_path / "ckpt"),
            lease_seconds=lease_seconds)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True)
        self.thread.start()
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.server.service.shutdown(wait=True, cancel_running=True)
        self.thread.join(timeout=30)


def _run_throughput(tmp_path, agent_count) -> ThroughputPoint:
    """Push every plan through ``agent_count`` in-process agents."""
    coordinator = _Coordinator(tmp_path / f"agents-{agent_count}")
    client = ServiceClient(coordinator.url)
    agents = [WorkerAgent(coordinator.url, name=f"bench-{i}",
                          poll_seconds=0.02)
              for i in range(agent_count)]
    runners = []
    try:
        for agent in agents:
            agent.register()
        started = time.perf_counter()
        submitted = [client.submit(plan) for plan in _plans()]
        for agent in agents:
            runner = threading.Thread(target=agent.run, daemon=True)
            runner.start()
            runners.append(runner)
        for info in submitted:
            final = client.wait(info["job_id"], timeout=3600)
            assert final["state"] == "done", final
        wall = time.perf_counter() - started
    finally:
        for agent in agents:
            agent.stop()
        for runner in runners:
            runner.join(timeout=60)
        coordinator.close()
    return ThroughputPoint(
        agents=agent_count, jobs=JOBS, trials_per_job=TRIALS,
        wall_seconds=wall, jobs_per_second=JOBS / wall,
    )


def _run_recovery(tmp_path) -> dict:
    """Kill a lease holder; time the re-queue and the completion."""
    coordinator = _Coordinator(tmp_path / "recovery")
    client = ServiceClient(coordinator.url)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env[CRASH_POINTS_ENV] = "agent.event=3"  # die mid event stream
    doomed = subprocess.Popen(
        [sys.executable, "-m", "repro", "agent",
         "--coordinator", coordinator.url,
         "--agent-id", "doomed", "--name", "doomed",
         "--poll-seconds", "0.05", "--max-jobs", "1"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.health()["agents"] == 1:
                break
            time.sleep(0.02)
        assert client.health()["agents"] == 1, "agent never registered"
        plan = _plans(trials=RECOVERY_TRIALS)[0]
        info = client.submit(plan)
        job_id = info["job_id"]
        assert doomed.wait(timeout=120) == -9
        died_at = time.perf_counter()
        requeue_latency = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            events = client.events(job_id)["events"]
            if any(e["event"] == "lease-expired" for e in events):
                requeue_latency = time.perf_counter() - died_at
                break
            time.sleep(0.01)
        assert requeue_latency is not None, "lease never expired"
        final = client.wait(job_id, timeout=600)
        completion_latency = time.perf_counter() - died_at
        assert final["state"] == "done", final
        result = json.loads(client.result_bytes(job_id))
        assert len(result["trials"]) == RECOVERY_TRIALS
    finally:
        if doomed.poll() is None:
            doomed.kill()
            doomed.wait(timeout=30)
        coordinator.close()
    return {
        "lease_seconds": LEASE_SECONDS,
        "trials": RECOVERY_TRIALS,
        "requeue_latency_seconds": requeue_latency,
        "completion_latency_seconds": completion_latency,
    }


def run_federation(tmp_path):
    """Measure throughput at 1 and 2 agents, then recovery latency."""
    points = [_run_throughput(tmp_path, count) for count in (1, 2)]
    recovery = _run_recovery(tmp_path)
    return points, recovery


def test_federation_throughput_and_recovery(tmp_path, once, emit):
    points, recovery = once(run_federation, tmp_path)
    single, double = points
    speedup = double.jobs_per_second / single.jobs_per_second
    cores = os.cpu_count() or 1

    emit("\n=== Federation throughput (jobs/s vs agent count) ===")
    emit(f"host cpu_count: {cores}")
    emit(f"{'agents':>6} {'jobs':>5} {'trials':>6} {'wall(s)':>8} "
         f"{'jobs/s':>7}")
    for p in points:
        emit(f"{p.agents:>6} {p.jobs:>5} {p.trials_per_job:>6} "
             f"{p.wall_seconds:>8.3f} {p.jobs_per_second:>7.3f}")
    emit(f"2 agents vs 1: {speedup:.2f}x")
    emit(f"recovery after SIGKILL (lease {recovery['lease_seconds']}s): "
         f"re-queued in {recovery['requeue_latency_seconds']:.2f}s, "
         f"completed in {recovery['completion_latency_seconds']:.2f}s")

    OUTPUT_PATH.write_text(json.dumps(
        {
            "benchmark": "federation_throughput_and_recovery",
            "cpu_count": cores,
            "jobs": JOBS,
            "trials_per_job": TRIALS,
            "throughput": [asdict(p) for p in points],
            "two_agent_speedup": speedup,
            "recovery": recovery,
        },
        indent=2,
    ) + "\n")
    emit(f"wrote {OUTPUT_PATH.name}")

    # Recovery must be lease-bounded: the coordinator has to notice the
    # dead agent within a few lease terms, not "eventually".
    assert recovery["requeue_latency_seconds"] < LEASE_SECONDS * 5 + 2.0, (
        recovery
    )
    if cores < 4:
        pytest.skip(
            f"agent-scaling bar needs >= 4 cores, host has {cores}; "
            f"measured {speedup:.2f}x ({OUTPUT_PATH.name} written)"
        )
    # Two single-job agents over one: comfortably parallel, even with
    # coordinator overhead in the loop.
    assert speedup >= 1.3, (
        f"2 agents only {speedup:.2f}x over 1 on {cores} cores"
    )
