"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one table or figure of the paper at
full scale (Table 2's 60 trials), asserts the paper's qualitative
shape, and prints the reproduced rows/series so the tee'd benchmark log
doubles as the reproduction record.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture
def emit(request):
    """Print through pytest's capture: each bench emits the table/figure
    it regenerates, and that output *is* the reproduction record (the
    benchmark log is tee'd to bench_output.txt)."""
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def _emit(*parts):
        text = "\n".join(str(p) for p in parts)
        if capman is None:
            print(text)
        else:
            with capman.global_and_fixture_disabled():
                print(text)

    return _emit


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (searches are expensive
    and deterministic; statistical repetition adds nothing)."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
