"""Figure 8: FNAS-Sched vs fixed scheduling, 16 architectures on PYNQ.

Paper shape: FNAS-Sched consistently beats the fixed scheduler of
Zhang et al. (improvements of 8.59-15.63% in the paper).  One
architecture (uniform 64-64-64-64) ties in this reproduction: its
single-input-channel first layer makes the fixed order stall-free too
(documented in EXPERIMENTS.md).
"""

from repro.experiments.figure8 import run_figure8


def test_figure8(once, emit):
    result = once(run_figure8)

    emit("\n=== Figure 8 (reproduced) ===")
    emit(result.format())
    emit(f"mean improvement: {result.mean_improvement_percent:.2f}%")

    assert len(result.points) == 16
    wins = sum(1 for p in result.points if p.fnas_cycles < p.fixed_cycles)
    assert wins >= 15, "FNAS-Sched must win on (almost) every architecture"
    for p in result.points:
        assert p.fnas_cycles <= p.fixed_cycles, (
            f"arch {p.filter_counts}: FNAS-Sched slower than fixed")
    assert result.mean_improvement_percent > 8.0, (
        "mean cycle reduction should be at least the paper's low end")
