"""Figure 7: accuracy loss / search-time reduction vs TS, three datasets.

Paper shape: losses under 1% everywhere, growing as the spec tightens;
search-time reduction growing as the spec tightens (peaks: 11.13x
MNIST, 10.89x CIFAR-10, 10.38x ImageNet).
"""

from repro.experiments.figure7 import run_figure7


def test_figure7(once, emit):
    result = once(run_figure7, seed=0)

    emit("\n=== Figure 7 (reproduced) ===")
    emit(result.format())

    for dataset in ("mnist", "cifar10", "imagenet"):
        points = result.points_for(dataset)
        assert len(points) == 4
        # (a) accuracy loss below 1% whenever a valid child exists.
        for p in points:
            if p.found_valid:
                assert p.accuracy_loss < 0.01, (
                    f"{dataset}/{p.spec_name}: loss {p.accuracy_loss:.4f}")
        # (b) search-time reduction grows from the loosest to the
        # tightest spec.
        assert points[-1].time_reduction > points[0].time_reduction
        assert all(p.time_reduction > 0.9 for p in points)
        # FNAS's chosen architecture meets each spec.
        for p in points:
            if p.found_valid:
                assert p.fnas_latency_ms <= p.spec_ms
