"""Campaign shard scaling: serial vs pooled shard execution.

Runs the same (seed x spec) FNAS shard grid (MNIST space, PYNQ-Z1)
serially and across worker pools of increasing size, asserting

* correctness -- every worker count merges to the identical campaign
  frontier and per-shard ledgers, and
* scaling -- on a >= 4 core host the best pooled campaign clears
  >= 2x serial throughput.  The pool is the persistent
  :class:`~repro.service.pool.WorkerPool` (workers are reused across
  shards, the tiling memo's disk tier is shared), so pool startup no
  longer eats the win the way the old per-run executor did.  Below
  4 cores the pooled campaign cannot physically run enough shards at
  once, so the scaling assertion skips loudly; the correctness one
  never does.

Emits the measurements as ``BENCH_campaign.json`` next to the repo root
so trajectory tooling can track shard scaling across PRs.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import pytest

from repro.orchestration import run_campaign, shard_grid

SEEDS = (0, 1, 2, 3)
SPECS_MS = (10.0, 5.0)
TRIALS = 600
WORKER_COUNTS = (1, 2, 4)

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


@dataclass(frozen=True)
class CampaignPoint:
    """One measured campaign configuration."""

    max_workers: int
    shards: int
    total_trials: int
    wall_seconds: float
    trials_per_second: float
    frontier_points: int


def _grid():
    return shard_grid(
        ["mnist"], ["pynq-z1"], seeds=list(SEEDS), specs_ms=list(SPECS_MS),
        trials=TRIALS,
    )


def _ledger_fingerprint(result) -> str:
    """Worker-count-independent digest of the merged campaign output."""
    payload = result.to_dict()
    stable = {
        "shards": [
            {"spec": s["spec"], "trials": s["result"]["trials"]}
            for s in payload["shards"]
        ],
        "frontier": payload["frontier"],
    }
    return json.dumps(stable, sort_keys=True)


def run_scaling() -> tuple[list[CampaignPoint], list[str]]:
    """Run the grid at each worker count; returns points + fingerprints."""
    points: list[CampaignPoint] = []
    fingerprints: list[str] = []
    for workers in WORKER_COUNTS:
        result = run_campaign(_grid(), max_workers=workers)
        points.append(
            CampaignPoint(
                max_workers=workers,
                shards=len(result.outcomes),
                total_trials=result.total_trials,
                wall_seconds=result.wall_seconds,
                trials_per_second=result.total_trials / result.wall_seconds,
                frontier_points=len(result.frontier.points),
            )
        )
        fingerprints.append(_ledger_fingerprint(result))
    return points, fingerprints


def test_campaign_scaling(once, emit):
    points, fingerprints = once(run_scaling)
    serial = points[0]
    best_pooled = max(points[1:], key=lambda p: p.trials_per_second)
    speedup = best_pooled.trials_per_second / serial.trials_per_second

    cores = os.cpu_count() or 1
    emit("\n=== Campaign shard scaling (FNAS, MNIST/PYNQ) ===")
    emit(f"host cpu_count: {cores}")
    emit(f"{'workers':>7} {'shards':>6} {'trials':>6} {'wall(s)':>8} "
         f"{'trials/s':>9}")
    for p in points:
        emit(f"{p.max_workers:>7} {p.shards:>6} {p.total_trials:>6} "
             f"{p.wall_seconds:>8.3f} {p.trials_per_second:>9.1f}")
    emit(f"best pooled vs serial: {speedup:.2f}x")

    OUTPUT_PATH.write_text(json.dumps(
        {
            "benchmark": "campaign_scaling",
            # cpu_count leads: the scaling numbers below are
            # meaningless without knowing the host's parallelism.
            "cpu_count": cores,
            "seeds": list(SEEDS),
            "specs_ms": list(SPECS_MS),
            "trials_per_shard": TRIALS,
            "points": [asdict(p) for p in points],
            "pooled_speedup_vs_serial": speedup,
        },
        indent=2,
    ) + "\n")
    emit(f"wrote {OUTPUT_PATH.name}")

    # Correctness first: identical merged ledgers at every worker count.
    assert all(f == fingerprints[0] for f in fingerprints[1:]), (
        "pooled campaigns merged to a different result than serial"
    )
    # Scaling bar: 8 independent shards on persistent, reused workers
    # must clear 2x serial once 4 shards genuinely run at a time.
    # Below 4 cores the pool cannot physically do that, so skip loudly
    # (a green check on a 2-core runner would be a lie).
    if cores < 4:
        pytest.skip(
            f"scaling bar needs >= 4 cores, host has {cores}; "
            f"measured {speedup:.2f}x (correctness already asserted, "
            f"{OUTPUT_PATH.name} written)"
        )
    assert speedup >= 2.0, (
        f"pooled campaign only {speedup:.2f}x over serial shard "
        f"execution on {cores} cores"
    )
