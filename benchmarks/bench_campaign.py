"""Campaign shard scaling: serial vs pooled shard execution.

Runs the same (seed x spec) FNAS shard grid (MNIST space, PYNQ-Z1)
serially and across process pools of increasing size, asserting

* correctness -- every worker count merges to the identical campaign
  frontier and per-shard ledgers, and
* scaling -- on a multi-core host, the pooled campaign completes
  faster than serial (generous bar: CI runners are noisy and pool
  startup is amortised over a short run).  On a single core the
  scaling assertion is vacuous and skipped; the correctness one is
  not.

Emits the measurements as ``BENCH_campaign.json`` next to the repo root
so trajectory tooling can track shard scaling across PRs.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.orchestration import run_campaign, shard_grid

SEEDS = (0, 1, 2, 3)
SPECS_MS = (10.0, 5.0)
TRIALS = 600
WORKER_COUNTS = (1, 2, 4)

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


@dataclass(frozen=True)
class CampaignPoint:
    """One measured campaign configuration."""

    max_workers: int
    shards: int
    total_trials: int
    wall_seconds: float
    trials_per_second: float
    frontier_points: int


def _grid():
    return shard_grid(
        ["mnist"], ["pynq-z1"], seeds=list(SEEDS), specs_ms=list(SPECS_MS),
        trials=TRIALS,
    )


def _ledger_fingerprint(result) -> str:
    """Worker-count-independent digest of the merged campaign output."""
    payload = result.to_dict()
    stable = {
        "shards": [
            {"spec": s["spec"], "trials": s["result"]["trials"]}
            for s in payload["shards"]
        ],
        "frontier": payload["frontier"],
    }
    return json.dumps(stable, sort_keys=True)


def run_scaling() -> tuple[list[CampaignPoint], list[str]]:
    """Run the grid at each worker count; returns points + fingerprints."""
    points: list[CampaignPoint] = []
    fingerprints: list[str] = []
    for workers in WORKER_COUNTS:
        result = run_campaign(_grid(), max_workers=workers)
        points.append(
            CampaignPoint(
                max_workers=workers,
                shards=len(result.outcomes),
                total_trials=result.total_trials,
                wall_seconds=result.wall_seconds,
                trials_per_second=result.total_trials / result.wall_seconds,
                frontier_points=len(result.frontier.points),
            )
        )
        fingerprints.append(_ledger_fingerprint(result))
    return points, fingerprints


def test_campaign_scaling(once, emit):
    points, fingerprints = once(run_scaling)
    serial = points[0]
    best_pooled = max(points[1:], key=lambda p: p.trials_per_second)
    speedup = best_pooled.trials_per_second / serial.trials_per_second

    emit("\n=== Campaign shard scaling (FNAS, MNIST/PYNQ) ===")
    emit(f"{'workers':>7} {'shards':>6} {'trials':>6} {'wall(s)':>8} "
         f"{'trials/s':>9}")
    for p in points:
        emit(f"{p.max_workers:>7} {p.shards:>6} {p.total_trials:>6} "
             f"{p.wall_seconds:>8.3f} {p.trials_per_second:>9.1f}")
    emit(f"best pooled vs serial: {speedup:.2f}x")

    cores = os.cpu_count() or 1
    OUTPUT_PATH.write_text(json.dumps(
        {
            "benchmark": "campaign_scaling",
            "seeds": list(SEEDS),
            "specs_ms": list(SPECS_MS),
            "trials_per_shard": TRIALS,
            "cpu_count": cores,
            "points": [asdict(p) for p in points],
            "pooled_speedup_vs_serial": speedup,
        },
        indent=2,
    ) + "\n")
    emit(f"wrote {OUTPUT_PATH.name}")

    # Correctness first: identical merged ledgers at every worker count.
    assert all(f == fingerprints[0] for f in fingerprints[1:]), (
        "pooled campaigns merged to a different result than serial"
    )
    # Scaling bar: with 8 independent shards and >1 core, some pool size
    # must beat serial.  1.2x is deliberately conservative -- pool
    # startup and result pickling eat into short CI runs -- and the bar
    # is vacuous on a single core, where pooling cannot win.
    if cores >= 2:
        assert speedup >= 1.2, (
            f"pooled campaign only {speedup:.2f}x over serial shard "
            f"execution on {cores} cores"
        )
    else:
        emit(f"(single core: scaling bar skipped, measured {speedup:.2f}x)")
