"""Micro-benchmarks of the FNAS tool itself.

The paper's efficiency argument rests on the analytical model being
orders of magnitude cheaper than simulation (let alone HLS/RTL flows).
These benches measure both paths on a MNIST-space architecture and
check the accuracy relationship (analyzer = tight lower bound).

The memory-hierarchy extension adds a DRAM-bound vs compute-bound
pair: the same depthwise-separable pipeline on the wide- and
narrow-DDR catalog variants of one fabric, emitted as
``BENCH_latency_model.json`` so trajectory tooling can track the
modeled memory sensitivity across PRs.
"""

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1, XC7Z020_DDR_NARROW, XC7Z020_DDR_WIDE
from repro.fpga.platform import Platform
from repro.fpga.tiling import TilingDesigner
from repro.latency.analyzer import FnasAnalyzer
from repro.latency.estimator import LatencyEstimator

OUTPUT_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_latency_model.json")


@pytest.fixture
def arch():
    return Architecture.from_choices(
        [7, 7, 7, 7], [36, 36, 36, 36], input_size=28, input_channels=1
    )


def test_analytical_estimate_speed(benchmark, arch):
    platform = Platform.single(PYNQ_Z1)

    def estimate():
        estimator = LatencyEstimator(platform)  # fresh: no cache hits
        return estimator.estimate(arch)

    result = benchmark(estimate)
    assert result.cycles > 0


def test_simulated_estimate_speed(benchmark, arch):
    platform = Platform.single(PYNQ_Z1)

    def estimate():
        estimator = LatencyEstimator(platform, method="simulate")
        return estimator.estimate(arch)

    result = benchmark(estimate)
    assert result.cycles > 0


def test_analyzer_is_tight_lower_bound(benchmark, arch):
    platform = Platform.single(PYNQ_Z1)
    analytical = LatencyEstimator(platform).estimate(arch)
    simulated = LatencyEstimator(platform, method="simulate").estimate(arch)

    def compare():
        return simulated.cycles - analytical.cycles

    gap = benchmark(compare)
    assert gap >= 0
    # Tightness: within 5% on this stall-free pipeline.
    assert gap <= 0.05 * simulated.cycles


def _phase_profile(device):
    """Analyze one separable pipeline on ``device``; summarize bounds."""
    arch = Architecture.from_choices(
        [5, 5], [32, 32], input_size=28, input_channels=3,
        conv_types=["separable", "separable"],
    )
    design = TilingDesigner().design(arch, Platform.single(device))
    report = FnasAnalyzer().analyze(design)
    bounds = Counter(layer.bound for layer in report.layers)
    return {
        "device": device.name,
        "effective_bandwidth_gbps": round(
            device.dram.effective_bandwidth_gbps(device.dram.burst_beats),
            4),
        "total_cycles": report.total_cycles,
        "latency_ms": round(
            report.total_cycles / (device.clock_mhz * 1e3), 4),
        "bounds": dict(sorted(bounds.items())),
    }


def test_dram_bound_vs_compute_bound_pair(once, emit):
    """The same dw pipeline, bandwidth-rich vs bandwidth-starved."""

    def profile_pair():
        wide = _phase_profile(XC7Z020_DDR_WIDE)
        narrow = _phase_profile(XC7Z020_DDR_NARROW)
        return {
            "compute_bound": wide,
            "dram_bound": narrow,
            "memory_slowdown": round(
                narrow["total_cycles"] / wide["total_cycles"], 2),
        }

    data = once(profile_pair)

    emit("\n=== Memory hierarchy: dw pipeline, wide vs narrow DDR ===")
    for label in ("compute_bound", "dram_bound"):
        row = data[label]
        emit(f"{row['device']:>22} {row['effective_bandwidth_gbps']:>7.2f} "
             f"GB/s  {row['total_cycles']:>9} cycles  bounds={row['bounds']}")
    emit(f"memory slowdown: {data['memory_slowdown']}x")

    OUTPUT_PATH.write_text(json.dumps(
        {"benchmark": "latency_model", **data}, indent=2
    ) + "\n")
    emit(f"wrote {OUTPUT_PATH.name}")

    # The pair is the point: same fabric, opposite regimes.
    assert set(data["compute_bound"]["bounds"]) == {"compute"}
    assert data["dram_bound"]["bounds"].get("load", 0) >= 1
    assert data["memory_slowdown"] > 2.0
