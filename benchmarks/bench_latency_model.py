"""Micro-benchmarks of the FNAS tool itself.

The paper's efficiency argument rests on the analytical model being
orders of magnitude cheaper than simulation (let alone HLS/RTL flows).
These benches measure both paths on a MNIST-space architecture and
check the accuracy relationship (analyzer = tight lower bound).
"""

import pytest

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator


@pytest.fixture
def arch():
    return Architecture.from_choices(
        [7, 7, 7, 7], [36, 36, 36, 36], input_size=28, input_channels=1
    )


def test_analytical_estimate_speed(benchmark, arch):
    platform = Platform.single(PYNQ_Z1)

    def estimate():
        estimator = LatencyEstimator(platform)  # fresh: no cache hits
        return estimator.estimate(arch)

    result = benchmark(estimate)
    assert result.cycles > 0


def test_simulated_estimate_speed(benchmark, arch):
    platform = Platform.single(PYNQ_Z1)

    def estimate():
        estimator = LatencyEstimator(platform, method="simulate")
        return estimator.estimate(arch)

    result = benchmark(estimate)
    assert result.cycles > 0


def test_analyzer_is_tight_lower_bound(benchmark, arch):
    platform = Platform.single(PYNQ_Z1)
    analytical = LatencyEstimator(platform).estimate(arch)
    simulated = LatencyEstimator(platform, method="simulate").estimate(arch)

    def compare():
        return simulated.cycles - analytical.cycles

    gap = benchmark(compare)
    assert gap >= 0
    # Tightness: within 5% on this stall-free pipeline.
    assert gap <= 0.05 * simulated.cycles
