"""Figure 6: search time / latency / accuracy on two FPGAs (MNIST).

Paper shape: FNAS search time shrinks as the spec tightens (2.56x /
3.22x / 11.13x on the 7Z020); FNAS latency always meets the spec while
NAS's single architecture exceeds it by 2.54-7.81x; accuracy
degradation stays under a point.
"""

from repro.experiments.figure6 import run_figure6


def test_figure6(once, emit):
    result = once(run_figure6, seed=0)

    emit("\n=== Figure 6 (reproduced) ===")
    emit(result.format())

    for device in ("xc7z020", "xc7a50t"):
        bars = result.bars_for(device)
        nas, fnas_bars = bars[0], bars[1:]
        # (a) search time: FNAS cheaper, monotonically so with tightness.
        times = [b.search_seconds for b in fnas_bars]
        assert all(t < nas.search_seconds for t in times)
        assert times == sorted(times, reverse=True)
        # (b) latency: FNAS meets the spec, NAS busts the tight one.
        for bar in fnas_bars:
            assert bar.meets_spec
        assert nas.latency_ms > fnas_bars[-1].spec_ms
        # (c) accuracy: degradation below one point.
        for bar in fnas_bars:
            assert nas.accuracy - bar.accuracy < 0.01
