"""Extension: FNAS results vs the true accuracy-latency Pareto front.

Enumerates the full MNIST space (6561 architectures), computes the
exact frontier under the surrogate/estimator pair, and measures the
regret of each Table 1 FNAS search against it -- how much accuracy the
60-trial search left on the table at its own spec.
"""

from repro.experiments.pareto import compute_pareto_front
from repro.experiments.table1 import TABLE1_SPECS_MS, run_table1
from repro.core.search_space import SearchSpace
from repro.configs import MNIST_CONFIG
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform


def run_study():
    space = SearchSpace.from_config(MNIST_CONFIG)
    front = compute_pareto_front(space, Platform.single(PYNQ_Z1))
    table1 = run_table1(seed=0)
    return front, table1


def test_pareto_regret(once, emit):
    front, table1 = once(run_study)

    emit("\n=== MNIST accuracy-latency Pareto front (exhaustive) ===")
    emit(front.format(max_rows=12))
    emit(f"frontier: {len(front.points)} points out of "
          f"{front.evaluated_count} architectures")

    assert front.exhaustive
    assert front.evaluated_count == 6561
    # Frontier is monotone: accuracy increases along latency.
    accs = [p.accuracy for p in front.points]
    assert accs == sorted(accs)

    emit("\nFNAS regret vs frontier:")
    for row, spec in zip(table1.rows[1:], TABLE1_SPECS_MS):
        regret = front.regret(row.accuracy, spec)
        emit(f"  TS={spec:>4}ms: search acc {100 * row.accuracy:.2f}%, "
              f"frontier {100 * front.best_accuracy_within(spec):.2f}%, "
              f"regret {100 * regret:.2f}pp")
        assert regret >= -1e-9
        assert regret < 0.01, "60-trial FNAS should be within 1pp of optimal"
