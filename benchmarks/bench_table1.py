"""Table 1: NAS vs FNAS on MNIST targeting PYNQ (paper Section 2/4).

Paper reference rows::

    NAS          -   190m33s   -      19.70ms  -       99.42%  -
    FNAS  TC=10      74m29s    2.55x  8.67ms   2.27x   99.34%  -0.08%
    FNAS  TC=5       59m19s    3.21x  4.77ms   4.13x   99.18%  -0.24%
    FNAS  TC=2       17m07s    11.13x 1.80ms   10.94x  98.61%  -0.81%
"""

from repro.experiments.table1 import run_table1


def test_table1(once, emit):
    result = once(run_table1, seed=0)

    emit("\n=== Table 1 (reproduced) ===")
    emit(result.format())

    nas, fnas_rows = result.rows[0], result.rows[1:]
    # Shape assertions from the paper.
    assert nas.latency_ms > 2.0, "NAS's architecture must bust tight specs"
    for row in fnas_rows:
        assert row.latency_ms <= row.spec_ms, "FNAS must meet every spec"
        assert row.elapsed_improvement > 1.5, "FNAS must search faster"
        assert row.accuracy_degradation < 0.01, "accuracy loss must be <1%"
    speedups = [r.elapsed_improvement for r in fnas_rows]
    assert speedups == sorted(speedups), (
        "speedup must grow as the spec tightens")
    degradations = [r.accuracy_degradation for r in fnas_rows]
    assert degradations[-1] >= degradations[0], (
        "tighter specs should cost at least as much accuracy")
