"""Ablation: how much of FNAS's speedup is early pruning alone.

The paper attributes the search-time reduction to (1) not training
spec-violating children and (2) the surviving children being simpler.
This bench isolates (1) by replaying an FNAS ledger with the
counterfactual cost of training every pruned child.
"""

from repro.experiments.ablation import run_pruning_ablation


def test_pruning_ablation(once, emit):
    result = once(run_pruning_ablation, dataset="mnist",
                  required_latency_ms=2.0, seed=0)

    emit("\n=== Early-pruning ablation (MNIST, TS=2ms) ===")
    emit(result.format())

    assert result.search.pruned_count > 0, (
        "a tight spec must prune some children")
    assert result.pruning_speedup > 1.0, (
        "training violators anyway must cost more")
