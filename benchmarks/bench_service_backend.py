"""Service job throughput: thread backend vs process backend.

Submits the same batch of CPU-bound single-search plans (distinct
seeds, so nothing dedups) to a 4-worker :class:`SearchService` twice --
once on the GIL-bound thread backend, once on the process backend --
and measures end-to-end job throughput, asserting

* correctness -- both back-ends produce byte-identical result bytes
  per plan (the backend is an execution concern, never a trajectory
  one), and
* scaling -- on a >= 4 core host the process backend clears >= 2x the
  thread backend's throughput on these pure-python searches (the
  thread pool buys ~nothing because the work never releases the GIL).
  On fewer cores the scaling assertion is vacuous and skipped; the
  correctness one is not.

Emits the measurements as ``BENCH_service_backend.json`` next to the
repo root so trajectory tooling can track backend scaling across PRs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service import SearchService

JOBS = 6
TRIALS = 500
WORKERS = 4

OUTPUT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_service_backend.json"
)


@dataclass(frozen=True)
class BackendPoint:
    """One measured (backend, workers) service configuration."""

    backend: str
    workers: int
    jobs: int
    trials_per_job: int
    wall_seconds: float
    jobs_per_second: float


def _plans() -> list[RunPlan]:
    return [
        RunPlan(
            workload="search",
            search=SearchPlan(seed=seed, trials=TRIALS),
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  specs_ms=(5.0,)),
        )
        for seed in range(JOBS)
    ]


def _run_backend(backend: str) -> tuple[BackendPoint, list[bytes]]:
    """Push every plan through a fresh service; returns point + bytes."""
    plans = _plans()
    started = time.perf_counter()
    with SearchService(workers=WORKERS, backend=backend) as service:
        handles = [service.submit(plan) for plan in plans]
        blobs = [handle.result_bytes(timeout=3600) for handle in handles]
    wall = time.perf_counter() - started
    return (
        BackendPoint(
            backend=backend,
            workers=WORKERS,
            jobs=JOBS,
            trials_per_job=TRIALS,
            wall_seconds=wall,
            jobs_per_second=JOBS / wall,
        ),
        blobs,
    )


def run_backends() -> tuple[list[BackendPoint], list[list[bytes]]]:
    """Measure both back-ends on identical job batches."""
    points: list[BackendPoint] = []
    blobs: list[list[bytes]] = []
    for backend in ("thread", "process"):
        point, result_bytes = _run_backend(backend)
        points.append(point)
        blobs.append(result_bytes)
    return points, blobs


def test_service_backend_throughput(once, emit):
    points, blobs = once(run_backends)
    thread_point, process_point = points
    speedup = (
        process_point.jobs_per_second / thread_point.jobs_per_second
    )

    cores = os.cpu_count() or 1
    emit("\n=== Service job throughput (4 workers, CPU-bound searches) ===")
    emit(f"host cpu_count: {cores}")
    emit(f"{'backend':>8} {'jobs':>5} {'trials':>6} {'wall(s)':>8} "
         f"{'jobs/s':>7}")
    for p in points:
        emit(f"{p.backend:>8} {p.jobs:>5} {p.trials_per_job:>6} "
             f"{p.wall_seconds:>8.3f} {p.jobs_per_second:>7.3f}")
    emit(f"process vs thread: {speedup:.2f}x")

    OUTPUT_PATH.write_text(json.dumps(
        {
            "benchmark": "service_backend_throughput",
            # cpu_count leads: the scaling numbers below are
            # meaningless without knowing the host's parallelism.
            "cpu_count": cores,
            "jobs": JOBS,
            "trials_per_job": TRIALS,
            "workers": WORKERS,
            "points": [asdict(p) for p in points],
            "process_speedup_vs_thread": speedup,
        },
        indent=2,
    ) + "\n")
    emit(f"wrote {OUTPUT_PATH.name}")

    # Correctness first: the backend must never change a result.
    assert blobs[0] == blobs[1], (
        "process backend produced different result bytes than thread"
    )
    # Scaling bar: 4 process workers vs 4 thread workers on pure-python
    # searches must clear 2x -- the thread pool is GIL-serialized, the
    # process pool genuinely runs 4 jobs at once.  Below 4 cores the
    # process pool cannot physically run 4 jobs at once, so skip loudly
    # (a green check on a 2-core runner would be a lie).
    if cores < 4:
        pytest.skip(
            f"scaling bar needs >= 4 cores, host has {cores}; "
            f"measured {speedup:.2f}x (correctness already asserted, "
            f"{OUTPUT_PATH.name} written)"
        )
    assert speedup >= 2.0, (
        f"process backend only {speedup:.2f}x over the thread backend "
        f"on {cores} cores"
    )
