"""Gateway fanout: event-delivery latency under hundreds of streams.

Two measurements against live front ends:

* **async fanout** -- 4 long jobs held queued behind blockers while
  200 SSE streams and 50 long-pollers attach, then released; every
  consumer's receipt of its job's ``job-completed`` event is timed
  against the moment the service published it.  The gateway's wakeup
  fanout (one ``asyncio.Event`` per watcher, set from the service's
  job-listener hook) should deliver with a p99 well under 250 ms even
  with hundreds of parked connections on one asyncio loop.

* **sync baseline** -- the same stream attach against the threaded
  ``http.server`` front end, which has no streaming route: every
  attempt must be refused with 404, and a ``wait=``-style long poll
  returns immediately (no parking), which is exactly why the async
  gateway exists.  The baseline quantifies the refusal, not a race.

Emits the measurements as ``BENCH_gateway.json`` next to the repo
root so trajectory tooling can track fanout latency across PRs.  The
p99 latency bar is skipped loudly below 4 cores (a single busy core
runs 250 consumer threads, 4 search jobs, and the event loop in
strict turns -- scheduling noise, not fanout cost, dominates there),
but the JSON is always written.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.events import JobCompleted
from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service.client import ServiceClient
from repro.service.gateway import GatewayRunner
from repro.service.http import make_server
from pathlib import Path

SSE_STREAMS = 200
LONG_POLLERS = 50
JOBS = 4
TRIALS = 400
P99_BAR_SECONDS = 0.250

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_gateway.json"


def _plans(count=JOBS, trials=TRIALS, base_seed=0):
    return [
        RunPlan(
            workload="search",
            search=SearchPlan(seed=base_seed + n, trials=trials),
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  specs_ms=(5.0,)),
        )
        for n in range(count)
    ]


def _percentile(samples, fraction):
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(len(ranked) * fraction))]


def _sse_consumer(url, job_id, completed_at, latencies, errors):
    try:
        client = ServiceClient(url)
        for frame in client.stream_events(job_id):
            if frame["event"] == "job-completed":
                latencies.append(
                    time.perf_counter() - completed_at[job_id])
                return
        errors.append(f"{job_id}: stream ended without completion")
    except Exception as exc:  # noqa: BLE001 - tallied, not raised
        errors.append(f"{job_id}: {exc}")


def _poll_consumer(url, job_id, completed_at, latencies, errors):
    try:
        client = ServiceClient(url)
        cursor = 0
        deadline = time.monotonic() + 600
        while time.monotonic() < deadline:
            page = client.events(job_id, since=cursor, wait=30)
            cursor = page["next"]
            if any(e["event"] == "job-completed"
                   for e in page["events"]):
                latencies.append(
                    time.perf_counter() - completed_at[job_id])
                return
            if page["state"] in ("done", "failed", "cancelled"):
                break
        errors.append(f"{job_id}: poller never saw completion")
    except Exception as exc:  # noqa: BLE001 - tallied, not raised
        errors.append(f"{job_id}: {exc}")


def _run_async_fanout(tmp_path) -> dict:
    """Time publish -> receipt across SSE_STREAMS + LONG_POLLERS."""
    runner = GatewayRunner(workers=JOBS,
                           checkpoint_dir=str(tmp_path / "ckpt")).start()
    completed_at: dict[str, float] = {}

    def on_event(event):
        if isinstance(event, JobCompleted):
            completed_at[event.scope] = time.perf_counter()

    runner.service.bus.subscribe(on_event)
    client = ServiceClient(runner.base_url)
    try:
        # Blockers pin every worker so the measured jobs stay queued
        # while the consumer crowd attaches; cancelling the blockers
        # then releases all four at once.
        blockers = [client.submit(p)["job_id"]
                    for p in _plans(count=JOBS, trials=100_000,
                                    base_seed=1000)]
        measured = [client.submit(p)["job_id"] for p in _plans()]
        latencies: list[float] = []
        errors: list[str] = []
        threads = []
        for n in range(SSE_STREAMS):
            threads.append(threading.Thread(
                target=_sse_consumer,
                args=(runner.base_url, measured[n % JOBS], completed_at,
                      latencies, errors)))
        for n in range(LONG_POLLERS):
            threads.append(threading.Thread(
                target=_poll_consumer,
                args=(runner.base_url, measured[n % JOBS], completed_at,
                      latencies, errors)))
        started = time.perf_counter()
        for t in threads:
            t.start()
        for job_id in blockers:
            client.cancel(job_id)
        for t in threads:
            t.join(timeout=600)
        wall = time.perf_counter() - started
        assert not any(t.is_alive() for t in threads), "consumers hung"
        assert not errors, errors[:5]
    finally:
        runner.stop()
    return {
        "sse_streams": SSE_STREAMS,
        "long_pollers": LONG_POLLERS,
        "jobs": JOBS,
        "trials_per_job": TRIALS,
        "delivered": len(latencies),
        "wall_seconds": wall,
        "p50_latency_seconds": _percentile(latencies, 0.50),
        "p99_latency_seconds": _percentile(latencies, 0.99),
        "max_latency_seconds": max(latencies),
    }


def _run_sync_baseline(tmp_path) -> dict:
    """The sync front end: streams refused, long polls not parked."""
    server = make_server(port=0, workers=1,
                         checkpoint_dir=str(tmp_path / "sync-ckpt"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    client = ServiceClient(url)
    try:
        info = client.submit(_plans(count=1, trials=40)[0])
        job_id = info["job_id"]
        client.wait(job_id, timeout=600)
        refused = 0
        for _ in range(SSE_STREAMS):
            try:
                urllib.request.urlopen(
                    f"{url}/jobs/{job_id}/events/stream", timeout=10)
            except urllib.error.HTTPError as exc:
                refused += exc.code == 404
        cursor = client.events(job_id)["next"]
        started = time.perf_counter()
        page = client.events(job_id, since=cursor, wait=10)
        poll_return = time.perf_counter() - started
    finally:
        server.shutdown()
        server.server_close()
        server.service.shutdown(wait=True, cancel_running=True)
        thread.join(timeout=30)
    return {
        "stream_attempts": SSE_STREAMS,
        "streams_refused_404": refused,
        "long_poll_parked": bool(page["events"]) or poll_return > 1.0,
        "long_poll_return_seconds": poll_return,
    }


def run_gateway_fanout(tmp_path):
    """Async fanout under load, then the sync refusal baseline."""
    return _run_async_fanout(tmp_path), _run_sync_baseline(tmp_path)


def test_gateway_fanout_latency(tmp_path, once, emit):
    fanout, baseline = once(run_gateway_fanout, tmp_path)
    cores = os.cpu_count() or 1

    emit("\n=== Gateway event fanout (publish -> receipt latency) ===")
    emit(f"host cpu_count: {cores}")
    emit(f"consumers: {fanout['sse_streams']} SSE + "
         f"{fanout['long_pollers']} long-poll across {fanout['jobs']} jobs")
    emit(f"delivered: {fanout['delivered']}, wall {fanout['wall_seconds']:.2f}s")
    emit(f"latency p50 {fanout['p50_latency_seconds'] * 1000:.1f}ms  "
         f"p99 {fanout['p99_latency_seconds'] * 1000:.1f}ms  "
         f"max {fanout['max_latency_seconds'] * 1000:.1f}ms")
    emit(f"sync baseline: {baseline['streams_refused_404']}/"
         f"{baseline['stream_attempts']} stream attempts refused (404), "
         f"long poll returned in "
         f"{baseline['long_poll_return_seconds'] * 1000:.1f}ms "
         f"(parked: {baseline['long_poll_parked']})")

    OUTPUT_PATH.write_text(json.dumps(
        {
            "benchmark": "gateway_fanout_latency",
            "cpu_count": cores,
            "p99_bar_seconds": P99_BAR_SECONDS,
            "async": fanout,
            "sync_baseline": baseline,
        },
        indent=2,
    ) + "\n")
    emit(f"wrote {OUTPUT_PATH.name}")

    # Delivery is all-or-nothing: every consumer saw its completion.
    assert fanout["delivered"] == SSE_STREAMS + LONG_POLLERS, fanout
    # The sync front end cannot hold a stream open at all.
    assert baseline["streams_refused_404"] == SSE_STREAMS, baseline
    if cores < 4:
        pytest.skip(
            f"p99 latency bar needs >= 4 cores, host has {cores}; "
            f"measured p99 "
            f"{fanout['p99_latency_seconds'] * 1000:.1f}ms "
            f"({OUTPUT_PATH.name} written)"
        )
    assert fanout["p99_latency_seconds"] < P99_BAR_SECONDS, fanout
