"""Ablation: how much does the REINFORCE controller contribute?

Compares the LSTM controller (paper), the tabular REINFORCE policy,
and a uniform random policy on the same FNAS setup (MNIST, TS=5 ms).
The learned controllers should (a) propose fewer violating children
over the run and (b) find an at-least-as-accurate valid child.
"""

import numpy as np

from repro.core.controller import (
    LstmController,
    RandomController,
    TabularController,
)
from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.core.search import FnasSearch
from repro.core.search_space import SearchSpace
from repro.configs import MNIST_CONFIG
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator

SPEC_MS = 5.0
TRIALS = 60


def run_variants():
    space = SearchSpace.from_config(MNIST_CONFIG)
    evaluator = SurrogateAccuracyEvaluator(space)
    estimator = LatencyEstimator(Platform.single(PYNQ_Z1))
    outcomes = {}
    for name, controller in (
        ("lstm", LstmController(space, seed=0)),
        ("tabular", TabularController(space)),
        ("random", RandomController(space)),
    ):
        search = FnasSearch(
            space, evaluator, estimator, SPEC_MS, controller=controller,
            min_latency_fallback=True,
        )
        outcomes[name] = search.run(TRIALS, np.random.default_rng(0))
    return outcomes


def test_controller_ablation(once, emit):
    outcomes = once(run_variants)

    emit("\n=== Controller ablation (MNIST, TS=5ms, 60 trials) ===")
    for name, result in outcomes.items():
        best = result.best_valid(SPEC_MS)
        late_violations = sum(
            1 for t in result.trials[-20:] if t.pruned)
        emit(f"  {name:<8} best acc {100 * best.accuracy:.2f}% "
              f"@ {best.latency_ms:.2f}ms, trained "
              f"{result.trained_count}/60, violations in last 20: "
              f"{late_violations}")

    lstm, random_ = outcomes["lstm"], outcomes["random"]
    # Learning should not be worse than random on final quality...
    assert (lstm.best_valid(SPEC_MS).accuracy
            >= random_.best_valid(SPEC_MS).accuracy - 0.002)
    # ...and should violate the spec less often once trained.
    lstm_late = sum(1 for t in lstm.trials[-20:] if t.pruned)
    random_late = sum(1 for t in random_.trials[-20:] if t.pruned)
    assert lstm_late <= random_late + 2
