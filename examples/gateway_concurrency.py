"""Gateway concurrency smoke: a crowd of streams, then a graceful drain.

Drives the asyncio gateway (``repro serve --async``) end to end over
real HTTP, real threads, and a real SIGTERM:

1. starts ``repro serve --async`` with a persistent store (journal on);
2. submits a batch of search jobs, then attaches **hundreds** of
   concurrent event consumers -- half over SSE
   (``GET /jobs/<id>/events/stream``), half over long-poll
   (``GET /jobs/<id>/events?since=N&wait=S``) -- and asserts every
   single one observes the job's completion and a clean end of stream;
3. submits one more job, opens a live SSE stream on it, and SIGTERMs
   the server mid-run: the gateway must stop accepting, let the job
   finish, close the stream with an ``end`` frame, flush the journal,
   and exit 0;
4. replays the same plan against a plain sync ``repro serve`` and
   asserts the drained gateway's stored result is **byte-identical**
   to the sync server's ``/result`` body.

Run it from the repo root::

    PYTHONPATH=src python examples/gateway_concurrency.py

Exit code 0 means every assertion held.  The CI ``gateway-smoke`` job
runs this script.
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.plans import RunPlan, ScenarioPlan, SearchPlan, plan_hash  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.journal import JobJournal  # noqa: E402
from repro.service.store import ResultStore  # noqa: E402

PORT = 8747
URL = f"http://127.0.0.1:{PORT}"
SSE_CLIENTS = 120
POLL_CLIENTS = 120
BATCH_JOBS = 3
DRAIN_TRIALS = 800


def plan(seed, trials=60):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_gateway(store_dir, checkpoint_dir):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--async",
         "--port", str(PORT), "--workers", "2",
         "--store-dir", str(store_dir),
         "--checkpoint-dir", str(checkpoint_dir)],
        env=child_env(),
    )


def start_sync_server(store_dir, checkpoint_dir):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(PORT), "--workers", "2",
         "--store-dir", str(store_dir),
         "--checkpoint-dir", str(checkpoint_dir)],
        env=child_env(),
    )


def wait_for_server(client, deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    raise SystemExit("server did not come up in time")


def stop(proc, sig=signal.SIGTERM, timeout=60):
    if proc is not None and proc.poll() is None:
        proc.send_signal(sig)
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=timeout)


def sse_consumer(job_id, outcomes):
    client = ServiceClient(URL)
    tags = [f["event"] for f in client.stream_events(job_id)]
    outcomes.append("job-completed" in tags and tags[-1] == "end")


def poll_consumer(job_id, outcomes):
    client = ServiceClient(URL)
    cursor, seen_completion = 0, False
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        page = client.events(job_id, since=cursor, wait=10)
        cursor = page["next"]
        seen_completion = seen_completion or any(
            e["event"] == "job-completed" for e in page["events"])
        if page["state"] in ("done", "failed", "cancelled"):
            break
    outcomes.append(seen_completion)


def crowd_phase(client):
    """Hundreds of SSE + long-poll consumers, all seeing completion."""
    jobs = [client.submit(plan(seed=n))["job_id"]
            for n in range(BATCH_JOBS)]
    outcomes, threads = [], []
    for n in range(SSE_CLIENTS):
        threads.append(threading.Thread(
            target=sse_consumer, args=(jobs[n % BATCH_JOBS], outcomes)))
    for n in range(POLL_CLIENTS):
        threads.append(threading.Thread(
            target=poll_consumer, args=(jobs[n % BATCH_JOBS], outcomes)))
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    assert not any(t.is_alive() for t in threads), "consumers hung"
    total = SSE_CLIENTS + POLL_CLIENTS
    assert len(outcomes) == total, f"{len(outcomes)}/{total} returned"
    assert all(outcomes), f"{outcomes.count(False)} consumers missed events"
    print(f"{SSE_CLIENTS} SSE + {POLL_CLIENTS} long-poll consumers across "
          f"{BATCH_JOBS} jobs: all saw completion")


def drain_phase(gateway, client, store_dir):
    """SIGTERM mid-job: the stream ends cleanly and nothing is lost."""
    submitted = client.submit(plan(seed=99, trials=DRAIN_TRIALS))
    job_id = submitted["job_id"]
    frames = []
    attached = threading.Event()

    def streamer():
        for frame in ServiceClient(URL).stream_events(job_id):
            frames.append(frame)
            attached.set()

    stream_thread = threading.Thread(target=streamer)
    stream_thread.start()
    assert attached.wait(timeout=60), "SSE stream never attached"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if client.status(job_id)["state"] == "running":
            break
        time.sleep(0.05)
    assert client.status(job_id)["state"] == "running", "job never started"

    gateway.send_signal(signal.SIGTERM)
    assert gateway.wait(timeout=120) == 0, gateway.returncode
    stream_thread.join(timeout=60)
    assert not stream_thread.is_alive(), "SSE stream never closed"
    assert frames and frames[-1]["event"] == "end", frames[-2:]
    print(f"SIGTERM drain: gateway exited 0, stream closed with an "
          f"'end' frame after {len(frames)} frames")

    entries = JobJournal.replay(store_dir / "journal.jsonl")
    ops = [e["op"] for e in entries if e["job"] == job_id]
    assert ops and ops[-1] == "done", (
        f"drain lost the admitted job: journal ops {ops}")
    print(f"journal intact: {job_id} transitions {ops}")
    return submitted["plan_hash"]


def byte_identity_phase(workdir, digest):
    """The drained gateway's stored result == a sync-server run's."""
    gateway_bytes = ResultStore(workdir / "store").get_bytes(digest)
    assert gateway_bytes is not None, "drained store has no result"
    sync_dir = workdir / "sync"
    server = start_sync_server(sync_dir / "store", sync_dir / "ckpt")
    client = ServiceClient(URL)
    try:
        wait_for_server(client)
        info = client.submit(plan(seed=99, trials=DRAIN_TRIALS))
        client.wait(info["job_id"], timeout=600)
        sync_bytes = client.result_bytes(info["job_id"])
        client.shutdown()
        assert server.wait(timeout=60) == 0
        server = None
    finally:
        stop(server)
    assert gateway_bytes == sync_bytes, (
        "drained gateway result is not byte-identical to the sync run")
    print(f"byte-identical to a sync-server run ({len(gateway_bytes)} "
          f"bytes)")


def main():
    workdir = Path(tempfile.mkdtemp(prefix="gateway-concurrency-"))
    client = ServiceClient(URL)
    gateway = start_gateway(workdir / "store", workdir / "ckpt")
    try:
        wait_for_server(client)
        crowd_phase(client)
        digest = drain_phase(gateway, client, workdir / "store")
        gateway = None
        byte_identity_phase(workdir, digest)
        print("gateway concurrency smoke: OK")
        return 0
    finally:
        stop(gateway)


if __name__ == "__main__":
    sys.exit(main())
