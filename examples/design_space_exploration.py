"""FNAS-Design policy exploration for one architecture.

FNAS-Design has internal freedom: how big to make the spatial tiles
(max-reuse vs min-start) and which reuse strategy the first PE uses.
This example enumerates the policy grid with the analytical model in
the loop -- the same search the LatencyEstimator performs on every
child network during FNAS -- and prints the per-layer tilings of the
winner.

Run:  python examples/design_space_exploration.py
"""

from repro import Architecture, Platform, XC7A50T
from repro.latency import DesignExplorer


def main() -> None:
    # A small network on the low-end Artix-7: exactly the regime where
    # the policy choice matters most (start deltas dominate).
    arch = Architecture.from_choices(
        [5, 5, 5, 5], [9, 9, 9, 9], input_size=28, input_channels=1
    )
    platform = Platform.single(XC7A50T)
    print(f"network: {arch.describe()} on {XC7A50T.name}\n")

    result = DesignExplorer().explore(arch, platform)
    print("policy grid (analytical latency):")
    for choice in result.evaluated:
        marker = "  <- best" if choice is result.best else ""
        print(f"  spatial={choice.spatial_strategy:<10} "
              f"first_reuse={choice.first_reuse:<4} "
              f"-> {choice.report.total_ms:6.3f} ms{marker}")
    print(f"\nbest over worst: {result.improvement_over_worst:.2f}x\n")

    best = result.best
    print("winning design, per layer:")
    for layer in best.design.layers:
        t = layer.tiling
        print(f"  layer {layer.layer_index}: "
              f"<Tm={t.tm}, Tn={t.tn}, Tr={t.tr}, Tc={t.tc}>  "
              f"tasks={layer.task_count}, ET={layer.execution_time}, "
              f"PT={layer.processing_time}, "
              f"BRAM={layer.bram_bytes / 1024:.1f} KiB")
    print("\nper-PE start times (cycles):",
          list(best.report.start_times))


if __name__ == "__main__":
    main()
