"""Quickstart: the FNAS tool and search loop in ~60 seconds.

Walks the public API end to end:

1. describe a child CNN architecture,
2. estimate its latency on a PYNQ board with the analytical FNAS tool,
3. run a small FNAS search (surrogate accuracy) under a 5 ms spec,
4. compare against the accuracy-only NAS baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Architecture,
    FnasSearch,
    LatencyEstimator,
    NasSearch,
    Platform,
    SearchSpace,
    SurrogateAccuracyEvaluator,
    PYNQ_Z1,
)
from repro.configs import MNIST_CONFIG


def main() -> None:
    # 1. An architecture is just per-layer (kernel, filters) choices.
    arch = Architecture.from_choices(
        filter_sizes=[5, 7, 5, 7],
        filter_counts=[9, 18, 18, 36],
        input_size=28,
        input_channels=1,
    )
    print(f"architecture: {arch.describe()}")
    print(f"  {arch.total_macs / 1e6:.1f}M MACs, "
          f"{arch.total_weights / 1e3:.1f}k weights")

    # 2. The FNAS tool: tiling design + closed-form latency analysis.
    platform = Platform.single(PYNQ_Z1)
    estimator = LatencyEstimator(platform)
    estimate = estimator.estimate(arch)
    print(f"  estimated latency on {PYNQ_Z1.name}: {estimate.ms:.2f} ms "
          f"({estimate.cycles} cycles at {PYNQ_Z1.clock_mhz:.0f} MHz)")
    for layer in estimate.report.layers:
        tiling = estimate.design.layers[layer.layer_index].tiling
        print(f"    PE{layer.layer_index}: "
              f"<Tm={tiling.tm}, Tn={tiling.tn}, Tr={tiling.tr}, "
              f"Tc={tiling.tc}>  start@{layer.start_time} cycles, "
              f"reuse={layer.reuse}")

    # 3. FNAS search: prune spec violators before (surrogate) training.
    space = SearchSpace.from_config(MNIST_CONFIG)
    evaluator = SurrogateAccuracyEvaluator(space)
    spec_ms = 5.0
    fnas = FnasSearch(space, evaluator, estimator, spec_ms).run(
        trials=30, rng=np.random.default_rng(0))
    best = fnas.best_valid(spec_ms)
    print(f"\nFNAS (spec {spec_ms} ms, 30 trials): "
          f"trained {fnas.trained_count}, pruned {fnas.pruned_count}")
    print(f"  best valid child: {best.architecture.describe()}")
    print(f"  latency {best.latency_ms:.2f} ms, "
          f"accuracy {100 * best.accuracy:.2f}%")

    # 4. The NAS baseline trains everything and ignores latency.
    nas = NasSearch(space, evaluator, latency_estimator=estimator).run(
        trials=30, rng=np.random.default_rng(0))
    nas_best = nas.best()
    print(f"\nNAS baseline: best accuracy {100 * nas_best.accuracy:.2f}% "
          f"but latency {nas_best.latency_ms:.2f} ms "
          f"({nas_best.latency_ms / spec_ms:.1f}x over the spec)")
    print(f"  search cost: NAS {nas.simulated_seconds / 60:.0f} simulated "
          f"minutes vs FNAS {fnas.simulated_seconds / 60:.0f}")


if __name__ == "__main__":
    main()
