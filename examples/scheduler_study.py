"""Scheduler study: FNAS-Sched vs fixed scheduling on one pipeline.

Reproduces a single Figure 8 data point in detail: the same 4-layer
network under both schedulers, with per-PE start times, stall cycles
and a text Gantt chart of the pipeline, showing *where* the fixed
schedule loses its cycles.

Run:  python examples/scheduler_study.py
"""

from repro import (
    Architecture,
    FixedScheduler,
    FnasScheduler,
    PipelineSimulator,
    Platform,
    TaskGraphGenerator,
    TilingDesigner,
    PYNQ_Z1,
)

GANTT_WIDTH = 64


def gantt(result, makespan: int) -> str:
    """Text Gantt chart: one row per PE, '#' busy span, '.' idle."""
    lines = []
    for trace in result.pe_traces:
        row = ["."] * GANTT_WIDTH
        lo = int(trace.start_time / makespan * GANTT_WIDTH)
        hi = max(lo + 1, int(trace.finish_time / makespan * GANTT_WIDTH))
        for i in range(lo, min(hi, GANTT_WIDTH)):
            row[i] = "#"
        busy_share = trace.busy_cycles / max(
            trace.finish_time - trace.start_time, 1)
        lines.append(
            f"  PE{trace.layer} |{''.join(row)}| "
            f"busy {100 * busy_share:.0f}%"
        )
    return "\n".join(lines)


def main() -> None:
    arch = Architecture.from_choices(
        [3, 3, 3, 3], [64, 128, 64, 128], input_size=28, input_channels=1
    )
    platform = Platform.single(PYNQ_Z1)
    design = TilingDesigner().design(arch, platform)
    graph = TaskGraphGenerator().generate(design)
    simulator = PipelineSimulator()

    print(f"network: {arch.describe()} on {PYNQ_Z1.name}, "
          f"{graph.total_tasks} tile tasks\n")
    for scheduler in (FnasScheduler(), FixedScheduler()):
        schedule = scheduler.schedule(graph)
        result = simulator.run(schedule)
        print(f"[{schedule.name}] policy={schedule.policy}, "
              f"reuse={schedule.reuse_strategies}")
        print(f"  makespan {result.makespan} cycles "
              f"({platform.cycles_to_ms(result.makespan):.2f} ms), "
              f"total stalls {result.total_stall_cycles}")
        print(gantt(result, result.makespan))
        print()

    fnas = simulator.run(FnasScheduler().schedule(graph)).makespan
    fixed = simulator.run(FixedScheduler().schedule(graph)).makespan
    print(f"FNAS-Sched improvement: {100 * (fixed - fnas) / fixed:.1f}% "
          f"fewer cycles")


if __name__ == "__main__":
    main()
