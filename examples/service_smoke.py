"""End-to-end smoke of the search service over real HTTP.

Spawns ``repro serve`` as a subprocess, then drives it with
:class:`repro.service.ServiceClient`:

1. submits plan A (long) and plan B (short);
2. resubmits plan B and asserts the duplicate is answered from the
   content-addressed store with a byte-identical ``/result`` body;
3. cancels plan A mid-run, asserts it reports ``cancelled`` and left
   checkpoints behind, resubmits it and asserts the job resumes to a
   complete result;
4. shuts the server down via ``POST /shutdown`` and asserts a clean
   exit.

Run it from the repo root::

    PYTHONPATH=src python examples/service_smoke.py

Exit code 0 means every assertion held.  The CI ``service-smoke`` job
runs exactly this script.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.plans import RunPlan, ScenarioPlan, SearchPlan  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402

PORT = 8731
URL = f"http://127.0.0.1:{PORT}"


def plan(seed, trials):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def wait_for_server(client, deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    raise SystemExit("server did not come up in time")


def main():
    workdir = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    store_dir = workdir / "store"
    checkpoint_dir = workdir / "checkpoints"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(PORT), "--workers", "2",
         "--store-dir", str(store_dir),
         "--checkpoint-dir", str(checkpoint_dir)],
        env=env,
    )
    client = ServiceClient(URL)
    try:
        wait_for_server(client)

        # -- plan B: run, then resubmit as a byte-identical cache hit --
        short = plan(seed=1, trials=10)
        first = client.submit(short)
        print("B submitted:", first["job_id"], first["state"])
        client.wait(first["job_id"], timeout=120)
        original = client.result_bytes(first["job_id"])
        duplicate = client.submit(short)
        assert duplicate["job_id"] == first["job_id"], duplicate
        assert duplicate["state"] == "done", duplicate
        replayed = client.result_bytes(duplicate["job_id"])
        assert replayed == original, "duplicate result must be byte-identical"
        trials_b = len(json.loads(replayed)["trials"])
        assert trials_b == 10, trials_b
        print(f"B deduplicated: cache hit, {len(replayed)} identical bytes")

        # -- plan A: cancel mid-run, resubmit, resume to completion ----
        long_plan = plan(seed=2, trials=4000)
        job_a = client.submit(long_plan)
        job_a_dir = checkpoint_dir / job_a["plan_hash"]
        # Give it a moment to start and land at least one snapshot.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if (client.status(job_a["job_id"])["state"] == "running"
                    and list(job_a_dir.glob("*.checkpoint.json"))):
                break
            time.sleep(0.1)
        client.cancel(job_a["job_id"])
        final = client.wait(job_a["job_id"], timeout=120)
        assert final["state"] == "cancelled", final
        snapshots = list(job_a_dir.glob("*.checkpoint.json"))
        assert snapshots, "cancellation must leave checkpoints"
        resumed_index = json.loads(snapshots[0].read_text())["next_index"]
        assert 0 < resumed_index < 4000, resumed_index
        print(f"A cancelled at trial {resumed_index}, snapshot on disk")
        try:
            client.result_bytes(job_a["job_id"])
            raise SystemExit("cancelled job must not serve a result")
        except ServiceError as err:
            assert err.status == 409, err.status
        resumed = client.submit(long_plan)
        assert resumed["job_id"] == job_a["job_id"], resumed
        client.wait(resumed["job_id"], timeout=600)
        result_a = json.loads(client.result_bytes(resumed["job_id"]))
        assert len(result_a["trials"]) == 4000, len(result_a["trials"])
        events = client.events(resumed["job_id"])["events"]
        tags = [e["event"] for e in events]
        assert tags.count("job-queued") == 2, tags  # original + resubmit
        assert tags[-1] == "job-completed", tags
        print("A resumed and completed:", len(result_a["trials"]), "trials")

        # -- teardown --------------------------------------------------
        client.shutdown()
        code = server.wait(timeout=60)
        assert code == 0, f"server exited with {code}"
        print("server shut down cleanly")
        print("service smoke: OK")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            server.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
