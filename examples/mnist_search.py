"""Real-training FNAS on synthetic MNIST (no surrogate).

This is the honest path: every non-pruned child network is actually
built and trained with the NumPy CNN substrate on the procedurally
generated MNIST stand-in, exactly as the paper trains children on real
MNIST.  Scaled down so it finishes in a few minutes on a laptop: a
reduced choice grid (the 14x14-kernel option alone costs ~800 MMACs per
image and belongs on a GPU), 10 trials, 2 epochs, 500 train images.

Run:  python examples/mnist_search.py
"""

import numpy as np

from repro import (
    FnasSearch,
    LatencyEstimator,
    Platform,
    SearchSpace,
    TrainedAccuracyEvaluator,
    PYNQ_Z1,
)
from repro.datasets import make_mnist
from repro.nn import Trainer

TRIALS = 10
SPEC_MS = 3.0

#: MNIST space from Table 2 with the laptop-hostile choices removed.
SPACE = SearchSpace(
    name="mnist-small",
    num_layers=3,
    filter_sizes=(5, 7),
    filter_counts=(9, 18),
    input_size=28,
    input_channels=1,
    num_classes=10,
)


def main() -> None:
    dataset = make_mnist(train_size=500, val_size=200, seed=0)
    evaluator = TrainedAccuracyEvaluator(
        dataset,
        trainer=Trainer(epochs=2, batch_size=64, lr=0.03,
                        accuracy_window=2),
    )
    estimator = LatencyEstimator(Platform.single(PYNQ_Z1))
    search = FnasSearch(
        SPACE, evaluator, estimator, required_latency_ms=SPEC_MS,
        min_latency_fallback=True,
    )

    print(f"FNAS with real NumPy training: {TRIALS} trials, "
          f"spec {SPEC_MS} ms on {PYNQ_Z1.name}")
    result = search.run(TRIALS, np.random.default_rng(0))

    for trial in result.trials:
        status = ("pruned" if trial.pruned
                  else f"acc {100 * trial.accuracy:.1f}%")
        print(f"  #{trial.index:>2} {trial.architecture.describe():<28} "
              f"lat {trial.latency_ms:6.2f} ms  {status}")

    best = result.best_valid(SPEC_MS)
    print(f"\nbest valid child: {best.architecture.describe()}")
    print(f"  latency {best.latency_ms:.2f} ms <= {SPEC_MS} ms, "
          f"val accuracy {100 * best.accuracy:.1f}%")
    print(f"  trained {result.trained_count}, pruned "
          f"{result.pruned_count}, wall {result.wall_seconds:.0f}s")


if __name__ == "__main__":
    main()
