"""Energy-aware FNAS: joint latency + energy budgets (extension).

The paper motivates FPGAs by performance *and* energy efficiency but
only constrains latency; this example runs the energy-aware extension,
which prunes children violating either budget, then inspects the
winning design's energy breakdown and steady-state throughput.

Run:  python examples/energy_aware_search.py
"""

import numpy as np

from repro import (
    LatencyEstimator,
    Platform,
    SearchSpace,
    SurrogateAccuracyEvaluator,
    PYNQ_Z1,
)
from repro.configs import MNIST_CONFIG
from repro.experiments.energy_aware import EnergyAwareFnasSearch
from repro.fpga.energy import EnergyModel
from repro.latency.throughput import analyze_throughput

SPEC_MS = 10.0
SPEC_MJ = 100.0
TRIALS = 40


def main() -> None:
    space = SearchSpace.from_config(MNIST_CONFIG)
    evaluator = SurrogateAccuracyEvaluator(space)
    estimator = LatencyEstimator(Platform.single(PYNQ_Z1))
    search = EnergyAwareFnasSearch(
        space, evaluator, estimator,
        required_latency_ms=SPEC_MS,
        required_energy_mj=SPEC_MJ,
    )
    print(f"energy-aware FNAS on {PYNQ_Z1.name}: "
          f"latency <= {SPEC_MS} ms AND energy <= {SPEC_MJ} mJ")
    result, facts = search.run(TRIALS, np.random.default_rng(0))

    lat_pruned = sum(1 for f in facts if f.latency_violated)
    eng_pruned = sum(1 for f in facts
                     if f.energy_violated and not f.latency_violated)
    print(f"  trials: {TRIALS}, latency-pruned {lat_pruned}, "
          f"energy-pruned {eng_pruned}, trained {result.trained_count}")

    best = result.best_valid(SPEC_MS)
    estimate = estimator.estimate(best.architecture)
    energy = EnergyModel().estimate(estimate.design, estimate.cycles)
    throughput = analyze_throughput(estimate.design, estimate.report)

    print(f"\nbest child: {best.architecture.describe()}")
    print(f"  accuracy  {100 * best.accuracy:.2f}%")
    print(f"  latency   {best.latency_ms:.2f} ms")
    print(f"  energy    {energy.total_mj:.2f} mJ "
          f"(compute {energy.compute_mj:.2f} / memory {energy.memory_mj:.2f}"
          f" / static {energy.static_mj:.2f}; "
          f"{100 * energy.memory_share:.0f}% memory)")
    print(f"  throughput {throughput.throughput_fps:.0f} inferences/s "
          f"(bottleneck PE{throughput.bottleneck_layer}); "
          f"batch-32 latency "
          f"{estimate.design.platform.cycles_to_ms(throughput.batch_latency_cycles(32)):.2f} ms")


if __name__ == "__main__":
    main()
