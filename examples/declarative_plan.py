"""The declarative RunPlan API end to end.

Builds one plan, dumps it to JSON, reloads it, and runs it twice
through a Session -- once in-process, once as a checkpointed two-worker
campaign -- showing that the execution policy changes *how* the run
executes but never *what* it computes: the trial ledgers match
trial for trial.

Run with::

    PYTHONPATH=src python examples/declarative_plan.py
"""

import dataclasses
import tempfile
from pathlib import Path

from repro import (
    ExecutionPolicy,
    RunPlan,
    ScenarioPlan,
    SearchPlan,
    Session,
    load_plan,
    save_plan,
)


def main() -> None:
    """Walk the plan -> JSON -> Session -> identical-ledgers loop."""
    plan = RunPlan(
        workload="table1",
        search=SearchPlan(seed=0, trials=12),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              include_nas=True),
    )

    with tempfile.TemporaryDirectory() as tmp:
        # Plans are data: round-trip through JSON before running.
        plan_path = Path(tmp) / "plan.json"
        save_plan(plan, plan_path)
        plan = load_plan(plan_path)
        print(f"plan: {plan_path.read_text().count(chr(10))} lines of JSON\n")

        session = Session.from_plan(plan)
        session.subscribe(
            lambda e: print(f"  [{e.kind}] {e.scope}: {e.message}")
        )
        print("in-process run:")
        serial = session.run()

        # Same plan, campaign execution policy: checkpointed shards on
        # a two-worker pool.  Purely an execution concern.
        durable = dataclasses.replace(
            plan,
            execution=ExecutionPolicy(shard_workers=2,
                                      checkpoint_dir=str(Path(tmp) / "ck")),
        )
        print("\ncampaign run (2 workers, checkpointed):")
        campaign = Session.from_plan(durable).run()

    print()
    print(serial.format())
    same = all(
        [t.tokens for t in campaign.outcome.fnas_for(spec).trials]
        == [t.tokens for t in serial.outcome.fnas_for(spec).trials]
        for spec in serial.outcome.fnas
    )
    print(f"\ncampaign ledgers match serial ledgers: {same}")


if __name__ == "__main__":
    main()
