"""Federation failover smoke: SIGKILL an agent mid-job, watch it resume.

Drives the lease/failover contract end to end over real HTTP, real
``repro agent`` processes, and a real SIGKILL:

1. starts ``repro serve`` with a persistent store (journal on), a
   checkpoint root, and a short ``--lease-seconds``;
2. starts **two** worker agents against it;
3. submits a long search plan, waits until one agent holds the lease
   and the job has checkpointed at least once;
4. ``SIGKILL``s the lease-holding agent -- no goodbyes, no heartbeats;
5. asserts the coordinator expires the lease, re-queues the job, and
   the surviving agent claims it and resumes it from the per-hash
   checkpoint to completion;
6. runs the identical plan on a fresh agent-less server and asserts
   the failed-over ``/result`` body is **byte-identical** to the
   uninterrupted run's.

Run it from the repo root::

    PYTHONPATH=src python examples/federation_chaos.py

Exit code 0 means every assertion held.  The CI ``federation-chaos``
job runs this script.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.plans import RunPlan, ScenarioPlan, SearchPlan  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

PORT = 8737
URL = f"http://127.0.0.1:{PORT}"
TRIALS = 3000
LEASE_SECONDS = 3.0


def plan(seed=9):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=TRIALS),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_server(store_dir, checkpoint_dir):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(PORT), "--workers", "1", "--backend", "process",
         "--lease-seconds", str(LEASE_SECONDS),
         "--store-dir", str(store_dir),
         "--checkpoint-dir", str(checkpoint_dir)],
        env=child_env(),
    )


def start_agent(agent_id):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "agent",
         "--coordinator", URL, "--agent-id", agent_id, "--name", agent_id,
         "--poll-seconds", "0.2"],
        env=child_env(),
    )


def wait_for_server(client, deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    raise SystemExit("server did not come up in time")


def stop(proc, sig=signal.SIGTERM, timeout=30):
    if proc is not None and proc.poll() is None:
        proc.send_signal(sig)
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=timeout)


def main():
    workdir = Path(tempfile.mkdtemp(prefix="federation-chaos-"))
    client = ServiceClient(URL)
    server = start_server(workdir / "store", workdir / "checkpoints")
    agents = {}
    try:
        wait_for_server(client)
        agents = {aid: start_agent(aid) for aid in ("a1", "a2")}
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.health()["agents"] == 2:
                break
            time.sleep(0.1)
        assert client.health()["agents"] == 2, "agents never registered"

        submitted = client.submit(plan())
        job_id = submitted["job_id"]
        job_dir = workdir / "checkpoints" / submitted["plan_hash"]
        holder = None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            holder = client.status(job_id)["agent"]
            if holder and list(job_dir.glob("*.checkpoint.json")):
                break
            time.sleep(0.1)
        snapshots = list(job_dir.glob("*.checkpoint.json"))
        assert holder in agents, f"no agent ever held the lease: {holder!r}"
        assert snapshots, "job never checkpointed; failover would restart"
        progress = json.loads(snapshots[0].read_text())["next_index"]
        assert 0 < progress < TRIALS, progress
        survivor = next(aid for aid in agents if aid != holder)

        # -- the crash: SIGKILL the lease holder mid-trial -------------
        agents[holder].send_signal(signal.SIGKILL)
        agents[holder].wait(timeout=30)
        print(f"agent {holder} SIGKILLed at >= trial {progress}; "
              f"lease expires in <= {LEASE_SECONDS}s")

        # -- failover: the survivor must pick the job up ---------------
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.status(job_id)["agent"] == survivor:
                break
            time.sleep(0.1)
        assert client.status(job_id)["agent"] == survivor, (
            f"job never failed over to {survivor}: {client.status(job_id)}"
        )
        print(f"lease expired; {survivor} claimed the re-queued job")

        final = client.wait(job_id, timeout=900)
        assert final["state"] == "done", final
        events = client.events(job_id)["events"]
        leases = [e["agent"] for e in events if e["event"] == "job-leased"]
        assert leases == [holder, survivor], leases
        assert any(e["event"] == "lease-expired" for e in events), (
            "no lease-expired event recorded"
        )
        failover_bytes = client.result_bytes(job_id)
        result = json.loads(failover_bytes)
        assert len(result["trials"]) == TRIALS, len(result["trials"])
        print(f"failed-over job completed ({len(result['trials'])} trials)")

        # -- teardown the federation, then an uninterrupted reference --
        stop(agents[survivor])
        assert agents[survivor].returncode == 0, agents[survivor].returncode
        client.shutdown()
        assert server.wait(timeout=60) == 0
        server = None

        reference_dir = workdir / "reference"
        server = start_server(reference_dir / "store",
                              reference_dir / "checkpoints")
        wait_for_server(client)
        ref_job = client.submit(plan())
        client.wait(ref_job["job_id"], timeout=900)
        reference_bytes = client.result_bytes(ref_job["job_id"])
        client.shutdown()
        assert server.wait(timeout=60) == 0
        server = None

        assert failover_bytes == reference_bytes, (
            "failed-over result is not byte-identical to the "
            "uninterrupted run"
        )
        print(f"byte-identical to the uninterrupted run "
              f"({len(failover_bytes)} bytes)")
        print("federation chaos failover: OK")
        return 0
    finally:
        for proc in agents.values():
            stop(proc)
        stop(server)


if __name__ == "__main__":
    sys.exit(main())
