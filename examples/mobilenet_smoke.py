"""The MobileNet-class scenario end to end over real HTTP.

The memory-hierarchy smoke the CI ``mobilenet-smoke`` job runs.
Spawns ``repro serve`` as a subprocess and drives it with
:class:`repro.service.ServiceClient`:

1. submits a MobileNet sweep (the extension's search space: conv-type
   choice per layer) targeting the bandwidth-starved
   ``xc7z020-ddr-narrow`` catalog device, and watches it execute cold;
2. submits an overlapping sweep (one added timing spec) and asserts
   the shard cache is warm: only the novel shard executes, the first
   one is served from the store as a ``ShardCached`` event;
3. submits the ``figure9`` plan itself and asserts all four frontiers
   (2 conv-type families x 2 memory hierarchies) are computed and
   announced on the event stream;
4. shuts the server down and asserts a clean exit.

Run it from the repo root::

    PYTHONPATH=src python examples/mobilenet_smoke.py

Exit code 0 means every assertion held.
"""

import os
import subprocess
import sys
import tempfile
import time
import urllib.error
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.events import SearchStarted, ShardCached, event_from_dict  # noqa: E402
from repro.experiments.figure9 import figure9_plan  # noqa: E402
from repro.plans import RunPlan, ScenarioPlan, SearchPlan  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

PORT = 8741
URL = f"http://127.0.0.1:{PORT}"
TRIALS = 25
SPECS_A = (40.0,)
SPECS_B = (40.0, 60.0)  # overlap: one novel shard


def sweep(specs):
    return RunPlan(
        workload="sweep",
        search=SearchPlan(trials=TRIALS),
        scenario=ScenarioPlan(datasets=("mobilenet",),
                              devices=("xc7z020-ddr-narrow",),
                              specs_ms=specs),
    )


def wait_for_server(client, deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    raise SystemExit("server did not come up in time")


def run_sweep(client, plan):
    """Submit one sweep; returns (executed_ids, cached_ids)."""
    job = client.submit(plan)
    client.wait(job["job_id"], timeout=300)
    events = [event_from_dict(doc)
              for doc in client.events(job["job_id"])["events"]]
    executed = [e.shard_id for e in events
                if isinstance(e, SearchStarted) and e.shard_id != "sweep"]
    cached = [e.shard_id for e in events if isinstance(e, ShardCached)]
    return executed, cached


def main():
    workdir = Path(tempfile.mkdtemp(prefix="mobilenet-smoke-"))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(PORT), "--workers", "1",
         "--store-dir", str(workdir / "store"),
         "--checkpoint-dir", str(workdir / "checkpoints")],
        env=env,
    )
    client = ServiceClient(URL)
    try:
        wait_for_server(client)

        # -- 1: the MobileNet scenario executes cold --------------------
        executed_a, cached_a = run_sweep(client, sweep(SPECS_A))
        assert executed_a == [
            "mobilenet-xc7z020-ddr-narrow-fnas40ms-s0"], executed_a
        assert not cached_a, cached_a
        print(f"sweep A: {len(executed_a)} mobilenet shard(s) executed cold")

        # -- 2: overlapping resubmit finds the shard cache warm ---------
        executed_b, cached_b = run_sweep(client, sweep(SPECS_B))
        assert executed_b == [
            "mobilenet-xc7z020-ddr-narrow-fnas60ms-s0"], executed_b
        assert cached_b == [
            "mobilenet-xc7z020-ddr-narrow-fnas40ms-s0"], cached_b
        print("sweep B: only the novel shard executed, "
              "the mobilenet shard cache was warm")

        # -- 3: figure9 through the same service ------------------------
        fig9 = client.submit(figure9_plan(samples=64))
        info = client.wait(fig9["job_id"], timeout=300)
        assert info["state"] == "done", info
        events = [event_from_dict(doc)
                  for doc in client.events(fig9["job_id"])["events"]]
        pareto = [e for e in events if "frontier point" in e.message]
        assert len(pareto) == 4, [e.message for e in events]  # 2 dev x 2 fam
        print("figure9: 4 frontiers computed "
              f"({', '.join(sorted({e.scope for e in pareto}))})")

        client.shutdown()
        assert server.wait(timeout=30) == 0, server.returncode
        print("server drained and exited 0")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)
    print("OK: mobilenet scenario + warm shard cache + figure9 over HTTP")


if __name__ == "__main__":
    main()
