"""Overlapping sweeps share shard results through the store.

The shard-memoization smoke the CI ``store-memo-smoke`` job runs:

1. sweep A (two timing specs) executes cold through a persistent
   result store;
2. overlapping sweep B (A's specs plus one) executes **only its novel
   shard** -- the other two are served from the store as
   ``ShardCached`` events;
3. both sweeps' canonical result bytes are byte-identical to cold runs
   of the same plans against a fresh store;
4. ``repro store gc`` with a journal holding a non-terminal job keeps
   every entry that job references (whole-plan and shard hashes) and
   reclaims the rest; once the journal says terminal, a second GC
   reclaims everything.

Run it from the repo root::

    PYTHONPATH=src python examples/sweep_overlap.py

Exit code 0 means every assertion held.
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.events import SearchStarted, ShardCached  # noqa: E402
from repro.orchestration import plan_shards  # noqa: E402
from repro.plans import RunPlan, ScenarioPlan, SearchPlan, plan_hash  # noqa: E402
from repro.service import ResultStore, SearchService  # noqa: E402
from repro.service.journal import JobJournal  # noqa: E402

TRIALS = 50
SPECS_A = (5.0, 7.5)
SPECS_B = (5.0, 7.5, 10.0)


def sweep(specs):
    return RunPlan(
        workload="sweep",
        search=SearchPlan(trials=TRIALS),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=specs),
    )


def run_sweep(service, plan):
    """Submit one sweep; returns (bytes, executed_ids, cached_ids)."""
    handle = service.submit(plan)
    blob = handle.result_bytes(timeout=600)
    executed = [e.shard_id for e in handle.events()
                if isinstance(e, SearchStarted) and e.shard_id != "sweep"]
    cached = [e.shard_id for e in handle.events()
              if isinstance(e, ShardCached)]
    return blob, executed, cached


def gc(store_dir, *extra):
    """Run the real ``repro store gc`` CLI; returns its stdout line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "store", "gc",
         "--store-dir", str(store_dir), *extra],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    line = proc.stdout.strip()
    print("  gc:", line)
    return line


def main():
    workdir = Path(tempfile.mkdtemp(prefix="sweep-overlap-"))
    store_dir = workdir / "store"
    plan_a, plan_b = sweep(SPECS_A), sweep(SPECS_B)

    with SearchService(workers=1, store=ResultStore(store_dir)) as service:
        bytes_a, executed_a, cached_a = run_sweep(service, plan_a)
        assert len(executed_a) == len(SPECS_A) and not cached_a, (
            executed_a, cached_a)
        print(f"sweep A: {len(executed_a)} shard(s) executed cold")

        bytes_b, executed_b, cached_b = run_sweep(service, plan_b)
        assert executed_b == ["mnist-pynq-z1-fnas10ms-s0"], executed_b
        assert sorted(cached_b) == ["mnist-pynq-z1-fnas5ms-s0",
                                    "mnist-pynq-z1-fnas7.5ms-s0"], cached_b
        print(f"sweep B: only the novel shard executed, "
              f"{len(cached_b)} served from the store")

    # Byte-identity: cold runs of the same plans against a fresh store.
    with SearchService(
        workers=1, store=ResultStore(workdir / "cold-store")
    ) as cold:
        cold_b, _, cold_b_cached = run_sweep(cold, plan_b)
        assert not cold_b_cached
        assert cold_b == bytes_b, "sweep B must be byte-identical to cold"
        cold_a, _, cold_a_cached = run_sweep(cold, plan_a)
        # A's shards are a subset of B's: all of them come from the store,
        # and the merged bytes still match A's cold run.
        assert sorted(cold_a_cached) == sorted(cached_b), cold_a_cached
        assert cold_a == bytes_a, "sweep A must be byte-identical to cold"
    print(f"byte-identity: A ({len(bytes_a)} bytes) and B "
          f"({len(bytes_b)} bytes) match their cold runs")

    # GC: simulate a coordinator that crashed holding a re-queued sweep
    # A -- its journal entry is non-terminal, so every store entry A
    # references (whole-plan hash + shard hashes) must survive.
    with JobJournal(store_dir / "journal.jsonl") as journal:
        journal.record("queued", plan_hash(plan_a), "job-recovering",
                       plan_doc=plan_a.to_dict(), priority=0)
    gc(store_dir, "--max-age", "0")
    survivors = ResultStore(store_dir)
    assert plan_hash(plan_a) in survivors
    for shard in plan_shards(plan_a):
        assert shard.shard_hash in survivors, shard.shard_id
    assert plan_hash(plan_b) not in survivors  # dead: B is terminal
    print(f"gc: {len(survivors)} live entr(y/ies) survived, "
          "terminal sweep B reclaimed")

    # The recovering job completes; now nothing is pinned.
    with JobJournal(store_dir / "journal.jsonl") as journal:
        journal.record("done", plan_hash(plan_a), "job-recovering")
    gc(store_dir, "--max-age", "0")
    assert len(ResultStore(store_dir)) == 0
    print("gc: store empty once the journal says terminal")
    print("sweep overlap smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
