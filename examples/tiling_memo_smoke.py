"""Two pool workers share the on-disk tiling memo.

The execution-runtime smoke the CI ``campaign-scaling`` job runs:

1. a fresh :class:`~repro.service.WorkerPool` worker executes one FNAS
   shard with its tiling memo's disk tier pointed at a shared cache
   directory -- every layer design is a disk **miss** (cold cache) and
   is written through;
2. a *second, brand-new* worker process (fresh pool, so nothing is
   inherited in memory) executes the same shard -- its in-process memo
   is cold, so lookups fall through to the disk tier, and its
   disk-tier **hit rate must be positive**: worker 1's layer designs
   warmed worker 2 across the process boundary.

Run it from the repo root::

    PYTHONPATH=src python examples/tiling_memo_smoke.py

Exit code 0 means every assertion held.
"""

import functools
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.fpga.tiling import configure_disk_cache  # noqa: E402
from repro.service.pool import WorkerPool  # noqa: E402

TRIALS = 30


def run_shard_and_snapshot_memo(seed: int) -> dict:
    """Worker-side body: run one shard, return this process's memo stats."""
    from repro.fpga.tiling import process_memo_snapshot
    from repro.orchestration import run_shard, shard_grid

    shards = shard_grid(["mnist"], ["pynq-z1"], seeds=[seed],
                        specs_ms=[5.0], trials=TRIALS)
    run_shard(shards[0])
    return process_memo_snapshot().get("disk", {"hits": 0, "misses": 0})


def run_in_fresh_worker(tiling_dir: str, seed: int) -> dict:
    """One task on a one-worker pool torn down afterwards: the next
    call gets a genuinely fresh process with a cold in-memory memo."""
    results = {}
    with WorkerPool(1, name="tiling-smoke") as pool:
        handle = pool.submit(
            run_shard_and_snapshot_memo, [(seed,)],
            on_item=results.__setitem__,
            setup=functools.partial(configure_disk_cache, tiling_dir),
        )
        while not handle.finished:
            pool.wait([handle], timeout=0.5)
        if handle.error is not None:
            raise handle.error
    return results[0]


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-tiling-smoke-") as tmp:
        tiling_dir = str(Path(tmp) / "tiling")

        first = run_in_fresh_worker(tiling_dir, seed=0)
        entries = len(list(Path(tiling_dir).glob("*.json")))
        print(f"worker 1 (cold cache): disk tier {first}, "
              f"{entries} entries written through")
        assert first["misses"] > 0, "worker 1 never consulted the disk tier"
        assert first["hits"] == 0, "a cold cache cannot hit"
        assert entries > 0, "worker 1 wrote no tiling entries"

        second = run_in_fresh_worker(tiling_dir, seed=0)
        total = second["hits"] + second["misses"]
        rate = second["hits"] / total if total else 0.0
        print(f"worker 2 (fresh process, warm cache): disk tier {second}, "
              f"hit rate {rate:.2%}")
        assert second["hits"] > 0, (
            "worker 2's disk tier never hit: the on-disk tiling memo is "
            "not shared across worker processes"
        )

    print("OK: two pool workers shared the on-disk tiling memo")


if __name__ == "__main__":
    main()
