"""Multi-FPGA pipeline scaling study.

The paper's schedule paradigm targets pipelines spread over multiple
FPGAs (Section 1: "the scheduling of tasks on multiple FPGAs should be
taken into consideration").  This example maps a 10-layer CIFAR-sized
network onto 1, 2 and 4 ZU9EG boards, shows how FNAS-Design partitions
layers and DSPs across boards, and how latency scales.

Run:  python examples/multi_fpga_pipeline.py
"""

from repro import (
    Architecture,
    FnasScheduler,
    LatencyEstimator,
    PipelineSimulator,
    Platform,
    TaskGraphGenerator,
    TilingDesigner,
    XCZU9EG,
)


def main() -> None:
    arch = Architecture.from_choices(
        filter_sizes=[3, 3, 5, 3, 5, 3, 5, 3, 3, 3],
        filter_counts=[24, 36, 48, 48, 64, 64, 48, 48, 36, 24],
        input_size=32,
        input_channels=3,
    )
    print(f"network: {arch.describe()}")
    print(f"  {arch.total_macs / 1e6:.0f}M MACs\n")

    designer = TilingDesigner()
    for boards in (1, 2, 4):
        platform = Platform.replicated(XCZU9EG, boards)
        design = designer.design(arch, platform)
        print(f"--- {boards} x {XCZU9EG.name} "
              f"({platform.total_dsps} DSPs total) ---")
        for layer_design, allocation in zip(design.layers,
                                            design.allocations):
            t = layer_design.tiling
            print(f"  layer {allocation.layer_index:>2} -> board "
                  f"{allocation.device_index}  "
                  f"<Tm={t.tm:>3}, Tn={t.tn:>3}, Tr={t.tr:>2}, "
                  f"Tc={t.tc:>2}>  PT={layer_design.processing_time}")
        # Validate the analytical estimate against the cycle simulator
        # (both run FNAS-Design's explored best design).
        analytical = LatencyEstimator(platform).estimate(arch)
        simulated = LatencyEstimator(platform, method="simulate").estimate(arch)
        graph = TaskGraphGenerator().generate(simulated.design)
        trace = PipelineSimulator().run(FnasScheduler().schedule(graph))
        print(f"  analytical latency: {analytical.ms:.3f} ms; "
              f"simulated: {simulated.ms:.3f} ms "
              f"(stalls {trace.total_stall_cycles} cycles)\n")


if __name__ == "__main__":
    main()
