"""Kill/restart recovery smoke: SIGKILL a live server, resume its work.

Drives the crash-consistency contract end to end over real HTTP and a
real SIGKILL:

1. starts ``repro serve`` (process backend) with a persistent store --
   which enables the job journal -- and a checkpoint root;
2. submits a long search plan and waits until the job is running with
   at least one checkpoint on disk;
3. ``SIGKILL``s the server -- no teardown, no terminal journal entry;
4. restarts ``repro serve`` over the same directories and asserts it
   recovered the job from the journal, re-queued it, and resumed it
   from its per-hash checkpoint to completion;
5. runs the identical plan on a fresh, never-killed server and asserts
   the recovered ``/result`` body is **byte-identical** to the
   uninterrupted run's.

Run it from the repo root::

    PYTHONPATH=src python examples/service_kill_recovery.py

Exit code 0 means every assertion held.  The CI ``service-smoke`` job
runs this script after the plain smoke.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.plans import RunPlan, ScenarioPlan, SearchPlan  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

PORT = 8733
URL = f"http://127.0.0.1:{PORT}"
TRIALS = 3000


def plan(seed=6):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=TRIALS),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def start_server(env, store_dir, checkpoint_dir, port=PORT):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--workers", "1", "--backend", "process",
         "--store-dir", str(store_dir),
         "--checkpoint-dir", str(checkpoint_dir)],
        env=env,
    )


def wait_for_server(client, deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    raise SystemExit("server did not come up in time")


def main():
    workdir = Path(tempfile.mkdtemp(prefix="service-kill-recovery-"))
    store_dir = workdir / "store"
    checkpoint_dir = workdir / "checkpoints"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    client = ServiceClient(URL)
    victim = start_server(env, store_dir, checkpoint_dir)
    restarted = None
    try:
        wait_for_server(client)
        submitted = client.submit(plan())
        job_id = submitted["job_id"]
        job_dir = checkpoint_dir / submitted["plan_hash"]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if (client.status(job_id)["state"] == "running"
                    and list(job_dir.glob("*.checkpoint.json"))):
                break
            time.sleep(0.1)
        snapshots = list(job_dir.glob("*.checkpoint.json"))
        assert snapshots, "job never checkpointed; cannot test recovery"
        progress = json.loads(snapshots[0].read_text())["next_index"]
        assert 0 < progress < TRIALS, progress

        # -- the crash: SIGKILL, no goodbyes ---------------------------
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        print(f"server SIGKILLed mid-job at >= trial {progress}")
        # The orphaned job subprocess notices its parent died at the
        # next between-trials poll, snapshots and exits; give it a
        # moment so it cannot race the restarted server's resume.
        time.sleep(3)

        # -- restart over the same directories -------------------------
        restarted = start_server(env, store_dir, checkpoint_dir)
        wait_for_server(client)
        jobs = client.jobs()
        assert [j["job_id"] for j in jobs] == [job_id], jobs
        recovered = client.status(job_id)
        assert recovered["state"] in ("queued", "running", "done"), recovered
        events = client.events(job_id)["events"]
        queued = [e for e in events if e["event"] == "job-queued"]
        assert any("recovered from journal" in e["message"] for e in queued), (
            queued
        )
        print("restarted server re-queued the job from the journal")
        client.wait(job_id, timeout=900)
        recovered_bytes = client.result_bytes(job_id)
        result = json.loads(recovered_bytes)
        assert len(result["trials"]) == TRIALS, len(result["trials"])
        client.shutdown()
        assert restarted.wait(timeout=60) == 0
        restarted = None
        print(f"recovered job resumed to completion "
              f"({len(result['trials'])} trials)")

        # -- uninterrupted reference run -------------------------------
        reference_dir = workdir / "reference"
        reference = start_server(env, reference_dir / "store",
                                 reference_dir / "checkpoints")
        try:
            wait_for_server(client)
            ref_job = client.submit(plan())
            client.wait(ref_job["job_id"], timeout=900)
            reference_bytes = client.result_bytes(ref_job["job_id"])
            client.shutdown()
            assert reference.wait(timeout=60) == 0
        finally:
            if reference.poll() is None:
                reference.kill()
                reference.wait(timeout=30)
        assert recovered_bytes == reference_bytes, (
            "recovered result is not byte-identical to the uninterrupted run"
        )
        print(f"byte-identical to the uninterrupted run "
              f"({len(recovered_bytes)} bytes)")
        print("kill/restart recovery: OK")
        return 0
    finally:
        for proc in (victim, restarted):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
