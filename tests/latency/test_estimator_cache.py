"""The latency estimator's two-tier cache: correctness, bounds, stats."""

import numpy as np
import pytest

from repro.core.search_space import SearchSpace
from repro.configs import MNIST_CONFIG
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator


@pytest.fixture(scope="module")
def space():
    return SearchSpace.from_config(MNIST_CONFIG)


@pytest.fixture(scope="module")
def architectures(space):
    rng = np.random.default_rng(0)
    seen, archs = set(), []
    while len(archs) < 12:
        arch = space.random_architecture(rng)
        if arch.fingerprint() not in seen:
            seen.add(arch.fingerprint())
            archs.append(arch)
    return archs


def platform():
    return Platform.single(PYNQ_Z1)


class TestWholeArchitectureTier:
    def test_cached_estimate_identical_to_fresh(self, architectures):
        cached = LatencyEstimator(platform())
        for arch in architectures:
            first = cached.estimate(arch)
            again = cached.estimate(arch)
            assert again is first  # served from cache, not recomputed
            fresh = LatencyEstimator(platform()).estimate(arch)
            assert fresh.ms == first.ms
            assert fresh.cycles == first.cycles

    def test_hit_miss_statistics(self, architectures):
        estimator = LatencyEstimator(platform())
        for arch in architectures[:5]:
            estimator.estimate(arch)
        assert estimator.stats.misses == 5
        assert estimator.stats.hits == 0
        for arch in architectures[:5]:
            estimator.estimate(arch)
        assert estimator.stats.hits == 5
        assert estimator.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_respects_bound(self, architectures):
        estimator = LatencyEstimator(platform(), max_cache_entries=3)
        for arch in architectures[:5]:
            estimator.estimate(arch)
        assert estimator.cache_size == 3
        assert estimator.stats.evictions == 2
        # The most recent three are hits; the first two were evicted.
        before = estimator.stats.misses
        for arch in architectures[2:5]:
            estimator.estimate(arch)
        assert estimator.stats.misses == before
        estimator.estimate(architectures[0])
        assert estimator.stats.misses == before + 1

    def test_lru_recency_updates_on_hit(self, architectures):
        estimator = LatencyEstimator(platform(), max_cache_entries=2)
        a, b, c = architectures[:3]
        estimator.estimate(a)
        estimator.estimate(b)
        estimator.estimate(a)  # refresh a; b is now least recent
        estimator.estimate(c)  # evicts b
        misses = estimator.stats.misses
        estimator.estimate(a)
        assert estimator.stats.misses == misses  # a survived
        estimator.estimate(b)
        assert estimator.stats.misses == misses + 1  # b was evicted

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError, match="max_cache_entries"):
            LatencyEstimator(platform(), max_cache_entries=0)

    def test_clear_cache_drops_both_tiers(self, architectures):
        estimator = LatencyEstimator(platform())
        estimator.estimate(architectures[0])
        assert estimator.cache_size == 1
        assert len(estimator.layer_memo) > 0
        estimator.clear_cache()
        assert estimator.cache_size == 0
        assert len(estimator.layer_memo) == 0


class TestEstimateBatch:
    def test_preserves_order_and_dedupes(self, architectures):
        estimator = LatencyEstimator(platform())
        batch = [architectures[0], architectures[1], architectures[0],
                 architectures[2], architectures[1]]
        estimates = estimator.estimate_batch(batch)
        assert len(estimates) == 5
        for arch, estimate in zip(batch, estimates):
            assert estimate.architecture.fingerprint() == arch.fingerprint()
        # Three distinct fingerprints -> three misses, two in-batch hits.
        assert estimator.stats.misses == 3
        assert estimator.stats.hits == 2

    def test_matches_single_estimates(self, architectures):
        batched = LatencyEstimator(platform()).estimate_batch(architectures)
        singles = [
            LatencyEstimator(platform()).estimate(a) for a in architectures
        ]
        assert [e.ms for e in batched] == [e.ms for e in singles]


class TestLayerMemoTier:
    def test_memo_hits_across_fingerprints(self, architectures):
        estimator = LatencyEstimator(platform())
        for arch in architectures:
            estimator.estimate(arch)
        stats = estimator.layer_memo_stats
        assert stats.hits > 0, (
            "architectures sharing layer shapes must reuse tiling work"
        )
        assert stats.hit_rate > 0.0

    def test_memo_does_not_change_results(self, architectures):
        with_memo = LatencyEstimator(platform())
        without = LatencyEstimator(platform(), use_layer_memo=False)
        for arch in architectures:
            assert with_memo.estimate(arch).ms == without.estimate(arch).ms
        assert without.layer_memo_stats.lookups == 0

    def test_memo_shared_across_explorer_strategies(self, architectures):
        estimator = LatencyEstimator(platform())
        estimator.estimate(architectures[0])
        # Both spatial strategies ran for every layer of the architecture.
        assert len(estimator.layer_memo) >= architectures[0].depth
