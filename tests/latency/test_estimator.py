"""Tests for the latency estimation facade and the design explorer."""

import pytest

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.fpga.tiling import TilingDesigner
from repro.latency.estimator import ANALYTICAL, SIMULATE, LatencyEstimator
from repro.latency.explorer import DesignExplorer


@pytest.fixture
def arch():
    return Architecture.from_choices(
        [5, 7, 5], [9, 18, 36], input_size=28, input_channels=1
    )


class TestLatencyEstimator:
    def test_analytical_estimate(self, arch, pynq_platform):
        estimator = LatencyEstimator(pynq_platform)
        estimate = estimator.estimate(arch)
        assert estimate.cycles > 0
        assert estimate.ms == pytest.approx(
            pynq_platform.cycles_to_ms(estimate.cycles))
        assert estimate.method == ANALYTICAL
        assert estimate.report is not None

    def test_simulate_estimate_at_least_analytical(self, arch, pynq_platform):
        analytical = LatencyEstimator(pynq_platform).estimate(arch)
        simulated = LatencyEstimator(
            pynq_platform, method=SIMULATE).estimate(arch)
        assert simulated.cycles >= analytical.cycles

    def test_cache_hit_returns_same_object(self, arch, pynq_platform):
        estimator = LatencyEstimator(pynq_platform)
        first = estimator.estimate(arch)
        second = estimator.estimate(arch)
        assert first is second
        assert estimator.cache_size == 1

    def test_clear_cache(self, arch, pynq_platform):
        estimator = LatencyEstimator(pynq_platform)
        estimator.estimate(arch)
        estimator.clear_cache()
        assert estimator.cache_size == 0

    def test_meets(self, arch, pynq_platform):
        estimate = LatencyEstimator(pynq_platform).estimate(arch)
        assert estimate.meets(estimate.ms + 1.0)
        assert not estimate.meets(estimate.ms / 2.0)
        with pytest.raises(ValueError):
            estimate.meets(0.0)

    def test_rejects_unknown_method(self, pynq_platform):
        with pytest.raises(ValueError, match="method"):
            LatencyEstimator(pynq_platform, method="guess")

    def test_explicit_designer_disables_exploration(self, arch,
                                                    pynq_platform):
        fixed = LatencyEstimator(
            pynq_platform, designer=TilingDesigner("max-reuse"))
        explored = LatencyEstimator(pynq_platform)
        assert explored.estimate(arch).cycles <= fixed.estimate(arch).cycles


class TestDesignExplorer:
    def test_best_is_minimum(self, arch, pynq_platform):
        result = DesignExplorer().explore(arch, pynq_platform)
        assert result.best.total_cycles == min(
            c.total_cycles for c in result.evaluated)

    def test_evaluates_all_policy_combinations(self, arch, pynq_platform):
        result = DesignExplorer().explore(arch, pynq_platform)
        combos = {(c.spatial_strategy, c.first_reuse)
                  for c in result.evaluated}
        assert len(combos) == 4

    def test_improvement_at_least_one(self, arch, pynq_platform):
        result = DesignExplorer().explore(arch, pynq_platform)
        assert result.improvement_over_worst >= 1.0
