"""Multithreaded hammer over the estimator's two cache tiers.

Regression for the unlocked-cache bugs: ``LatencyEstimator``'s LRU
``OrderedDict`` and the shared ``LayerDesignMemo`` used to be mutated
with no lock, so concurrent ``estimate()`` calls could corrupt the
OrderedDict (``move_to_end``/``popitem`` racing ``__setitem__``), lose
counter increments, or evict past the configured bound.  Both tiers
are locked now; this hammer pins the invariants under real thread
contention.
"""

import threading

import pytest

from repro.core.architecture import Architecture
from repro.fpga.device import get_device
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator

THREADS = 8
ROUNDS = 30


def architectures():
    """A small pool of distinct MNIST-space architectures."""
    pool = []
    for sizes, counts in (
        ([5, 7, 5, 7], [9, 18, 18, 36]),
        ([3, 5, 3, 5], [9, 9, 18, 18]),
        ([7, 7, 7, 7], [18, 18, 36, 36]),
        ([5, 5, 5, 5], [9, 18, 36, 36]),
        ([3, 3, 3, 3], [9, 9, 9, 9]),
        ([7, 5, 3, 5], [36, 18, 9, 18]),
    ):
        pool.append(Architecture.from_choices(
            sizes, counts, input_size=28, input_channels=1,
        ))
    return pool


@pytest.fixture()
def estimator():
    platform = Platform.replicated(get_device("pynq-z1"), 1)
    return LatencyEstimator(platform)


def hammer(estimator, pool, errors, results):
    try:
        for round_index in range(ROUNDS):
            for arch in pool:
                estimate = estimator.estimate(arch)
                results.setdefault(arch.fingerprint(), set()).add(
                    estimate.ms
                )
    except BaseException as exc:  # noqa: BLE001 - surfaced by the test
        errors.append(exc)


def test_concurrent_estimate_is_consistent(estimator):
    pool = architectures()
    errors: list[BaseException] = []
    results: dict[str, set[float]] = {}
    threads = [
        threading.Thread(
            target=hammer, args=(estimator, pool, errors, results)
        )
        for _ in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not errors, errors

    # Determinism: every thread saw the same latency per fingerprint.
    assert len(results) == len(pool)
    assert all(len(values) == 1 for values in results.values())

    # Counter integrity: every lookup was counted exactly once.  Misses
    # may exceed the distinct-architecture count (racing threads can
    # both compute a fresh estimate) but hits+misses never lose ticks.
    total_calls = THREADS * ROUNDS * len(pool)
    assert estimator.stats.hits + estimator.stats.misses == total_calls
    assert len(pool) <= estimator.stats.misses <= THREADS * len(pool)
    assert estimator.cache_size == len(pool)

    # The shared layer memo kept its counters intact too.
    memo_stats = estimator.layer_memo_stats
    assert memo_stats.hits + memo_stats.misses == memo_stats.lookups
    assert memo_stats.lookups > 0


def test_concurrent_estimate_respects_the_lru_bound():
    platform = Platform.replicated(get_device("pynq-z1"), 1)
    estimator = LatencyEstimator(platform, max_cache_entries=3)
    pool = architectures()
    errors: list[BaseException] = []
    threads = [
        threading.Thread(
            target=hammer, args=(estimator, pool, errors, {})
        )
        for _ in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not errors, errors
    assert estimator.cache_size <= 3
    assert estimator.stats.evictions > 0
