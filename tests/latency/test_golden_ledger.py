"""Byte-identity wall: flat-bandwidth devices vs the frozen seed ledger.

``golden_ledger.json`` was generated (see ``golden_ledger_gen.py``)
before the DRAM subsystem existed.  Devices without DRAM fields must
keep producing exactly those numbers -- cycle counts, ``repr``-exact
milliseconds, and per-layer tiling vectors -- whatever the memory-
hierarchy model grows into.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.architecture import Architecture
from repro.fpga.device import get_device
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator

FIXTURE = Path(__file__).resolve().parent / "golden_ledger.json"
LEDGER = json.loads(FIXTURE.read_text())


def _cases():
    for key, expected in sorted(LEDGER["entries"].items()):
        yield pytest.param(key, expected, id=key)


def _parse(key: str):
    device, method, arch = key.split("|", 2)
    fs_part, fn_part = arch.split("|")
    sizes = [int(x) for x in fs_part.removeprefix("fs=").split(",")]
    counts = [int(x) for x in fn_part.removeprefix("fn=").split(",")]
    return device, method, sizes, counts


class TestGoldenLedger:
    def test_dram_less_catalog_devices(self):
        """Every pinned device still has no DRAM model attached."""
        for name in LEDGER["devices"]:
            assert getattr(get_device(name), "dram", None) is None

    @pytest.mark.parametrize("key,expected", _cases())
    def test_byte_identical(self, key, expected):
        device_name, method, sizes, counts = _parse(key)
        platform = Platform.single(get_device(device_name))
        arch = Architecture.from_choices(sizes, counts, input_size=28)
        est = LatencyEstimator(platform, method=method).estimate(arch)
        assert est.cycles == expected["cycles"]
        assert repr(est.ms) == expected["ms"]
        tilings = [
            [l.tiling.tm, l.tiling.tn, l.tiling.tr, l.tiling.tc]
            for l in est.design.layers
        ]
        assert tilings == expected["tilings"]
