"""Tests for the closed-form FNAS-Analyzer (equations (2)-(5))."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1, XCZU9EG
from repro.fpga.platform import Platform
from repro.fpga.tiling import LayerDesign, TilingDesigner, TilingVector
from repro.latency.analyzer import FnasAnalyzer
from repro.scheduling.base import IFM_REUSE, OFM_REUSE
from repro.scheduling.fnas_sched import FnasScheduler
from repro.scheduling.simulator import PipelineSimulator
from repro.taskgraph.graph import TaskGraphGenerator


def design_of(counts, size=16, channels=1, kernel=3, platform=None):
    arch = Architecture.from_choices(
        [kernel] * len(counts), list(counts), input_size=size,
        input_channels=channels,
    )
    platform = platform or Platform.single(PYNQ_Z1)
    return TilingDesigner().design(arch, platform)


class TestStartDelta:
    def make_layers(self):
        arch = Architecture.from_choices([3, 3], [8, 8], input_size=8)
        up = LayerDesign(0, arch.layers[0], TilingVector(2, 1, 8, 8))
        down = LayerDesign(1, arch.layers[1], TilingVector(2, 4, 8, 8))
        return up, down

    def test_ofm_reuse_delta_formula(self):
        up, down = self.make_layers()
        # eq (3): ceil(N0/Tn0)=1, ceil(Tn1/Tm0)=2, ET0 = 3*3*8*8 = 576.
        delta = FnasAnalyzer.start_delta(up, down, OFM_REUSE)
        assert delta == 1 * 2 * 576

    def test_ifm_reuse_delta_formula(self):
        up, down = self.make_layers()
        # eq (4): [(1-1)*ceil(8/2) + 2] * 576
        delta = FnasAnalyzer.start_delta(up, down, IFM_REUSE)
        assert delta == 2 * 576

    def test_ifm_delta_at_least_ofm_delta(self):
        """IFM reuse delays the consumer at least as much as OFM reuse."""
        design = design_of([8, 16, 8])
        for i in range(1, 3):
            up, down = design.layers[i - 1], design.layers[i]
            assert (FnasAnalyzer.start_delta(up, down, IFM_REUSE)
                    >= FnasAnalyzer.start_delta(up, down, OFM_REUSE))

    def test_rejects_unknown_strategy(self):
        up, down = self.make_layers()
        with pytest.raises(ValueError):
            FnasAnalyzer.start_delta(up, down, "mix")


class TestAnalyze:
    def test_single_layer_is_pure_processing(self):
        design = design_of([8])
        report = FnasAnalyzer().analyze(design)
        assert report.total_cycles == design.layers[0].processing_time
        assert report.start_times == (0,)

    def test_start_times_accumulate_deltas(self):
        design = design_of([8, 16, 8])
        report = FnasAnalyzer().analyze(design)
        expected = 0
        strategies = [l.reuse for l in report.layers]
        for i in range(1, 3):
            expected += FnasAnalyzer.start_delta(
                design.layers[i - 1], design.layers[i], strategies[i - 1]
            )
            assert report.layers[i].start_time == expected

    def test_total_ms_uses_platform_clock(self):
        design = design_of([8, 16])
        report = FnasAnalyzer().analyze(design)
        assert report.total_ms == pytest.approx(
            design.platform.cycles_to_ms(report.total_cycles)
        )

    def test_bottleneck_layer(self):
        design = design_of([4, 32, 4])
        report = FnasAnalyzer().analyze(design)
        pts = [l.processing_time for l in report.layers]
        assert report.layers[report.bottleneck_layer].processing_time == max(pts)

    def test_custom_strategy_assignment(self):
        design = design_of([8, 16, 8])
        uniform = FnasAnalyzer(strategies=[OFM_REUSE] * 3).analyze(design)
        alternating = FnasAnalyzer().analyze(design)
        assert uniform.total_cycles <= alternating.total_cycles or True
        # With uniform OFM reuse all deltas use eq (3).
        for layer in uniform.layers:
            assert layer.reuse == OFM_REUSE

    def test_strategy_length_mismatch_raises(self):
        design = design_of([8, 16])
        with pytest.raises(ValueError):
            FnasAnalyzer(strategies=[OFM_REUSE]).analyze(design)


class TestAnalyzerVsSimulator:
    """The analyzer is exact for stall-free FNAS schedules and a lower
    bound in general -- the paper's claimed tightness, checked against
    the event simulator."""

    def simulate(self, design, first_reuse=OFM_REUSE):
        graph = TaskGraphGenerator().generate(design)
        schedule = FnasScheduler(first_reuse=first_reuse).schedule(graph)
        return PipelineSimulator().run(schedule)

    def test_exact_on_paper_like_pipeline(self):
        design = design_of([8, 16, 8, 16])
        report = FnasAnalyzer().analyze(design)
        result = self.simulate(design)
        assert result.total_stall_cycles == 0
        assert report.total_cycles == result.makespan
        assert report.start_times == tuple(result.start_times)

    @settings(deadline=None, max_examples=20)
    @given(
        counts=st.lists(st.sampled_from([4, 8, 16, 32, 64]),
                        min_size=1, max_size=5),
        size=st.sampled_from([8, 14, 16, 28]),
        kernel=st.sampled_from([1, 3, 5]),
    )
    def test_lower_bound_property(self, counts, size, kernel):
        if kernel > size:
            return
        design = design_of(counts, size=size, kernel=kernel)
        report = FnasAnalyzer().analyze(design)
        result = self.simulate(design)
        assert report.total_cycles <= result.makespan

    @settings(deadline=None, max_examples=10)
    @given(
        counts=st.lists(st.sampled_from([9, 18, 36]), min_size=2,
                        max_size=4),
    )
    def test_exact_on_mnist_space_shapes(self, counts):
        design = design_of(counts, size=28, kernel=5)
        report = FnasAnalyzer().analyze(design)
        result = self.simulate(design)
        if result.total_stall_cycles == 0:
            assert report.total_cycles == result.makespan
        else:
            assert report.total_cycles <= result.makespan

    #: Wide-then-narrow channel transitions where the pre-fix analyzer
    #: under-counted the start deltas (the upstream spatial grid is
    #: finer than the downstream's first input window); pinned exact so
    #: the row/col prefix term of ``start_delta`` cannot regress.
    FORMER_START_DELTA_GAPS = (
        (36, 9, 9, 9),
        (36, 9, 9, 18),
        (36, 18, 9, 18),
    )

    @pytest.mark.parametrize("counts", FORMER_START_DELTA_GAPS)
    def test_wide_then_narrow_transitions_are_exact(self, counts):
        design = design_of(list(counts), size=28, kernel=5)
        report = FnasAnalyzer().analyze(design)
        result = self.simulate(design)
        assert result.total_stall_cycles == 0
        assert report.total_cycles == result.makespan
        assert report.start_times == tuple(result.start_times)
