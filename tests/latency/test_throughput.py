"""Tests for the throughput extension."""

import pytest

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.fpga.tiling import TilingDesigner
from repro.latency.analyzer import FnasAnalyzer
from repro.latency.throughput import analyze_throughput


@pytest.fixture(scope="module")
def design():
    arch = Architecture.from_choices([3, 3, 3], [8, 32, 8], input_size=16)
    return TilingDesigner().design(arch, Platform.single(PYNQ_Z1))


class TestThroughput:
    def test_bottleneck_is_max_pt(self, design):
        report = FnasAnalyzer().analyze(design)
        tp = analyze_throughput(design, report)
        assert tp.bottleneck_cycles == max(
            l.processing_time for l in report.layers)
        assert tp.bottleneck_layer == report.bottleneck_layer

    def test_batch_one_equals_latency(self, design):
        tp = analyze_throughput(design)
        assert tp.batch_latency_cycles(1) == tp.single_latency_cycles

    def test_batch_latency_linear_in_batch(self, design):
        tp = analyze_throughput(design)
        delta = (tp.batch_latency_cycles(11) - tp.batch_latency_cycles(1))
        assert delta == 10 * tp.bottleneck_cycles

    def test_throughput_matches_clock(self, design):
        tp = analyze_throughput(design)
        clock_hz = design.platform.clock_mhz * 1e6
        assert tp.throughput_fps == pytest.approx(
            clock_hz / tp.bottleneck_cycles)

    def test_effective_fps_approaches_peak(self, design):
        tp = analyze_throughput(design)
        small = tp.effective_fps(1)
        large = tp.effective_fps(1000)
        assert small < large <= tp.throughput_fps * 1.0001

    def test_batch_validation(self, design):
        with pytest.raises(ValueError):
            analyze_throughput(design).batch_latency_cycles(0)
