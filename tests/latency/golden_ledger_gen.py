"""Regenerate ``golden_ledger.json`` (the DRAM-less byte-identity pin).

Run from the repo root::

    PYTHONPATH=src python tests/latency/golden_ledger_gen.py

The fixture must only ever be regenerated from a revision whose
estimates are known-good: it freezes, for a deterministic set of
MNIST-space architectures on every flat-bandwidth catalog device, the
exact cycle counts, millisecond figures (``repr`` round-trip) and
per-layer tiling vectors of both estimator methods.  The companion test
``test_golden_ledger.py`` fails if any of those bytes move.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.architecture import Architecture
from repro.fpga.device import DEVICE_CATALOG, get_device
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator

OUTPUT = Path(__file__).resolve().parent / "golden_ledger.json"

#: (filter_sizes, filter_counts) of the pinned MNIST-space architectures.
ARCHITECTURES = [
    ((5, 5, 5, 5), (9, 9, 9, 9)),
    ((7, 7, 7, 7), (36, 36, 36, 36)),
    ((5, 7, 14, 5), (9, 18, 36, 18)),
    ((14, 14, 7, 7), (36, 18, 18, 9)),
    ((7, 5, 7, 5), (18, 36, 9, 36)),
]

#: Flat-bandwidth devices pinned by the ledger (DRAM-modeled catalog
#: entries added later are deliberately not listed here).
DEVICES = ("xc7a50t", "xc7z020", "pynq-z1", "xczu9eg")


def arch_key(sizes, counts) -> str:
    return "fs=" + ",".join(map(str, sizes)) + "|fn=" + ",".join(map(str, counts))


def build() -> dict:
    entries = {}
    for device_name in DEVICES:
        platform = Platform.single(get_device(device_name))
        for method in ("analytical", "simulate"):
            estimator = LatencyEstimator(platform, method=method)
            for sizes, counts in ARCHITECTURES:
                arch = Architecture.from_choices(
                    list(sizes), list(counts), input_size=28
                )
                est = estimator.estimate(arch)
                entries[f"{device_name}|{method}|{arch_key(sizes, counts)}"] = {
                    "cycles": est.cycles,
                    "ms": repr(est.ms),
                    "tilings": [
                        [l.tiling.tm, l.tiling.tn, l.tiling.tr, l.tiling.tc]
                        for l in est.design.layers
                    ],
                }
    return {"devices": list(DEVICES), "entries": entries}


if __name__ == "__main__":
    OUTPUT.write_text(json.dumps(build(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
