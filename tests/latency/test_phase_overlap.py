"""Exactness wall for the memory-hierarchy extension.

Two properties guard the DRAM/phase-overlap path:

* the analyzer stays exact (stall-free) or a lower bound against the
  **in-order** event simulation for depthwise-separable pipelines and
  for devices with a burst-level DRAM model -- the closed form models
  the nominal task order, so in-order is the policy it mirrors.  (The
  ready-to-run queue (P3) may legitimately *beat* the nominal order on
  dw pipelines by backfilling a fast pointwise PE; that win is pinned
  separately below.);
* phase latencies only ever *add* memory cost: the compute phase equals
  the seed's ``execution_time``, so a DRAM-modeled device is never
  faster than the same fabric under the flat memory model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architecture import Architecture
from repro.fpga.device import (
    PYNQ_Z1,
    XC7Z020,
    XC7Z020_DDR_NARROW,
    XC7Z020_DDR_WIDE,
)
from repro.fpga.platform import Platform
from repro.latency.analyzer import FnasAnalyzer
from repro.fpga.tiling import TilingDesigner
from repro.scheduling.fnas_sched import FnasScheduler
from repro.scheduling.simulator import PipelineSimulator
from repro.taskgraph.graph import TaskGraphGenerator


def design_of(counts, conv_types=None, size=16, channels=3, kernel=3,
              device=PYNQ_Z1):
    arch = Architecture.from_choices(
        [kernel] * len(counts), list(counts), input_size=size,
        input_channels=channels, conv_types=conv_types,
    )
    return TilingDesigner().design(arch, Platform.single(device))


def simulate(design, policy="in-order"):
    graph = TaskGraphGenerator().generate(design)
    schedule = FnasScheduler(policy=policy).schedule(graph)
    return PipelineSimulator().run(schedule)


def assert_wall(design):
    """Exact when stall-free, a lower bound otherwise."""
    report = FnasAnalyzer().analyze(design)
    result = simulate(design)
    if result.total_stall_cycles == 0:
        assert report.total_cycles == result.makespan
        assert report.start_times == tuple(result.start_times)
    else:
        assert report.total_cycles <= result.makespan


class TestDepthwiseWall:
    def test_exact_on_a_separable_pipeline(self):
        design = design_of([16, 16], conv_types=["separable", "separable"])
        assert_wall(design)
        # Separable layers expand to dw + pw pairs.
        assert [l.spec.is_depthwise for l in design.layers] == [
            True, False, True, False]

    @settings(deadline=None, max_examples=25)
    @given(
        counts=st.lists(st.sampled_from([8, 16, 32]), min_size=1,
                        max_size=3),
        separable=st.data(),
        size=st.sampled_from([8, 16, 28]),
        kernel=st.sampled_from([3, 5]),
    )
    def test_wall_holds_for_mixed_conv_types(self, counts, separable, size,
                                             kernel):
        types = separable.draw(st.lists(
            st.sampled_from(["separable", "standard"]),
            min_size=len(counts), max_size=len(counts)))
        design = design_of(counts, conv_types=types, size=size, kernel=kernel)
        assert_wall(design)

    @settings(deadline=None, max_examples=15)
    @given(
        counts=st.lists(st.sampled_from([8, 16, 32]), min_size=1,
                        max_size=3),
        device=st.sampled_from([XC7Z020_DDR_WIDE, XC7Z020_DDR_NARROW]),
    )
    def test_wall_holds_on_dram_devices(self, counts, device):
        types = ["separable" if i % 2 == 0 else "standard"
                 for i in range(len(counts))]
        design = design_of(counts, conv_types=types, device=device)
        assert_wall(design)

    def test_ready_queue_can_beat_the_nominal_order(self):
        """P3 pinned: on an rc-tiled dw pipeline the ready-to-run queue
        backfills around staggered tile readiness and lands *under* the
        analyzer's nominal-order closed form -- which is why the wall
        above simulates in-order."""
        from repro.fpga.device import XC7Z020_DDR_NARROW as DEV

        design = design_of([32, 32, 32], conv_types=["separable"] * 3,
                           size=28, device=DEV)
        report = FnasAnalyzer().analyze(design)
        in_order = simulate(design, policy="in-order")
        ready_queue = simulate(design, policy="ready-queue")
        assert ready_queue.makespan <= in_order.makespan
        assert ready_queue.makespan < report.total_cycles
        assert report.total_cycles <= in_order.makespan


class TestPhasePropagation:
    def test_plain_devices_have_no_phases(self):
        design = design_of([8, 16])
        assert all(l.phases is None for l in design.layers)
        report = FnasAnalyzer().analyze(design)
        assert all(l.phases is None for l in report.layers)

    def test_dram_devices_carry_phases_end_to_end(self):
        design = design_of([8, 16], device=XC7Z020_DDR_WIDE)
        assert all(l.phases is not None for l in design.layers)
        for layer in design.layers:
            assert layer.phases.compute_cycles == layer.execution_time
            assert layer.effective_execution_time == (
                layer.phases.effective_cycles
            )
        report = FnasAnalyzer().analyze(design)
        for layer in report.layers:
            assert layer.phases is not None
            assert layer.bound in ("load", "compute", "write")

    def test_memory_phases_never_speed_a_device_up(self):
        """Same fabric, flat vs DRAM memory model: DRAM cost >= flat."""
        for counts, types in (
            ([8, 16, 8], None),
            ([16, 16], ["separable", "standard"]),
        ):
            flat = FnasAnalyzer().analyze(
                design_of(counts, conv_types=types, device=XC7Z020))
            for device in (XC7Z020_DDR_WIDE, XC7Z020_DDR_NARROW):
                modeled = FnasAnalyzer().analyze(
                    design_of(counts, conv_types=types, device=device))
                assert modeled.total_cycles >= flat.total_cycles

    def test_narrow_port_is_never_faster_than_wide(self):
        for types in (None, ["separable", "separable"]):
            counts = [16, 16]
            wide = FnasAnalyzer().analyze(
                design_of(counts, conv_types=types,
                          device=XC7Z020_DDR_WIDE))
            narrow = FnasAnalyzer().analyze(
                design_of(counts, conv_types=types,
                          device=XC7Z020_DDR_NARROW))
            assert narrow.total_cycles >= wide.total_cycles

    def test_depthwise_is_load_bound_on_the_narrow_port(self):
        """The figure9 mechanism: dw layers pin to the load phase when
        bandwidth starves."""
        design = design_of([32, 32], conv_types=["separable", "separable"],
                           size=28, kernel=5, device=XC7Z020_DDR_NARROW)
        # The input dw layer sees only 3 channels and stays compute
        # bound; the deep dw layer (32 channels) starves on loads.
        deep_dw = [l for l in design.layers
                   if l.spec.is_depthwise and l.spec.in_channels >= 32]
        assert deep_dw
        assert all(l.phases.bound == "load" for l in deep_dw)
        # The same layers are NOT load-bound on the wide port.
        wide = design_of([32, 32], conv_types=["separable", "separable"],
                         size=28, kernel=5, device=XC7Z020_DDR_WIDE)
        for narrow_layer, wide_layer in zip(design.layers, wide.layers):
            assert (wide_layer.phases.load_cycles
                    <= narrow_layer.phases.load_cycles)
