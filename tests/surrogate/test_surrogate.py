"""Tests for the accuracy surrogate and search-cost models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.configs import CIFAR_CONFIG, IMAGENET_CONFIG, MNIST_CONFIG
from repro.core.search_space import SearchSpace
from repro.surrogate.accuracy_model import (
    CALIBRATIONS,
    SurrogateAccuracyModel,
    SurrogateCalibration,
)
from repro.surrogate.cost_model import (
    LATENCY_EVAL_SECONDS,
    MNIST_NAS_TOTAL_SECONDS,
    TRIAL_OVERHEAD_SECONDS,
    SearchCostModel,
)


@pytest.fixture(scope="module")
def space():
    return SearchSpace.from_config(MNIST_CONFIG)


@pytest.fixture(scope="module")
def model(space):
    return SurrogateAccuracyModel(space)


class TestAccuracyModel:
    def test_extremes_hit_calibration_band(self, space, model):
        cal = CALIBRATIONS["mnist"]
        smallest = space.decode([0] * space.num_decisions)
        largest = space.decode([2, 2] * 4)
        small_acc = model.accuracy(smallest)
        large_acc = model.accuracy(largest)
        assert small_acc == pytest.approx(cal.floor, abs=0.005)
        assert large_acc == pytest.approx(cal.ceiling, abs=0.005)
        assert large_acc > small_acc

    def test_capacity_normalised(self, space, model):
        smallest = space.decode([0] * space.num_decisions)
        largest = space.decode([2, 2] * 4)
        assert model.capacity(smallest) == 0.0
        assert model.capacity(largest) == 1.0

    def test_monotone_in_capacity_modulo_noise(self, space, model, rng):
        """Larger capacity gap must dominate the noise."""
        archs = sorted(
            (space.random_architecture(rng) for _ in range(30)),
            key=model.capacity,
        )
        low = archs[:5]
        high = archs[-5:]
        low_mean = np.mean([model.accuracy(a) for a in low])
        high_mean = np.mean([model.accuracy(a) for a in high])
        assert high_mean > low_mean

    def test_deterministic(self, space, model, rng):
        arch = space.random_architecture(rng)
        assert model.accuracy(arch) == model.accuracy(arch)

    def test_seed_varies_noise_only_slightly(self, space, rng):
        arch = space.random_architecture(rng)
        a = SurrogateAccuracyModel(space, seed=0).accuracy(arch)
        b = SurrogateAccuracyModel(space, seed=1).accuracy(arch)
        assert a != b
        assert abs(a - b) < 0.01

    def test_all_dataset_calibrations_exist(self):
        for name in ("mnist", "cifar10", "imagenet"):
            assert name in CALIBRATIONS

    def test_spread_is_about_a_point(self):
        """Figure 7(a)'s sub-1% losses require a small floor-ceiling gap."""
        for cal in CALIBRATIONS.values():
            assert 0.005 <= cal.ceiling - cal.floor <= 0.02

    def test_unknown_space_requires_explicit_calibration(self):
        space = SearchSpace(name="custom", num_layers=2,
                            filter_sizes=(3, 5), filter_counts=(4, 8),
                            input_size=16, input_channels=1, num_classes=10)
        with pytest.raises(KeyError, match="calibration"):
            SurrogateAccuracyModel(space)
        custom = SurrogateCalibration(floor=0.5, ceiling=0.6,
                                      noise_sigma=0.0)
        model = SurrogateAccuracyModel(space, calibration=custom)
        assert 0.5 <= model.accuracy(space.decode([0, 0, 0, 0])) <= 0.6

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            SurrogateCalibration(floor=0.9, ceiling=0.8, noise_sigma=0.0)
        with pytest.raises(ValueError):
            SurrogateCalibration(floor=0.5, ceiling=0.9, noise_sigma=-1.0)

    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 1000))
    def test_accuracy_always_in_unit_interval(self, space, model, seed):
        arch = space.random_architecture(np.random.default_rng(seed))
        assert 0.0 <= model.accuracy(arch) <= 1.0


class TestCostModel:
    def test_mean_trial_matches_table1_anchor(self, space, rng):
        """A converged-NAS-sized architecture costs ~the paper's mean."""
        cost = SearchCostModel(MNIST_CONFIG)
        largest = space.decode([2, 2] * 4)
        per_trial = MNIST_NAS_TOTAL_SECONDS / 60
        # The reference anchor is 70% of the largest architecture.
        seconds = cost.train_seconds(largest)
        assert 0.5 * per_trial < seconds < 2.5 * per_trial

    def test_monotone_in_macs(self, space, rng):
        cost = SearchCostModel(MNIST_CONFIG)
        small = space.decode([0] * space.num_decisions)
        large = space.decode([2, 2] * 4)
        assert cost.train_seconds(large) > cost.train_seconds(small)

    def test_overhead_floor(self, space):
        cost = SearchCostModel(MNIST_CONFIG)
        smallest = space.decode([0] * space.num_decisions)
        assert cost.train_seconds(smallest) > TRIAL_OVERHEAD_SECONDS

    def test_latency_eval_is_cheap(self):
        cost = SearchCostModel(MNIST_CONFIG)
        assert cost.latency_eval_seconds() == LATENCY_EVAL_SECONDS
        assert cost.latency_eval_seconds() < TRIAL_OVERHEAD_SECONDS

    def test_scales_with_dataset(self):
        """CIFAR trials cost less than MNIST's (fewer pixels x examples)."""
        mnist_cost = SearchCostModel(MNIST_CONFIG)
        cifar_cost = SearchCostModel(CIFAR_CONFIG)
        mnist_space = SearchSpace.from_config(MNIST_CONFIG)
        arch = mnist_space.decode([0] * mnist_space.num_decisions)
        # Same architecture, different dataset parameters.
        assert cifar_cost.train_seconds(arch) != mnist_cost.train_seconds(arch)

    def test_custom_kappa(self):
        cost = SearchCostModel(MNIST_CONFIG, kappa=1e-15)
        with pytest.raises(ValueError):
            SearchCostModel(MNIST_CONFIG, kappa=-1.0)
