"""Cross-module integration tests.

These exercise whole paths through the system the way the examples and
benchmarks do, at a scale small enough for the unit-test suite.
"""

import numpy as np
import pytest

from repro import (
    Architecture,
    FnasSearch,
    LatencyEstimator,
    Platform,
    SearchSpace,
    TrainedAccuracyEvaluator,
    PYNQ_Z1,
)
from repro.core.analysis import summarize
from repro.core.serialization import architecture_from_dict, architecture_to_dict
from repro.datasets import make_mnist
from repro.fpga.energy import EnergyModel
from repro.fpga.tiling import TilingDesigner
from repro.nn import Trainer, build_network
from repro.scheduling import AdaptiveFnasScheduler, FnasScheduler, PipelineSimulator
from repro.taskgraph import TaskGraphGenerator


class TestNnFpgaConsistency:
    """The trained network and the FPGA model must describe the same
    computation -- the central contract between the two halves."""

    @pytest.mark.parametrize("sizes,counts,stride", [
        ([5, 7], [9, 18], 1),
        ([3, 3, 3], [8, 16, 8], 1),
        ([5, 3], [4, 8], 2),
    ])
    def test_conv_geometry_matches(self, sizes, counts, stride):
        arch = Architecture.from_choices(
            sizes, counts, input_size=28,
            strides=[stride] * len(sizes),
        )
        network = build_network(arch)
        x = np.zeros((2, 1, 28, 28), dtype=np.float32)
        activation = x
        conv_layers = [l for l in network.layers
                       if l.__class__.__name__ == "Conv2D"]
        for spec, conv in zip(arch.layers, conv_layers):
            activation = conv.forward(activation)
            assert activation.shape == (
                2, spec.out_channels, spec.out_rows, spec.out_cols
            ), f"nn/fpga shape divergence at layer {spec}"

    def test_macs_equal_im2col_work(self):
        """Architecture MAC accounting matches the matmul volume."""
        arch = Architecture.from_choices([3, 5], [4, 8], input_size=12)
        for spec in arch.layers:
            col_rows = spec.in_channels * spec.kernel * spec.kernel
            positions = spec.out_rows * spec.out_cols
            assert spec.macs == col_rows * positions * spec.out_channels


class TestRealTrainingSearch:
    def test_fnas_end_to_end_with_numpy_training(self):
        """The full Figure 2 loop with genuine training, tiny scale."""
        space = SearchSpace(
            name="tiny", num_layers=2, filter_sizes=(3, 5),
            filter_counts=(4, 8), input_size=28, input_channels=1,
            num_classes=10,
        )
        dataset = make_mnist(train_size=150, val_size=60, seed=0)
        evaluator = TrainedAccuracyEvaluator(
            dataset, trainer=Trainer(epochs=1, batch_size=32, lr=0.03,
                                     accuracy_window=1))
        estimator = LatencyEstimator(Platform.single(PYNQ_Z1))
        search = FnasSearch(space, evaluator, estimator,
                            required_latency_ms=2.0,
                            min_latency_fallback=True)
        result = search.run(4, np.random.default_rng(0))
        summary = summarize(result)
        assert summary.trials >= 4
        best = result.best_valid(2.0)
        assert best.latency_ms <= 2.0
        assert 0.0 <= best.accuracy <= 1.0


class TestFullFpgaStack:
    """Design -> graph -> schedule -> simulate -> energy, one flow."""

    def test_pipeline_with_energy_report(self):
        arch = Architecture.from_choices([3, 3], [16, 32], input_size=16)
        platform = Platform.single(PYNQ_Z1)
        design = TilingDesigner().design(arch, platform)
        graph = TaskGraphGenerator().generate(design)
        schedule = FnasScheduler().schedule(graph)
        result = PipelineSimulator().run(schedule)
        energy = EnergyModel().estimate(design, result.makespan, schedule)
        assert energy.total_mj > 0
        # Sanity: a PYNQ-class inference is in the sub-100 mJ range.
        assert energy.total_mj < 100

    def test_adaptive_scheduler_at_least_as_good(self):
        arch = Architecture.from_choices([3, 3, 3, 3], [4, 16, 32, 16],
                                         input_size=8)
        platform = Platform.single(PYNQ_Z1)
        design = TilingDesigner().design(arch, platform)
        graph = TaskGraphGenerator().generate(design)
        sim = PipelineSimulator()
        adaptive = sim.run(AdaptiveFnasScheduler().schedule(graph))
        default = sim.run(FnasScheduler().schedule(graph))
        assert adaptive.makespan <= default.makespan


class TestSerializationRoundtripThroughEstimator:
    def test_saved_architecture_reestimates_identically(self, tmp_path):
        arch = Architecture.from_choices([5, 7], [9, 18], input_size=28)
        estimator = LatencyEstimator(Platform.single(PYNQ_Z1))
        before = estimator.estimate(arch).ms
        clone = architecture_from_dict(architecture_to_dict(arch))
        after = LatencyEstimator(Platform.single(PYNQ_Z1)).estimate(clone).ms
        assert before == after
