"""Shard specs: validation, identity, grid expansion, reconstruction."""

import numpy as np
import pytest

from repro.core.search import FnasSearch, NasSearch
from repro.orchestration import (
    ShardSpec,
    build_search,
    run_shard,
    shard_grid,
)


class TestShardSpec:
    def test_fnas_requires_spec(self):
        with pytest.raises(ValueError, match="spec_ms"):
            ShardSpec(dataset="mnist", device="pynq-z1", kind="fnas")

    def test_nas_rejects_spec(self):
        with pytest.raises(ValueError, match="spec_ms"):
            ShardSpec(dataset="mnist", device="pynq-z1", kind="nas",
                      spec_ms=5.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ShardSpec(dataset="mnist", device="pynq-z1", kind="evolutionary")

    def test_unknown_dataset_fails_in_submitter(self):
        with pytest.raises(KeyError, match="dataset"):
            ShardSpec(dataset="svhn", device="pynq-z1", kind="nas")

    def test_unknown_device_fails_in_submitter(self):
        with pytest.raises(KeyError, match="device"):
            ShardSpec(dataset="mnist", device="vu19p", kind="nas")

    def test_shard_id_distinguishes_grid_axes(self):
        base = dict(dataset="mnist", device="pynq-z1", kind="fnas",
                    spec_ms=5.0)
        variants = [
            ShardSpec(seed=0, **base),
            ShardSpec(seed=1, **base),
            ShardSpec(seed=0, batch_size=8, **base),
            ShardSpec(seed=0, boards=2, **base),
            ShardSpec(seed=0, surrogate_seed=7, **base),
        ]
        ids = [v.shard_id for v in variants]
        assert len(set(ids)) == len(ids)

    def test_dict_round_trip(self):
        spec = ShardSpec(dataset="cifar10", device="xczu9eg", kind="fnas",
                         spec_ms=2.5, seed=4, trials=30, batch_size=8)
        assert ShardSpec.from_dict(spec.to_dict()) == spec

    def test_resolved_trials_defaults_to_table2(self):
        spec = ShardSpec(dataset="mnist", device="pynq-z1", kind="nas")
        assert spec.resolved_trials == 60
        assert ShardSpec(dataset="mnist", device="pynq-z1", kind="nas",
                         trials=7).resolved_trials == 7


class TestShardGrid:
    def test_cross_product_in_grid_order(self):
        shards = shard_grid(["mnist"], ["pynq-z1", "xc7a50t"], seeds=[0, 1],
                            specs_ms=[5.0, 2.0], include_nas=True)
        # 2 devices x 2 seeds x (1 nas + 2 fnas) = 12 shards.
        assert len(shards) == 12
        assert shards[0].device == "pynq-z1" and shards[0].kind == "nas"
        assert shards[1].spec_ms == 5.0 and shards[2].spec_ms == 2.0

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError, match="specs_ms"):
            shard_grid(["mnist"], ["pynq-z1"], seeds=[0])

    def test_shared_landscape_by_default(self):
        shards = shard_grid(["mnist"], ["pynq-z1"], seeds=[3, 4],
                            specs_ms=[5.0])
        assert {s.surrogate_seed for s in shards} == {0}


class TestPlanShards:
    def test_plan_and_kwarg_grids_match(self):
        """shard_grid is the kwarg spelling of plan_shards: same grid."""
        from repro.orchestration import plan_shards
        from repro.plans import RunPlan, ScenarioPlan, SearchPlan

        plan = RunPlan(
            workload="sweep",
            search=SearchPlan(trials=9),
            scenario=ScenarioPlan(
                datasets=("mnist",), devices=("pynq-z1", "xc7a50t"),
                seeds=(0, 1), specs_ms=(5.0, 2.0), include_nas=True,
            ),
        )
        assert plan_shards(plan) == shard_grid(
            ["mnist"], ["pynq-z1", "xc7a50t"], seeds=[0, 1],
            specs_ms=[5.0, 2.0], include_nas=True, trials=9,
        )

    def test_seeds_default_to_search_seed(self):
        from repro.orchestration import plan_shards
        from repro.plans import RunPlan, ScenarioPlan, SearchPlan

        plan = RunPlan(
            workload="sweep",
            search=SearchPlan(seed=7),
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  specs_ms=(5.0,)),
        )
        (shard,) = plan_shards(plan)
        assert shard.seed == 7

    def test_component_keys_flow_into_shards_and_ids(self):
        from repro.orchestration import plan_shards
        from repro.plans import RunPlan, ScenarioPlan, SearchPlan

        plan = RunPlan(
            workload="sweep",
            search=SearchPlan(controller="tabular"),
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  specs_ms=(5.0,)),
        )
        (shard,) = plan_shards(plan)
        assert shard.controller == "tabular"
        assert "c-tabular" in shard.shard_id


class TestBuildAndRun:
    def test_build_search_kind_dispatch(self):
        nas = build_search(ShardSpec(dataset="mnist", device="pynq-z1",
                                     kind="nas"))
        fnas = build_search(ShardSpec(dataset="mnist", device="pynq-z1",
                                      kind="fnas", spec_ms=5.0))
        assert isinstance(nas, NasSearch)
        assert isinstance(fnas, FnasSearch)
        assert fnas.required_latency_ms == 5.0

    def test_worker_and_submitter_build_identical_searches(self):
        """The distribution premise: the spec fully determines the run."""
        spec = ShardSpec(dataset="mnist", device="pynq-z1", kind="fnas",
                         spec_ms=5.0, seed=2, trials=8)
        a = build_search(spec).run(8, np.random.default_rng(spec.seed))
        b_payload = run_shard(spec)
        assert [t["tokens"] for t in b_payload["result"]["trials"]] == [
            list(t.tokens) for t in a.trials
        ]

    def test_run_shard_checkpoints_and_resumes(self, tmp_path):
        spec = ShardSpec(dataset="mnist", device="pynq-z1", kind="fnas",
                         spec_ms=5.0, trials=10)
        fresh = run_shard(spec, checkpoint_dir=str(tmp_path),
                          checkpoint_every=5)
        assert spec.checkpoint_path(tmp_path).exists()
        assert fresh["resumed_from"] is None
        again = run_shard(spec, checkpoint_dir=str(tmp_path))
        assert again["resumed_from"] is not None
        assert again["result"]["trials"] == fresh["result"]["trials"]

    def test_run_shard_refuses_stale_budget_checkpoint(self, tmp_path):
        """A checkpoint written under one trial budget must not silently
        satisfy a shard requesting another (the filename does not encode
        the budget, so this needs an explicit compatibility check)."""
        base = dict(dataset="mnist", device="pynq-z1", kind="fnas",
                    spec_ms=5.0)
        run_shard(ShardSpec(trials=5, **base), checkpoint_dir=str(tmp_path),
                  checkpoint_every=2)
        with pytest.raises(ValueError, match="trials=5"):
            run_shard(ShardSpec(trials=12, **base),
                      checkpoint_dir=str(tmp_path))
