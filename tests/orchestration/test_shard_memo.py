"""Shard-level memoization: canonical hashes and campaign read-through.

Two walls around the result store's shard granularity:

* the **hash law** (property-tested): the multiset of shard hashes is a
  pure function of the scenario grid -- invariant under
  ``shard_workers``, ``eval_workers``, backend, checkpoint policy and
  enumeration order, and always exactly
  ``plan_hash(shard.to_plan())``;
* the **campaign contract**: a store-backed campaign serves previously
  stored shards (publishing :class:`~repro.events.ShardCached`, never
  re-executing), writes freshly-run shards back, treats invalid entries
  as misses, and merges to canonical bytes identical to an uncached
  run.
"""

import dataclasses
import json
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.orchestration.campaign as campaign_mod
from repro.events import SearchStarted, ShardCached
from repro.orchestration import Campaign, plan_shards, run_shard, shard_grid
from repro.orchestration.shards import ShardSpec
from repro.plans import (
    ExecutionPolicy,
    RunPlan,
    ScenarioPlan,
    SearchPlan,
    plan_hash,
)
from repro.service.store import ResultStore, canonical_payload_bytes

# -- strategies --------------------------------------------------------------

#: Scenario axes: what the grid *is* (result-relevant).
scenarios = st.builds(
    dict,
    datasets=st.lists(st.sampled_from(["mnist", "cifar10"]),
                      min_size=1, max_size=2, unique=True),
    devices=st.lists(st.sampled_from(["pynq-z1", "xc7a50t"]),
                     min_size=1, max_size=2, unique=True),
    seeds=st.lists(st.integers(min_value=0, max_value=3),
                   min_size=1, max_size=3, unique=True),
    specs_ms=st.lists(st.sampled_from([2.0, 5.0, 7.5]),
                      min_size=0, max_size=2, unique=True),
    include_nas=st.booleans(),
    trials=st.sampled_from([None, 3, 7]),
    batch_size=st.sampled_from([1, 4]),
)

#: Execution knobs that must NOT change shard hashes: how the grid runs.
irrelevant_knobs = st.builds(
    dict,
    eval_workers=st.sampled_from([1, 2, 4]),
    shard_workers=st.sampled_from([1, 2, 8]),
    backend=st.sampled_from([None, "thread", "process"]),
    checkpointed=st.booleans(),
)


def _sweep_plan(scenario: dict, knobs: dict, reverse: bool = False) -> RunPlan:
    datasets = scenario["datasets"]
    devices = scenario["devices"]
    seeds = scenario["seeds"]
    if reverse:
        datasets, devices, seeds = (
            list(reversed(datasets)), list(reversed(devices)),
            list(reversed(seeds)),
        )
    execution = ExecutionPolicy(
        batch_size=scenario["batch_size"],
        eval_workers=knobs["eval_workers"],
        shard_workers=knobs["shard_workers"],
        checkpoint_dir="ckpt" if knobs["checkpointed"] else None,
        checkpoint_every=2 if knobs["checkpointed"] else None,
    )
    if knobs["backend"] is not None:
        execution = dataclasses.replace(execution, backend=knobs["backend"])
    return RunPlan(
        workload="sweep",
        search=SearchPlan(trials=scenario["trials"]),
        execution=execution,
        scenario=ScenarioPlan(
            datasets=tuple(datasets),
            devices=tuple(devices),
            seeds=tuple(seeds),
            specs_ms=tuple(scenario["specs_ms"]),
            include_nas=scenario["include_nas"] or not scenario["specs_ms"],
        ),
    )


class TestShardHashLaw:
    @given(scenario=scenarios, knobs_a=irrelevant_knobs,
           knobs_b=irrelevant_knobs)
    @settings(max_examples=50, deadline=None)
    def test_hash_multiset_is_a_pure_function_of_the_grid(
        self, scenario, knobs_a, knobs_b
    ):
        """Same grid, any execution knobs, any enumeration order."""
        hashes_a = Counter(
            s.shard_hash for s in plan_shards(_sweep_plan(scenario, knobs_a))
        )
        hashes_b = Counter(
            s.shard_hash
            for s in plan_shards(_sweep_plan(scenario, knobs_b, reverse=True))
        )
        assert hashes_a == hashes_b

    @given(scenario=scenarios, knobs=irrelevant_knobs)
    @settings(max_examples=50, deadline=None)
    def test_shard_hash_is_exactly_the_canonical_plan_hash(
        self, scenario, knobs
    ):
        for shard in plan_shards(_sweep_plan(scenario, knobs)):
            assert shard.shard_hash == plan_hash(shard.to_plan())

    @given(scenario=scenarios, knobs=irrelevant_knobs)
    @settings(max_examples=50, deadline=None)
    def test_canonical_plan_normalizes_irrelevant_knobs_away(
        self, scenario, knobs
    ):
        """to_plan() keeps batch_size, drops everything else."""
        for shard in plan_shards(_sweep_plan(scenario, knobs)):
            execution = shard.to_plan().execution
            assert execution == ExecutionPolicy(batch_size=shard.batch_size)

    def test_batch_size_changes_the_hash(self):
        """batch_size changes the controller trajectory: result-relevant."""
        base = dict(dataset="mnist", device="pynq-z1", kind="fnas",
                    spec_ms=5.0, trials=4)
        assert (ShardSpec(batch_size=1, **base).shard_hash
                != ShardSpec(batch_size=2, **base).shard_hash)

    def test_eval_workers_does_not_change_the_hash(self):
        base = dict(dataset="mnist", device="pynq-z1", kind="fnas",
                    spec_ms=5.0, trials=4)
        assert (ShardSpec(eval_workers=1, **base).shard_hash
                == ShardSpec(eval_workers=4, **base).shard_hash)


# -- campaign read/write-through ---------------------------------------------


def _grid(trials=3, specs=(5.0, 7.5)):
    return shard_grid(["mnist"], ["pynq-z1"], seeds=[0],
                      specs_ms=list(specs), trials=trials)


class TestCampaignMemoization:
    def test_write_through_populates_the_store(self):
        store = ResultStore()
        shards = _grid()
        Campaign(shards, store=store).run()
        for shard in shards:
            assert shard.shard_hash in store

    def test_warm_campaign_serves_every_shard_without_executing(
        self, monkeypatch
    ):
        store = ResultStore()
        shards = _grid()
        cold = Campaign(shards, store=store).run()

        def forbidden(*args, **kwargs):
            raise AssertionError("a cached shard must not re-execute")

        monkeypatch.setattr(campaign_mod, "run_shard", forbidden)
        events = []
        warm = Campaign(shards, store=store, progress=events.append).run()
        cached = [e for e in events if isinstance(e, ShardCached)]
        assert sorted(e.shard_id for e in cached) == sorted(
            s.shard_id for s in shards
        )
        assert all(o.cached for o in warm.outcomes)
        assert not any(o.cached for o in cold.outcomes)

    def test_merged_bytes_identical_cached_or_not(self):
        store = ResultStore()
        shards = _grid()
        cold = Campaign(shards, store=store).run()
        warm = Campaign(shards, store=store).run()
        assert (canonical_payload_bytes(cold.to_dict())
                == canonical_payload_bytes(warm.to_dict()))

    def test_one_changed_spec_costs_one_shard(self, monkeypatch):
        """The headline: resubmit with one new spec executes 1 shard."""
        store = ResultStore()
        Campaign(_grid(specs=(5.0, 7.5)), store=store).run()
        executed = []
        real_run_shard = campaign_mod.run_shard

        def counting(spec, *args, **kwargs):
            executed.append(spec.shard_id)
            return real_run_shard(spec, *args, **kwargs)

        monkeypatch.setattr(campaign_mod, "run_shard", counting)
        overlapping = _grid(specs=(5.0, 7.5, 10.0))
        events = []
        result = Campaign(
            overlapping, store=store, progress=events.append
        ).run()
        assert executed == ["mnist-pynq-z1-fnas10ms-s0"]
        assert len([e for e in events if isinstance(e, ShardCached)]) == 2
        # The novel shard's result still lands in the store.
        assert all(s.shard_hash in store for s in overlapping)
        assert len(result.outcomes) == 3

    def test_cached_outcomes_merge_in_grid_order(self):
        store = ResultStore()
        shards = _grid()
        # Warm the store one shard at a time, out of order.
        for shard in reversed(shards):
            Campaign([shard], store=store).run()
        merged = Campaign(shards, store=store).run()
        assert [o.spec.shard_id for o in merged.outcomes] == [
            s.shard_id for s in shards
        ]

    def test_shard_id_mismatch_is_a_miss(self):
        """A colliding entry that is not this shard's payload re-runs."""
        store = ResultStore()
        shards = _grid()
        payload = run_shard(shards[0])
        store.put(shards[1].shard_hash, payload)  # wrong shard's payload
        events = []
        Campaign([shards[1]], store=store, progress=events.append).run()
        assert not [e for e in events if isinstance(e, ShardCached)]
        assert [e for e in events if isinstance(e, SearchStarted)]

    def test_undecodable_payload_is_a_miss_and_gets_repaired(self):
        store = ResultStore()
        (shard,) = _grid(specs=(5.0,))
        store.put(shard.shard_hash,
                  {"shard_id": shard.shard_id, "garbage": True})
        events = []
        Campaign([shard], store=store, progress=events.append).run()
        assert not [e for e in events if isinstance(e, ShardCached)]
        # First-write-wins means the bad entry stays until GC removes it
        # (it *validates* as JSON); the campaign still ran the shard.
        assert [e for e in events if isinstance(e, SearchStarted)]

    def test_cached_flag_never_serializes(self):
        store = ResultStore()
        shards = _grid(specs=(5.0,))
        Campaign(shards, store=store).run()
        warm = Campaign(shards, store=store).run()
        assert warm.outcomes[0].cached
        document = warm.to_dict()
        assert "cached" not in json.dumps(document)
        rebuilt = campaign_mod.CampaignResult.from_dict(document)
        assert not rebuilt.outcomes[0].cached

    def test_storeless_campaign_unchanged(self, monkeypatch):
        calls = []
        real_run_shard = campaign_mod.run_shard

        def counting(spec, *args, **kwargs):
            calls.append(spec.shard_id)
            return real_run_shard(spec, *args, **kwargs)

        monkeypatch.setattr(campaign_mod, "run_shard", counting)
        shards = _grid(specs=(5.0,))
        Campaign(shards).run()
        Campaign(shards).run()
        assert len(calls) == 2  # no store, no memoization

    def test_store_write_failure_does_not_fail_the_campaign(self):
        class ReadOnlyStore(ResultStore):
            def put(self, key, payload):
                raise OSError("disk full")

        shards = _grid(specs=(5.0,))
        result = Campaign(shards, store=ReadOnlyStore()).run()
        assert len(result.outcomes) == 1

    def test_pooled_campaign_writes_through(self):
        store = ResultStore()
        shards = _grid(trials=3, specs=(5.0, 7.5))
        Campaign(shards, store=store).run(max_workers=2)
        assert all(s.shard_hash in store for s in shards)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_persistent_store_shares_shards_across_processes(
        self, tmp_path, workers
    ):
        cold = Campaign(_grid(), store=ResultStore(tmp_path)).run(
            max_workers=workers
        )
        events = []
        warm = Campaign(
            _grid(), store=ResultStore(tmp_path), progress=events.append
        ).run(max_workers=workers)
        assert len([e for e in events if isinstance(e, ShardCached)]) == 2
        assert (canonical_payload_bytes(cold.to_dict())
                == canonical_payload_bytes(warm.to_dict()))
