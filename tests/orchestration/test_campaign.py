"""Campaign runner: merge determinism, Pareto merging, worker recovery.

The acceptance criterion under test: ``N > 1`` shards merge to the same
campaign result as the serial order -- and a shard whose worker dies is
re-queued and *resumed* from its last checkpoint, still converging to
that same result.
"""

import json
import os

import pytest

from repro.core.search import TrialRecord
from repro.experiments.pareto import frontier_from_trials
from repro.orchestration import (
    Campaign,
    CampaignResult,
    ShardOutcome,
    ShardSpec,
    merge_outcomes,
    run_campaign,
    run_shard,
    save_campaign_result,
    shard_grid,
)
from repro.orchestration.shards import build_search


def small_grid(trials=6):
    return shard_grid(["mnist"], ["pynq-z1"], seeds=[0, 1],
                      specs_ms=[5.0], include_nas=True, trials=trials)


def stable_dict(result: CampaignResult) -> str:
    """Campaign payload minus wall-clock noise and execution metadata
    (how a shard got to its result -- requeues, resume provenance -- is
    allowed to differ; the result itself is not)."""
    payload = result.to_dict()
    payload.pop("wall_seconds")
    for shard in payload["shards"]:
        shard["result"].pop("wall_seconds")
        shard.pop("requeues")
        shard.pop("resumed_from")
    return json.dumps(payload, sort_keys=True)


class TestCampaignValidation:
    def test_needs_shards(self):
        with pytest.raises(ValueError, match="at least one"):
            Campaign([])

    def test_rejects_duplicate_ids(self):
        spec = ShardSpec(dataset="mnist", device="pynq-z1", kind="nas")
        with pytest.raises(ValueError, match="unique"):
            Campaign([spec, spec])

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="max_workers"):
            Campaign(small_grid()).run(max_workers=0)

    def test_rejects_cadence_without_directory(self):
        """checkpoint_every with nowhere to snapshot is a silent no-op
        waiting to lose someone's progress; fail fast instead."""
        with pytest.raises(ValueError, match="checkpoint_dir"):
            Campaign(small_grid(), checkpoint_every=5)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_shard(small_grid()[0], checkpoint_dir=None,
                      checkpoint_every=5)


class TestMergeDeterminism:
    def test_parallel_equals_serial(self, tmp_path):
        """The acceptance criterion, head-on."""
        shards = small_grid()
        serial = run_campaign(shards, max_workers=1)
        pooled = run_campaign(shards, max_workers=3,
                              checkpoint_dir=tmp_path / "ck")
        assert stable_dict(serial) == stable_dict(pooled)

    def test_merge_ignores_outcome_arrival_order(self):
        """merge_outcomes is a pure fold over grid order: feeding it the
        outcomes is enough; no completion-order state leaks in."""
        shards = small_grid()
        outcomes = [
            ShardOutcome.from_payload(run_shard(spec)) for spec in shards
        ]
        frontier_fwd = merge_outcomes(outcomes)
        frontier_same = merge_outcomes(list(outcomes))
        assert [(p.latency_ms, p.accuracy) for p in frontier_fwd.points] == \
               [(p.latency_ms, p.accuracy) for p in frontier_same.points]

    def test_outcomes_stay_in_grid_order(self):
        shards = small_grid()
        result = run_campaign(shards, max_workers=3)
        assert [o.spec.shard_id for o in result.outcomes] == \
               [s.shard_id for s in shards]


class TestParetoMerging:
    def _trial(self, space, index, latency, accuracy):
        arch = space.decode([0] * space.num_decisions)
        return TrialRecord(index=index, tokens=(0,), architecture=arch,
                           latency_ms=latency, accuracy=accuracy,
                           reward=0.0, trained=accuracy is not None,
                           sim_seconds=1.0)

    def test_frontier_from_trials_dominance(self):
        from repro.configs import MNIST_CONFIG
        from repro.core.search_space import SearchSpace

        space = SearchSpace.from_config(MNIST_CONFIG)
        trials = [
            self._trial(space, 0, 4.0, 0.99),
            self._trial(space, 1, 2.0, 0.98),
            self._trial(space, 2, 3.0, 0.97),   # dominated by trial 1
            self._trial(space, 3, 6.0, 0.95),   # dominated by trial 0
            self._trial(space, 4, 5.0, None),   # pruned: not a candidate
            self._trial(space, 5, None, 0.99),  # no latency: skipped
        ]
        frontier = frontier_from_trials(trials)
        assert [(p.latency_ms, p.accuracy) for p in frontier.points] == [
            (2.0, 0.98), (4.0, 0.99),
        ]
        assert frontier.evaluated_count == 4
        assert not frontier.exhaustive

    def test_shard_merge_equals_concatenated_ledger_frontier(self):
        """Merging shard-by-shard must equal one frontier over the
        concatenation of every shard's trials."""
        shards = small_grid(trials=8)
        outcomes = [
            ShardOutcome.from_payload(run_shard(spec)) for spec in shards
        ]
        merged = merge_outcomes(outcomes)
        concatenated = frontier_from_trials(
            [t for o in outcomes for t in o.result.trials]
        )
        assert [(p.latency_ms, p.accuracy) for p in merged.points] == \
               [(p.latency_ms, p.accuracy) for p in concatenated.points]
        # And the frontier is genuinely non-dominated.
        points = merged.points
        for earlier, later in zip(points, points[1:]):
            assert later.latency_ms >= earlier.latency_ms
            assert later.accuracy > earlier.accuracy


#: Module-level config for the dying worker stubs below.  Pool
#: submission pickles callables by module path, so the stubs must be
#: module-level; forked workers inherit this dict's values.
_DEATH_CONFIG: dict = {}


def _die_once_run_shard(spec, ck_dir=None, ck_every=None):
    """Run ``spec`` normally, except: the configured victim shard makes
    some checkpoints and then hard-kills its worker -- once."""
    sentinel = _DEATH_CONFIG["sentinel"]
    if spec.shard_id == _DEATH_CONFIG["victim"] and not sentinel.exists():
        # Die *after* some checkpoints exist so the re-queued shard
        # actually exercises the resume path.
        import numpy as np
        search = build_search(spec)
        path = spec.checkpoint_path(ck_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            search.run(
                spec.resolved_trials, np.random.default_rng(spec.seed),
                checkpoint_every=4, checkpoint_path=path,
            )
        finally:
            sentinel.write_text("dead once")
            os._exit(1)
    return run_shard(spec, ck_dir, ck_every)


def _die_in_workers_run_shard(spec, ck_dir=None, ck_every=None):
    """Kill every pool worker; run normally in the submitting process
    (so the campaign's serial fallback can still succeed)."""
    if os.getpid() != _DEATH_CONFIG["parent_pid"]:
        os._exit(1)
    return run_shard(spec, ck_dir, ck_every)


class TestWorkerDeathRecovery:
    def test_dead_worker_shard_is_requeued_and_resumed(
        self, tmp_path, monkeypatch
    ):
        """Kill the worker mid-shard (hard ``os._exit``, as OOM killers
        do); the campaign must rebuild the pool, re-queue the shard, and
        the resumed shard must produce the exact uninterrupted ledger."""
        shards = small_grid(trials=10)
        victim = shards[1].shard_id
        sentinel = tmp_path / "already-died"
        checkpoint_dir = tmp_path / "ck"
        monkeypatch.setitem(_DEATH_CONFIG, "victim", victim)
        monkeypatch.setitem(_DEATH_CONFIG, "sentinel", sentinel)

        from repro.orchestration import campaign as campaign_mod
        monkeypatch.setattr(campaign_mod, "run_shard", _die_once_run_shard)

        events = []
        result = Campaign(
            shards, checkpoint_dir=checkpoint_dir, checkpoint_every=4,
            progress=events.append,
        ).run(max_workers=2)

        assert sentinel.exists(), "victim worker never died"
        requeued = [e for e in events if e.kind == "requeue"]
        assert any(e.shard_id == victim for e in requeued)
        victim_outcome = result.outcome(victim)
        assert victim_outcome.requeues >= 1
        assert victim_outcome.resumed_from is not None

        # The recovered campaign equals a never-interrupted serial one.
        monkeypatch.setattr(campaign_mod, "run_shard", run_shard)
        clean = run_campaign(shards, max_workers=1)
        assert stable_dict(result) == stable_dict(clean)

    def test_pool_exhaustion_falls_back_to_in_process(
        self, tmp_path, monkeypatch
    ):
        """When the pool keeps dying, the campaign must still finish --
        serially, in the submitting process."""
        shards = small_grid(trials=6)
        monkeypatch.setitem(_DEATH_CONFIG, "parent_pid", os.getpid())

        from repro.orchestration import campaign as campaign_mod
        monkeypatch.setattr(campaign_mod, "run_shard",
                            _die_in_workers_run_shard)

        events = []
        result = Campaign(
            shards, checkpoint_dir=tmp_path / "ck", max_pool_restarts=1,
            progress=events.append,
        ).run(max_workers=2)
        assert len(result.outcomes) == len(shards)
        assert any(e.kind == "fallback" for e in events)
        # Worker death re-queues exactly the shards that died with the
        # worker (per-shard granularity), so at least one shard carries
        # a requeue -- but shards the give-up left undispatched don't.
        assert result.requeued_shards >= 1


class TestCampaignArtifacts:
    def test_artifact_round_trip(self, tmp_path):
        result = run_campaign(small_grid(), max_workers=1)
        path = tmp_path / "campaign.json"
        save_campaign_result(result, path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert len(payload["shards"]) == len(result.outcomes)
        assert len(payload["frontier"]) == len(result.frontier.points)
        specs = [ShardSpec.from_dict(s["spec"]) for s in payload["shards"]]
        assert [s.shard_id for s in specs] == \
               [o.spec.shard_id for o in result.outcomes]

    def test_summary_accessors(self):
        result = run_campaign(small_grid(trials=5), max_workers=1)
        assert result.total_trials == 5 * len(result.outcomes)
        assert result.requeued_shards == 0
        assert 0.9 < result.best_accuracy() <= 1.0
        assert "campaign frontier" in result.format()
        with pytest.raises(KeyError, match="unknown shard"):
            result.outcome("nope")


class TestExecutionRuntimeIdentity:
    """The tentpole invariant: every execution surface -- serial,
    pooled-with-reused-workers, batched-shards, the service's
    process backend -- produces byte-identical stored shard entries
    and the same merged campaign result."""

    def _stored_bytes(self, directory):
        """Top-level store entries as {name: bytes} (the tiling memo's
        ``tiling/`` subdir is a cache, not a result, and is excluded)."""
        return {
            p.name: p.read_bytes()
            for p in sorted(directory.glob("*.json"))
        }

    def test_byte_identity_wall(self, tmp_path):
        from repro.orchestration import plan_shards
        from repro.plans import RunPlan, ScenarioPlan, SearchPlan
        from repro.service import ResultStore
        from repro.service.pool import WorkerPool

        plan = RunPlan(
            workload="sweep",
            search=SearchPlan(trials=6),
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  specs_ms=(5.0,), seeds=(0, 1),
                                  include_nas=True),
        )
        shards = plan_shards(plan)
        assert len(shards) > 1

        dirs = {leg: tmp_path / leg for leg in
                ("serial", "pooled", "batched", "process")}
        serial = run_campaign(shards, max_workers=1,
                              store=ResultStore(dirs["serial"]))
        with WorkerPool(2, name="identity-wall") as pool:
            pooled = run_campaign(shards, max_workers=2, pool=pool,
                                  store=ResultStore(dirs["pooled"]))
            # More dispatch units than workers: a worker was reused.
            assert pool.stats()["worker.reuse"] > 0
            # The service's process backend, on the same shared pool.
            _, payload = pool.run_plan(
                plan, emit=lambda event: None,
                cancel_requested=lambda: False,
                store_dir=str(dirs["process"]),
            )
        assert payload is not None
        batched = run_campaign(shards, max_workers=2, batch_trials=100,
                               store=ResultStore(dirs["batched"]))

        assert stable_dict(serial) == stable_dict(pooled) \
               == stable_dict(batched)
        reference = self._stored_bytes(dirs["serial"])
        assert len(reference) == len(shards)
        for leg in ("pooled", "batched", "process"):
            assert self._stored_bytes(dirs[leg]) == reference, leg

    def test_batching_packs_small_shards_and_isolates_large(self):
        shards = small_grid(trials=6)          # 4 shards x 6 trials
        pending = {s.shard_id: s for s in shards}
        campaign = Campaign(shards, batch_trials=13)
        units = campaign._dispatch_units(pending)
        # 6+6 <= 13, adding a third would exceed: two units of two.
        assert [[s.shard_id for s in u] for u in units] == [
            [shards[0].shard_id, shards[1].shard_id],
            [shards[2].shard_id, shards[3].shard_id],
        ]
        # At/above the threshold a shard always travels alone.
        assert all(
            len(u) == 1
            for u in Campaign(shards, batch_trials=6)._dispatch_units(pending)
        )
        assert all(
            len(u) == 1 for u in Campaign(shards)._dispatch_units(pending)
        )

    def test_rejects_bad_batch_threshold(self):
        with pytest.raises(ValueError, match="batch_trials"):
            Campaign(small_grid(), batch_trials=0)


class TestBatchDeathRecovery:
    def test_worker_killed_mid_batch_requeues_siblings_individually(
        self, tmp_path, monkeypatch
    ):
        """A batch never dies as a block: the victim's unfinished
        *siblings* re-queue as their own units, the victim resumes from
        its checkpoint, and the recovered campaign equals a clean one."""
        shards = small_grid(trials=10)         # 4 shards x 10 trials
        victim = shards[1].shard_id
        monkeypatch.setitem(_DEATH_CONFIG, "victim", victim)
        monkeypatch.setitem(_DEATH_CONFIG, "sentinel",
                            tmp_path / "already-died")

        from repro.orchestration import campaign as campaign_mod
        monkeypatch.setattr(campaign_mod, "run_shard", _die_once_run_shard)

        events = []
        # batch_trials=30 packs shards 0-2 into one unit (10+10+10),
        # shard 3 alone; the victim dies mid-unit with shard 2 unstarted.
        result = Campaign(
            shards, checkpoint_dir=tmp_path / "ck", checkpoint_every=4,
            progress=events.append, batch_trials=30,
        ).run(max_workers=2)

        requeued = {e.shard_id for e in events if e.kind == "requeue"}
        assert requeued == {victim, shards[2].shard_id}
        assert result.outcome(victim).requeues == 1
        assert result.outcome(victim).resumed_from is not None
        assert result.outcome(shards[2].shard_id).requeues == 1
        assert result.outcome(shards[0].shard_id).requeues == 0

        monkeypatch.setattr(campaign_mod, "run_shard", run_shard)
        clean = run_campaign(shards, max_workers=1)
        assert stable_dict(result) == stable_dict(clean)
