"""Tests for losses and optimizers."""

import numpy as np
import pytest

from repro.nn.losses import cross_entropy, softmax
from repro.nn.optimizers import SGD, Adam


class TestSoftmax:
    def test_rows_sum_to_one(self):
        p = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(p.sum(axis=1), np.ones(5), rtol=1e-6)

    def test_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(p, [[0.5, 0.5]])

    def test_invariant_to_shift(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100))


class TestCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_is_log_k(self):
        logits = np.zeros((3, 4))
        loss, _ = cross_entropy(logits, np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(4))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 5))
        labels = rng.integers(0, 5, size=4)
        _, grad = cross_entropy(logits.copy(), labels)
        eps = 1e-6
        for idx in [(0, 0), (1, 3), (3, 4)]:
            logits[idx] += eps
            plus, _ = cross_entropy(logits.copy(), labels)
            logits[idx] -= 2 * eps
            minus, _ = cross_entropy(logits.copy(), labels)
            logits[idx] += eps
            assert grad[idx] == pytest.approx(
                (plus - minus) / (2 * eps), abs=1e-6)

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3)), np.array([0]))


def quadratic_problem():
    """Minimise ||p - 3||^2; returns (param, grad, refresh)."""
    param = np.array([10.0])
    grad = np.zeros(1)

    def refresh():
        grad[...] = 2 * (param - 3.0)

    return param, grad, refresh


class TestSGD:
    def test_converges_on_quadratic(self):
        param, grad, refresh = quadratic_problem()
        opt = SGD([param], [grad], lr=0.1, momentum=0.0)
        for _ in range(100):
            refresh()
            opt.step()
        assert param[0] == pytest.approx(3.0, abs=1e-3)

    def test_momentum_accelerates(self):
        p1, g1, r1 = quadratic_problem()
        p2, g2, r2 = quadratic_problem()
        plain = SGD([p1], [g1], lr=0.01, momentum=0.0)
        momentum = SGD([p2], [g2], lr=0.01, momentum=0.9)
        for _ in range(30):
            r1(); plain.step()
            r2(); momentum.step()
        assert abs(p2[0] - 3.0) < abs(p1[0] - 3.0)

    def test_weight_decay_shrinks_params(self):
        param = np.array([5.0])
        grad = np.zeros(1)
        opt = SGD([param], [grad], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.step()
        assert param[0] < 5.0

    def test_validation(self):
        param, grad = np.zeros(1), np.zeros(1)
        with pytest.raises(ValueError):
            SGD([param], [grad], lr=0.0)
        with pytest.raises(ValueError):
            SGD([param], [grad], momentum=1.0)
        with pytest.raises(ValueError):
            SGD([param], [grad, grad])
        with pytest.raises(ValueError):
            SGD([param], [np.zeros(2)])


class TestAdam:
    def test_converges_on_quadratic(self):
        param, grad, refresh = quadratic_problem()
        opt = Adam([param], [grad], lr=0.3)
        for _ in range(200):
            refresh()
            opt.step()
        assert param[0] == pytest.approx(3.0, abs=1e-2)

    def test_step_size_bounded_by_lr_initially(self):
        param = np.array([0.0])
        grad = np.array([1000.0])
        opt = Adam([param], [grad], lr=0.01)
        opt.step()
        # Adam normalises by grad magnitude: first step ~ lr.
        assert abs(param[0]) <= 0.011

    def test_validation(self):
        param, grad = np.zeros(1), np.zeros(1)
        with pytest.raises(ValueError):
            Adam([param], [grad], lr=-1)
        with pytest.raises(ValueError):
            Adam([param], [grad], beta1=1.0)
