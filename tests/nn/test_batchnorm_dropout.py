"""Tests for BatchNorm2D and Dropout, including gradient checks."""

import numpy as np
import pytest

from repro.core.architecture import Architecture
from repro.nn.builder import build_network
from repro.nn.layers import BatchNorm2D, Dense, Dropout, GlobalAvgPool
from repro.nn.losses import cross_entropy
from repro.nn.network import Sequential

F64 = np.float64


class TestBatchNorm2D:
    def test_training_output_is_normalised(self):
        bn = BatchNorm2D(3, dtype=F64)
        x = np.random.default_rng(0).normal(2.0, 5.0, size=(8, 3, 4, 4))
        out = bn.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0,
                                   atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0,
                                   atol=1e-3)

    def test_running_stats_track_batches(self):
        bn = BatchNorm2D(2, momentum=0.5, dtype=F64)
        x = np.full((4, 2, 3, 3), 10.0)
        bn.forward(x, training=True)
        assert bn.running_mean[0] > 0.0

    def test_inference_uses_running_stats(self):
        bn = BatchNorm2D(2, momentum=0.0, dtype=F64)
        rng = np.random.default_rng(1)
        x = rng.normal(3.0, 2.0, size=(16, 2, 5, 5))
        bn.forward(x, training=True)  # momentum 0 -> running = batch stats
        out = bn.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_param_gradients_match_numeric(self):
        rng = np.random.default_rng(2)
        bn = BatchNorm2D(2, dtype=F64)
        net = Sequential([bn, GlobalAvgPool(), Dense(2, 3, rng=rng,
                                                     dtype=F64)])
        x = rng.normal(size=(5, 2, 4, 4))
        y = rng.integers(0, 3, size=5)
        net.train_step(x, y)
        analytic = bn.d_gamma.copy()

        def loss():
            logits = net.forward(x, training=True)
            value, _ = cross_entropy(logits, y)
            return value

        eps = 1e-6
        for idx in (0, 1):
            bn.gamma[idx] += eps
            plus = loss()
            bn.gamma[idx] -= 2 * eps
            minus = loss()
            bn.gamma[idx] += eps
            numeric = (plus - minus) / (2 * eps)
            assert analytic[idx] == pytest.approx(numeric, abs=1e-6)

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        bn = BatchNorm2D(2, dtype=F64)
        x = rng.normal(size=(4, 2, 3, 3))
        out = bn.forward(x.copy(), training=True)
        analytic = bn.backward(np.ones_like(out) * 0.3)
        eps = 1e-6
        for idx in [(0, 0, 1, 1), (2, 1, 0, 2)]:
            x[idx] += eps
            plus = (bn.forward(x, training=True) * 0.3).sum()
            x[idx] -= 2 * eps
            minus = (bn.forward(x, training=True) * 0.3).sum()
            x[idx] += eps
            numeric = (plus - minus) / (2 * eps)
            assert analytic[idx] == pytest.approx(numeric, abs=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchNorm2D(0)
        with pytest.raises(ValueError):
            BatchNorm2D(2, momentum=1.0)
        with pytest.raises(ValueError):
            BatchNorm2D(2).forward(np.zeros((1, 3, 4, 4), dtype=np.float32))


class TestDropout:
    def test_identity_at_inference(self):
        drop = Dropout(rate=0.5)
        x = np.ones((4, 8))
        np.testing.assert_array_equal(drop.forward(x, training=False), x)

    def test_training_zeroes_and_rescales(self):
        drop = Dropout(rate=0.5, seed=0)
        x = np.ones((100, 100), dtype=np.float32)
        out = drop.forward(x, training=True)
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_backward_uses_same_mask(self):
        drop = Dropout(rate=0.3, seed=1)
        x = np.ones((10, 10), dtype=np.float32)
        out = drop.forward(x, training=True)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad != 0, out != 0)

    def test_zero_rate_is_identity(self):
        drop = Dropout(rate=0.0)
        x = np.ones((3, 3))
        np.testing.assert_array_equal(drop.forward(x, training=True), x)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)


class TestBuilderOptions:
    def test_batch_norm_inserted(self):
        arch = Architecture.from_choices([3, 3], [4, 8], input_size=10)
        net = build_network(arch, batch_norm=True)
        names = [l.__class__.__name__ for l in net.layers]
        assert names.count("BatchNorm2D") == 2

    def test_dropout_inserted_before_head(self):
        arch = Architecture.from_choices([3], [4], input_size=10)
        net = build_network(arch, dropout=0.25)
        names = [l.__class__.__name__ for l in net.layers]
        assert names[-2] == "Dropout"

    def test_batch_norm_network_trains(self):
        arch = Architecture.from_choices([3], [6], input_size=10)
        net = build_network(arch, batch_norm=True, dropout=0.1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 1, 10, 10)).astype(np.float32)
        y = rng.integers(0, 10, size=16)
        first = net.train_step(x, y)
        from repro.nn.optimizers import SGD
        opt = SGD(net.params(), net.grads(), lr=0.05)
        for _ in range(10):
            net.train_step(x, y)
            opt.step()
        assert net.train_step(x, y) < first

    def test_rejects_bad_dropout(self):
        arch = Architecture.from_choices([3], [4], input_size=10)
        with pytest.raises(ValueError):
            build_network(arch, dropout=1.5)
