"""Tests for Sequential, the builder, and the trainer."""

import numpy as np
import pytest

from repro.core.architecture import Architecture
from repro.datasets import make_mnist
from repro.nn.builder import build_network
from repro.nn.layers import Conv2D, Dense, Flatten, ReLU
from repro.nn.network import Sequential
from repro.nn.trainer import Trainer


def tiny_net(rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential([
        Conv2D(1, 4, 3, rng=rng),
        ReLU(),
        Flatten(),
        Dense(4 * 8 * 8, 3, rng=rng),
    ])


class TestSequential:
    def test_forward_shape(self):
        net = tiny_net()
        out = net.forward(np.zeros((2, 1, 8, 8), dtype=np.float32))
        assert out.shape == (2, 3)

    def test_params_and_grads_align(self):
        net = tiny_net()
        params, grads = net.params(), net.grads()
        assert len(params) == len(grads) == 4  # conv W/b + dense W/b
        for p, g in zip(params, grads):
            assert p.shape == g.shape

    def test_parameter_count(self):
        net = tiny_net()
        expected = (4 * 1 * 3 * 3 + 4) + (4 * 64 * 3 + 3)
        assert net.parameter_count == expected

    def test_train_step_returns_loss_and_sets_grads(self):
        net = tiny_net()
        x = np.random.default_rng(0).normal(size=(4, 1, 8, 8)).astype(np.float32)
        y = np.array([0, 1, 2, 0])
        loss = net.train_step(x, y)
        assert loss > 0
        assert any(np.abs(g).sum() > 0 for g in net.grads())

    def test_predict_batched_matches_full(self):
        net = tiny_net()
        x = np.random.default_rng(1).normal(size=(10, 1, 8, 8)).astype(np.float32)
        full = net.predict(x, batch_size=10)
        batched = net.predict(x, batch_size=3)
        np.testing.assert_array_equal(full, batched)

    def test_accuracy_on_empty_raises(self):
        net = tiny_net()
        with pytest.raises(ValueError):
            net.accuracy(np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=int))

    def test_rejects_empty_layer_list(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestBuilder:
    def test_flatten_head_shapes(self):
        arch = Architecture.from_choices([3, 5], [4, 8], input_size=12,
                                         num_classes=7)
        net = build_network(arch)
        out = net.forward(np.zeros((2, 1, 12, 12), dtype=np.float32))
        assert out.shape == (2, 7)

    def test_gap_head_shapes(self):
        arch = Architecture.from_choices([3], [6], input_size=10,
                                         num_classes=4)
        net = build_network(arch, head="gap")
        out = net.forward(np.zeros((1, 1, 10, 10), dtype=np.float32))
        assert out.shape == (1, 4)

    def test_strided_architecture(self):
        arch = Architecture.from_choices(
            [3, 3], [4, 4], input_size=12, strides=[2, 1])
        net = build_network(arch)
        out = net.forward(np.zeros((1, 1, 12, 12), dtype=np.float32))
        assert out.shape == (1, 10)

    def test_rejects_unknown_head(self):
        arch = Architecture.from_choices([3], [4], input_size=8)
        with pytest.raises(ValueError, match="head"):
            build_network(arch, head="attention")

    def test_seeded_builds_are_identical(self):
        arch = Architecture.from_choices([3], [4], input_size=8)
        a = build_network(arch, rng=np.random.default_rng(3))
        b = build_network(arch, rng=np.random.default_rng(3))
        for pa, pb in zip(a.params(), b.params()):
            np.testing.assert_array_equal(pa, pb)


class TestTrainer:
    @pytest.fixture(scope="class")
    def data(self):
        ds = make_mnist(train_size=300, val_size=120, seed=1)
        return ds

    def test_training_improves_over_chance(self, data):
        arch = Architecture.from_choices([5], [8], input_size=28)
        net = build_network(arch, rng=np.random.default_rng(0))
        trainer = Trainer(epochs=4, batch_size=32, lr=0.03, seed=0)
        result = trainer.train(net, data.train_x, data.train_y,
                               data.val_x, data.val_y)
        assert result.best_accuracy > 0.2  # chance is 0.1
        assert result.epochs == 4
        assert len(result.train_losses) == 4

    def test_loss_decreases(self, data):
        arch = Architecture.from_choices([5], [8], input_size=28)
        net = build_network(arch, rng=np.random.default_rng(0))
        result = Trainer(epochs=4, batch_size=32, lr=0.03).train(
            net, data.train_x, data.train_y, data.val_x, data.val_y)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_accuracy_window_rule(self, data):
        arch = Architecture.from_choices([5], [6], input_size=28)
        net = build_network(arch, rng=np.random.default_rng(0))
        trainer = Trainer(epochs=6, batch_size=32, lr=0.03,
                          accuracy_window=3)
        result = trainer.train(net, data.train_x, data.train_y,
                               data.val_x, data.val_y)
        assert result.best_accuracy == max(result.val_accuracies[-3:])

    def test_validation(self):
        with pytest.raises(ValueError):
            Trainer(epochs=0)
        with pytest.raises(ValueError):
            Trainer(batch_size=0)
        with pytest.raises(ValueError):
            Trainer(accuracy_window=0)

    def test_mismatched_data_raises(self, data):
        arch = Architecture.from_choices([5], [6], input_size=28)
        net = build_network(arch)
        with pytest.raises(ValueError):
            Trainer(epochs=1).train(net, data.train_x, data.train_y[:-1],
                                    data.val_x, data.val_y)
