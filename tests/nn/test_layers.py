"""Tests for the NumPy NN layers, including numeric gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
)
from repro.nn.losses import cross_entropy
from repro.nn.network import Sequential

F64 = np.float64


def numeric_grad(f, param, idx, eps=1e-6):
    param[idx] += eps
    plus = f()
    param[idx] -= 2 * eps
    minus = f()
    param[idx] += eps
    return (plus - minus) / (2 * eps)


def check_param_grads(net, x, y, layer, n_checks=4, tol=1e-6):
    """Compare analytic vs numeric gradients on a few random entries."""
    net.train_step(x, y)
    rng = np.random.default_rng(0)

    def loss():
        logits = net.forward(x)
        value, _ = cross_entropy(logits, y)
        return value

    for param, grad in zip(layer.params(), layer.grads()):
        analytic = grad.copy()
        for _ in range(n_checks):
            idx = tuple(rng.integers(0, s) for s in param.shape)
            numeric = numeric_grad(loss, param, idx)
            assert abs(analytic[idx] - numeric) < tol, (
                f"grad mismatch at {idx}: {analytic[idx]} vs {numeric}"
            )


def check_input_grad(layer, x, tol=1e-6):
    """Compare analytic vs numeric input gradients through a sum loss."""
    out = layer.forward(x.copy(), training=True)
    upstream = np.ones_like(out)
    analytic = layer.backward(upstream)
    rng = np.random.default_rng(1)
    for _ in range(4):
        idx = tuple(rng.integers(0, s) for s in x.shape)

        def f():
            return float(layer.forward(x, training=True).sum())

        numeric = numeric_grad(f, x, idx)
        assert abs(analytic[idx] - numeric) < tol


class TestConv2D:
    def test_output_shape_same_padding(self):
        conv = Conv2D(3, 8, kernel=5, dtype=F64)
        out = conv.forward(np.zeros((2, 3, 12, 12)))
        assert out.shape == (2, 8, 12, 12)

    def test_output_shape_strided(self):
        conv = Conv2D(1, 4, kernel=3, stride=2, dtype=F64)
        out = conv.forward(np.zeros((1, 1, 9, 9)))
        assert out.shape == (1, 4, 5, 5)

    def test_matches_direct_convolution(self):
        """Cross-check im2col against a naive sliding-window conv."""
        rng = np.random.default_rng(0)
        conv = Conv2D(2, 3, kernel=3, rng=rng, dtype=F64)
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv.forward(x)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for o in range(3):
            for r in range(5):
                for c in range(5):
                    window = xp[0, :, r:r + 3, c:c + 3]
                    expected = (window * conv.weight[o]).sum() + conv.bias[o]
                    assert out[0, o, r, c] == pytest.approx(expected)

    def test_weight_gradients(self):
        rng = np.random.default_rng(2)
        conv = Conv2D(2, 3, 3, rng=rng, dtype=F64)
        net = Sequential([conv, GlobalAvgPool(),
                          Dense(3, 4, rng=rng, dtype=F64)])
        x = rng.normal(size=(4, 2, 7, 7))
        y = rng.integers(0, 4, size=4)
        check_param_grads(net, x, y, conv)

    def test_weight_gradients_strided(self):
        rng = np.random.default_rng(3)
        conv = Conv2D(2, 3, 3, stride=2, rng=rng, dtype=F64)
        net = Sequential([conv, GlobalAvgPool(),
                          Dense(3, 4, rng=rng, dtype=F64)])
        x = rng.normal(size=(3, 2, 9, 9))
        y = rng.integers(0, 4, size=3)
        check_param_grads(net, x, y, conv)

    def test_input_gradients(self):
        rng = np.random.default_rng(4)
        conv = Conv2D(2, 3, 3, rng=rng, dtype=F64)
        x = rng.normal(size=(2, 2, 6, 6))
        check_input_grad(conv, x)

    def test_rejects_wrong_channels(self):
        conv = Conv2D(3, 4, 3)
        with pytest.raises(ValueError, match="channels"):
            conv.forward(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Conv2D(1, 1, 1).backward(np.zeros((1, 1, 4, 4)))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Conv2D(0, 1, 3)
        with pytest.raises(ValueError):
            Conv2D(1, 1, 0)

    def test_depthwise_output_shape_same_padding(self):
        dw = DepthwiseConv2D(3, kernel=5, dtype=F64)
        out = dw.forward(np.zeros((2, 3, 12, 12)))
        assert out.shape == (2, 3, 12, 12)

    def test_depthwise_output_shape_strided(self):
        dw = DepthwiseConv2D(2, kernel=3, stride=2, dtype=F64)
        out = dw.forward(np.zeros((1, 2, 9, 9)))
        assert out.shape == (1, 2, 5, 5)

    def test_depthwise_matches_direct_convolution(self):
        """Cross-check the slice loop against a naive per-channel conv."""
        rng = np.random.default_rng(5)
        dw = DepthwiseConv2D(2, kernel=3, rng=rng, dtype=F64)
        x = rng.normal(size=(1, 2, 5, 5))
        out = dw.forward(x)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for ch in range(2):
            for r in range(5):
                for c in range(5):
                    window = xp[0, ch, r:r + 3, c:c + 3]
                    expected = (window * dw.weight[ch]).sum() + dw.bias[ch]
                    assert out[0, ch, r, c] == pytest.approx(expected)

    def test_depthwise_matches_grouped_conv2d(self):
        """A depthwise layer is a Conv2D with cross-channel taps zeroed."""
        rng = np.random.default_rng(6)
        dw = DepthwiseConv2D(3, kernel=3, rng=rng, dtype=F64)
        full = Conv2D(3, 3, kernel=3, dtype=F64)
        full.weight[:] = 0.0
        for ch in range(3):
            full.weight[ch, ch] = dw.weight[ch]
        full.bias[:] = dw.bias
        x = rng.normal(size=(2, 3, 6, 6))
        np.testing.assert_allclose(dw.forward(x), full.forward(x),
                                   rtol=1e-12, atol=1e-12)

    def test_depthwise_weight_gradients(self):
        rng = np.random.default_rng(7)
        dw = DepthwiseConv2D(2, kernel=3, rng=rng, dtype=F64)
        net = Sequential([dw, GlobalAvgPool(), Dense(2, 4, rng=rng, dtype=F64)])
        x = rng.normal(size=(4, 2, 7, 7))
        y = rng.integers(0, 4, size=4)
        check_param_grads(net, x, y, dw)

    def test_depthwise_weight_gradients_strided(self):
        rng = np.random.default_rng(8)
        dw = DepthwiseConv2D(2, kernel=3, stride=2, rng=rng, dtype=F64)
        net = Sequential([dw, GlobalAvgPool(), Dense(2, 4, rng=rng, dtype=F64)])
        x = rng.normal(size=(3, 2, 9, 9))
        y = rng.integers(0, 4, size=3)
        check_param_grads(net, x, y, dw)

    def test_depthwise_input_gradients(self):
        rng = np.random.default_rng(9)
        dw = DepthwiseConv2D(2, kernel=3, rng=rng, dtype=F64)
        x = rng.normal(size=(2, 2, 6, 6))
        check_input_grad(dw, x)

    def test_depthwise_rejects_wrong_channels(self):
        dw = DepthwiseConv2D(3, kernel=3)
        with pytest.raises(ValueError, match="channels"):
            dw.forward(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_depthwise_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            DepthwiseConv2D(1, kernel=1).backward(np.zeros((1, 1, 4, 4)))

    def test_depthwise_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DepthwiseConv2D(0, kernel=3)
        with pytest.raises(ValueError):
            DepthwiseConv2D(1, kernel=0)

    def test_chunked_path_matches_full_path(self, monkeypatch):
        """Sub-batch processing must be numerically identical."""
        import repro.nn.layers as layers_mod
        rng = np.random.default_rng(6)
        x = rng.normal(size=(6, 2, 7, 7))
        y = rng.integers(0, 4, size=6)

        def run(max_elements):
            monkeypatch.setattr(layers_mod, "MAX_COL_ELEMENTS", max_elements)
            r = np.random.default_rng(7)
            conv = Conv2D(2, 3, 3, rng=r, dtype=F64)
            net = Sequential([conv, GlobalAvgPool(),
                              Dense(3, 4, rng=r, dtype=F64)])
            loss = net.train_step(x, y)
            return loss, conv.d_weight.copy(), conv.d_bias.copy()

        full_loss, full_dw, full_db = run(10**9)
        # Budget for ~2 examples: forces 3 chunks.
        per_example = 2 * 3 * 3 * 7 * 7
        chunk_loss, chunk_dw, chunk_db = run(2 * per_example)
        assert chunk_loss == pytest.approx(full_loss)
        np.testing.assert_allclose(chunk_dw, full_dw, rtol=1e-10)
        np.testing.assert_allclose(chunk_db, full_db, rtol=1e-10)

    def test_chunked_input_gradient_matches(self, monkeypatch):
        import repro.nn.layers as layers_mod
        rng = np.random.default_rng(8)
        x = rng.normal(size=(5, 2, 6, 6))
        grad = rng.normal(size=(5, 3, 6, 6))

        def run(max_elements):
            monkeypatch.setattr(layers_mod, "MAX_COL_ELEMENTS", max_elements)
            conv = Conv2D(2, 3, 3, rng=np.random.default_rng(9), dtype=F64)
            conv.forward(x)
            return conv.backward(grad)

        np.testing.assert_allclose(run(10**9), run(100), rtol=1e-10)

    def test_dtype_float32_by_default(self):
        conv = Conv2D(1, 2, 3)
        assert conv.weight.dtype == np.float32
        out = conv.forward(np.zeros((1, 1, 4, 4), dtype=np.float32))
        assert out.dtype == np.float32


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_array_equal(relu.forward(x), [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        relu = ReLU()
        x = np.array([[-1.0, 3.0]])
        relu.forward(x)
        grad = relu.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros(3))


class TestMaxPool2D:
    def test_forward_shape_and_values(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=F64).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_ragged_input_padded(self):
        pool = MaxPool2D(2)
        out = pool.forward(np.ones((1, 1, 5, 5)))
        assert out.shape == (1, 1, 3, 3)

    def test_gradient_routes_to_max(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=F64).reshape(1, 1, 4, 4).copy()
        check_input_grad(pool, x)

    def test_tied_max_splits_gradient(self):
        pool = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2))
        pool.forward(x)
        grad = pool.backward(np.array([[[[4.0]]]]))
        np.testing.assert_allclose(grad, np.ones((1, 1, 2, 2)))

    def test_rejects_bad_pool(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestGlobalAvgPool:
    def test_forward(self):
        gap = GlobalAvgPool()
        x = np.arange(8, dtype=F64).reshape(1, 2, 2, 2)
        np.testing.assert_allclose(gap.forward(x), [[1.5, 5.5]])

    def test_gradient(self):
        gap = GlobalAvgPool()
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
        check_input_grad(gap, x)


class TestFlatten:
    def test_roundtrip(self):
        flat = Flatten()
        x = np.arange(24, dtype=F64).reshape(2, 3, 2, 2)
        out = flat.forward(x)
        assert out.shape == (2, 12)
        back = flat.backward(out)
        np.testing.assert_array_equal(back, x)


class TestDense:
    def test_forward_shape(self):
        dense = Dense(4, 3, dtype=F64)
        assert dense.forward(np.zeros((5, 4))).shape == (5, 3)

    def test_gradients(self):
        rng = np.random.default_rng(5)
        dense = Dense(6, 4, rng=rng, dtype=F64)
        net = Sequential([dense])
        x = rng.normal(size=(5, 6))
        y = rng.integers(0, 4, size=5)
        check_param_grads(net, x, y, dense)

    def test_rejects_wrong_input_width(self):
        with pytest.raises(ValueError):
            Dense(4, 3).forward(np.zeros((2, 5), dtype=np.float32))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
