"""Tests for FNAS-Design tiling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.architecture import Architecture, ConvLayerSpec
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.fpga.tiling import (
    DOUBLE_BUFFER,
    WORD_BYTES,
    LayerDesign,
    TilingDesigner,
    TilingVector,
    _tile_size_candidates,
)


def spec_of(n=8, m=16, k=3, size=16, stride=1):
    return ConvLayerSpec(in_channels=n, out_channels=m, kernel=k,
                         in_rows=size, in_cols=size, stride=stride)


class TestTilingVector:
    def test_dsps(self):
        assert TilingVector(tm=4, tn=3, tr=2, tc=2).dsps == 12

    @pytest.mark.parametrize("field", ["tm", "tn", "tr", "tc"])
    def test_rejects_non_positive(self, field):
        kwargs = dict(tm=1, tn=1, tr=1, tc=1)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            TilingVector(**kwargs)


class TestLayerDesign:
    def test_tile_counts(self):
        design = LayerDesign(0, spec_of(n=8, m=16, size=16),
                             TilingVector(tm=5, tn=3, tr=4, tc=8))
        assert design.n_ifm_channel_tiles == 3   # ceil(8/3)
        assert design.n_ofm_channel_tiles == 4   # ceil(16/5)
        assert design.n_row_tiles == 4
        assert design.n_col_tiles == 2
        assert design.n_rc_tiles == 8
        assert design.task_count == 3 * 4 * 8

    def test_execution_time_formula(self):
        design = LayerDesign(0, spec_of(k=3), TilingVector(2, 2, 4, 5))
        assert design.execution_time == 3 * 3 * 4 * 5

    def test_processing_time_is_et_times_tasks(self):
        design = LayerDesign(0, spec_of(), TilingVector(4, 4, 4, 4))
        assert design.processing_time == (
            design.execution_time * design.task_count
        )

    def test_processing_time_covers_all_macs(self):
        """PT x (Tm*Tn MACs/cycle) >= layer MACs (equality if no ceil waste)."""
        spec = spec_of(n=8, m=16, k=3, size=16)
        design = LayerDesign(0, spec, TilingVector(tm=8, tn=8, tr=16, tc=16))
        assert design.processing_time * design.tiling.dsps == spec.macs

    def test_buffer_sizes(self):
        spec = spec_of(n=8, m=16, k=3, size=16, stride=1)
        design = LayerDesign(0, spec, TilingVector(tm=2, tn=3, tr=4, tc=4))
        assert design.ifm_buffer_bytes == 3 * 6 * 6 * WORD_BYTES
        assert design.ofm_buffer_bytes == 2 * 4 * 4 * WORD_BYTES
        assert design.weight_buffer_bytes == 2 * 3 * 3 * 3 * WORD_BYTES
        assert design.bram_bytes == DOUBLE_BUFFER * (
            design.ifm_buffer_bytes + design.ofm_buffer_bytes
            + design.weight_buffer_bytes
        )

    @pytest.mark.parametrize("tiling,msg", [
        (TilingVector(tm=99, tn=1, tr=1, tc=1), "Tm"),
        (TilingVector(tm=1, tn=99, tr=1, tc=1), "Tn"),
        (TilingVector(tm=1, tn=1, tr=99, tc=1), "Tr"),
        (TilingVector(tm=1, tn=1, tr=1, tc=99), "Tc"),
    ])
    def test_rejects_oversized_tiles(self, tiling, msg):
        with pytest.raises(ValueError, match=msg):
            LayerDesign(0, spec_of(), tiling)


class TestTilingDesigner:
    def test_respects_dsp_budget(self, designer):
        spec = spec_of(n=32, m=64)
        tiling = designer.design_layer(spec, dsp_budget=50,
                                       bram_budget_bytes=10**6)
        assert tiling.dsps <= 50

    def test_respects_bram_budget(self, designer):
        spec = spec_of(n=32, m=64, size=32)
        budget = 20_000
        tiling = designer.design_layer(spec, dsp_budget=100,
                                       bram_budget_bytes=budget)
        design = LayerDesign(0, spec, tiling)
        assert design.bram_bytes <= budget

    def test_raises_when_nothing_fits(self, designer):
        spec = spec_of(n=32, m=64, k=7)
        with pytest.raises(ValueError, match="BRAM"):
            designer.design_layer(spec, dsp_budget=100, bram_budget_bytes=64)

    def test_channel_tiling_minimises_waste(self, designer):
        # 8 in / 16 out with 64 DSPs: Tm=8, Tn=8 gives zero ceil waste.
        spec = spec_of(n=8, m=16)
        tiling = designer.design_layer(spec, dsp_budget=64,
                                       bram_budget_bytes=10**6)
        tiles = (-(-16 // tiling.tm)) * (-(-8 // tiling.tn))
        assert tiles == 2  # optimal: ceil(16/8) * ceil(8/8)

    def test_strategies_produce_valid_designs(self):
        for strategy in ("max-reuse", "min-start"):
            designer = TilingDesigner(spatial_strategy=strategy)
            spec = spec_of(n=8, m=16, size=28)
            tiling = designer.design_layer(spec, 64, 10**6)
            LayerDesign(0, spec, tiling)  # validates

    def test_min_start_tiles_not_larger_than_max_reuse(self):
        spec = spec_of(n=8, m=16, size=28)
        big = TilingDesigner("max-reuse").design_layer(spec, 64, 10**6)
        small = TilingDesigner("min-start").design_layer(spec, 64, 10**6)
        assert small.tr * small.tc <= big.tr * big.tc

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="spatial_strategy"):
            TilingDesigner(spatial_strategy="bogus")

    def test_rejects_zero_dsp_budget(self, designer):
        with pytest.raises(ValueError):
            designer.design_layer(spec_of(), 0, 10**6)

    def test_full_pipeline_design(self, designer, mnist_arch, pynq_platform):
        design = designer.design(mnist_arch, pynq_platform)
        assert len(design.layers) == mnist_arch.depth
        assert design.total_dsps_used <= pynq_platform.total_dsps
        for idx, layer_design in enumerate(design.layers):
            assert layer_design.layer_index == idx
            assert layer_design.spec is mnist_arch.layers[idx]

    def test_pipeline_respects_per_pe_budgets(self, designer, mnist_arch,
                                              pynq_platform):
        design = designer.design(mnist_arch, pynq_platform)
        for layer_design, allocation in zip(design.layers, design.allocations):
            assert layer_design.tiling.dsps <= allocation.dsp_budget
            assert layer_design.bram_bytes <= allocation.bram_budget_bytes

    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(1, 64),
        m=st.integers(1, 64),
        k=st.sampled_from([1, 3, 5, 7]),
        size=st.integers(7, 32),
        dsp=st.integers(4, 300),
    )
    def test_designed_layers_always_satisfy_constraints(self, n, m, k, size, dsp):
        if k > size:
            return
        spec = ConvLayerSpec(in_channels=n, out_channels=m, kernel=k,
                             in_rows=size, in_cols=size)
        designer = TilingDesigner()
        bram = 256 * 1024
        tiling = designer.design_layer(spec, dsp, bram)
        design = LayerDesign(0, spec, tiling)
        assert tiling.dsps <= dsp
        assert design.bram_bytes <= bram
        assert tiling.tm <= m and tiling.tn <= n
        assert tiling.tr <= spec.out_rows and tiling.tc <= spec.out_cols


class TestTileCandidates:
    def test_includes_divisors(self):
        assert _tile_size_candidates(12) >= [1, 2, 3, 4, 6, 12][:0] or True
        cands = _tile_size_candidates(12)
        for d in (1, 2, 3, 4, 6, 12):
            assert d in cands

    def test_prime_extent_gets_mid_range_options(self):
        cands = _tile_size_candidates(13)
        assert any(1 < c < 13 for c in cands)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            _tile_size_candidates(0)


class TestTilingDiskCache:
    """Tier 2 of the tiling memo: the shared on-disk cache."""

    @pytest.fixture
    def disk_dir(self, tmp_path):
        """Point the process-wide disk tier at a temp dir, then unpoint
        it (the global must never leak into other tests)."""
        from repro.fpga import tiling as tiling_mod

        tiling_mod.configure_disk_cache(str(tmp_path / "tiling"))
        tiling_mod.reset_process_memo_stats()
        yield tmp_path / "tiling"
        tiling_mod.configure_disk_cache(None)
        tiling_mod.reset_process_memo_stats()

    def _entry(self):
        return (spec_of(), 64, 256 * 1024, "max-reuse")

    def test_round_trip(self, tmp_path):
        from repro.fpga.tiling import TilingDiskCache

        cache = TilingDiskCache(str(tmp_path))
        tiling = TilingVector(tm=4, tn=3, tr=8, tc=8)
        cache.put(*self._entry(), tiling)
        assert cache.get(*self._entry()) == tiling

    def test_distinct_inputs_get_distinct_keys(self, tmp_path):
        from repro.fpga.tiling import TilingDiskCache

        base = TilingDiskCache.entry_key(*self._entry())
        for variant in (
            (spec_of(n=9), 64, 256 * 1024, "max-reuse"),
            (spec_of(), 63, 256 * 1024, "max-reuse"),
            (spec_of(), 64, 256 * 1024 - 1, "max-reuse"),
            (spec_of(), 64, 256 * 1024, "min-start"),
        ):
            assert TilingDiskCache.entry_key(*variant) != base

    def test_torn_entry_at_every_offset_is_a_silent_miss(self, tmp_path):
        """The corrupt-entry contract of ``ResultStore.get_bytes``: a
        write torn at *any* byte offset must read as a miss, never an
        exception or a bogus tiling."""
        from repro.fpga.tiling import TilingDiskCache

        cache = TilingDiskCache(str(tmp_path))
        entry = self._entry()
        cache.put(*entry, TilingVector(tm=4, tn=3, tr=8, tc=8))
        path = tmp_path / f"{TilingDiskCache.entry_key(*entry)}.json"
        intact = path.read_bytes()
        for offset in range(len(intact)):
            path.write_bytes(intact[:offset])
            assert cache.get(*entry) is None, f"torn at offset {offset}"
        path.write_bytes(intact)
        assert cache.get(*entry) is not None

    def test_memo_misses_fall_through_to_disk_and_promote(self, disk_dir):
        """A fresh process's memo (simulated by a fresh LayerDesignMemo)
        is warmed by another's write-through -- and the disk hit is paid
        at most once per shape, because the entry promotes to memory."""
        from repro.fpga.tiling import LayerDesignMemo, process_memo_snapshot

        tiling = TilingVector(tm=4, tn=3, tr=8, tc=8)
        writer = LayerDesignMemo()
        writer.store(*self._entry(), tiling)

        reader = LayerDesignMemo()  # another worker's tier 1: cold
        assert reader.lookup(*self._entry()) == tiling
        disk = process_memo_snapshot()["disk"]
        assert disk["hits"] == 1 and disk["misses"] == 0
        # Promoted: the second lookup never touches the disk tier.
        assert reader.lookup(*self._entry()) == tiling
        assert process_memo_snapshot()["disk"]["hits"] == 1

    def test_unconfigured_tier_counts_nothing(self):
        from repro.fpga import tiling as tiling_mod

        tiling_mod.configure_disk_cache(None)
        tiling_mod.reset_process_memo_stats()
        memo = tiling_mod.LayerDesignMemo()
        assert memo.lookup(*self._entry()) is None
        assert "disk" not in tiling_mod.process_memo_snapshot()

    def test_memory_tier_buckets_unchanged_by_disk_tier(self, disk_dir):
        """The ``all`` bucket keeps meaning memory-tier lookups, so
        pre-existing dashboards read the same numbers either way."""
        from repro.fpga.tiling import LayerDesignMemo, process_memo_snapshot

        memo = LayerDesignMemo()
        memo.lookup(*self._entry())                 # miss (both tiers)
        memo.store(*self._entry(), TilingVector(tm=4, tn=3, tr=8, tc=8))
        memo.lookup(*self._entry())                 # memory hit
        snapshot = process_memo_snapshot()
        assert snapshot["all"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}

    def test_designer_writes_through_when_configured(self, disk_dir):
        """End to end: designing a layer with the tier configured leaves
        a re-readable entry on disk."""
        from repro.fpga.tiling import LayerDesignMemo, TilingDiskCache

        memo = LayerDesignMemo()
        designer = TilingDesigner(memo=memo)
        tiling = designer.design_layer(spec_of(), 64, 256 * 1024)
        cache = TilingDiskCache(str(disk_dir))
        assert cache.get(spec_of(), 64, 256 * 1024, "max-reuse") == tiling
