"""Tests for the burst-level DRAM model and the phase-latency triple."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.dram import (
    COMPUTE_PHASE,
    DEFAULT_DRAM_LATENCY_CYCLES,
    LOAD_PHASE,
    WRITE_PHASE,
    DramModel,
    PhaseLatency,
)

WIDE = DramModel(port_width_bits=512, burst_beats=256, frequency_mhz=200.0)
NARROW = DramModel(port_width_bits=32, burst_beats=16, frequency_mhz=100.0)


class TestDramModel:
    def test_peak_bandwidth(self):
        # 512 bit * 200 MHz / 8 = 12.8 GB/s; 32 bit * 100 MHz / 8 = 0.4.
        assert WIDE.peak_bandwidth_gbps == pytest.approx(12.8)
        assert NARROW.peak_bandwidth_gbps == pytest.approx(0.4)

    def test_effective_bandwidth_formula_verbatim(self):
        # port_width*burst/8 / ((latency+burst)/(fre*1e6)) / 1e9.
        bw = WIDE.effective_bandwidth_gbps(256)
        assert bw == pytest.approx(
            512 * 256 / 8 / ((120 + 256) / (200.0 * 1e6)) / 1e9
        )

    def test_effective_bandwidth_below_peak(self):
        for burst in (1, 16, 256, 4096):
            assert WIDE.effective_bandwidth_gbps(burst) < WIDE.peak_bandwidth_gbps

    def test_effective_bandwidth_monotone_in_burst_length(self):
        values = [NARROW.effective_bandwidth_gbps(b) for b in (1, 4, 16, 64)]
        assert values == sorted(values)

    def test_effective_port_width_consistent(self):
        # eff_width = eff_bw expressed in bits per memory cycle.
        width = WIDE.effective_port_width_bits(256)
        assert width == pytest.approx(512 * 256 / (120 + 256))

    def test_transfer_mem_cycles_exact(self):
        # 4096 bytes on the wide port: 64 beats -> 1 burst.
        assert WIDE.transfer_mem_cycles(4096) == 1 * 120 + 64
        # 4096 bytes on the narrow port: 1024 beats -> 64 bursts.
        assert NARROW.transfer_mem_cycles(4096) == 64 * 120 + 1024

    def test_transfer_mem_cycles_rounds_partial_beats_and_bursts(self):
        # 1 byte still needs a whole beat and a whole burst's latency.
        assert WIDE.transfer_mem_cycles(1) == 120 + 1
        assert WIDE.transfer_mem_cycles(0) == 0

    def test_transfer_cycles_rescales_by_clock_ratio(self):
        # Accelerator at 100 MHz vs memory at 200 MHz: half the cycles,
        # ceil-rounded.
        mem = WIDE.transfer_mem_cycles(4096)
        assert WIDE.transfer_cycles(4096, 100.0) == -(-mem // 2)
        assert WIDE.transfer_cycles(4096, 200.0) == mem

    @settings(deadline=None, max_examples=50)
    @given(n=st.integers(min_value=0, max_value=10**7))
    def test_transfer_cycles_nonnegative_and_monotone(self, n):
        assert NARROW.transfer_mem_cycles(n) >= 0
        assert (NARROW.transfer_mem_cycles(n + 512)
                >= NARROW.transfer_mem_cycles(n))

    def test_default_latency(self):
        assert WIDE.latency_cycles == DEFAULT_DRAM_LATENCY_CYCLES == 120

    @pytest.mark.parametrize("kwargs", [
        {"port_width_bits": 0},
        {"port_width_bits": -8},
        {"port_width_bits": 12},   # not a multiple of 8
        {"burst_beats": 0},
        {"frequency_mhz": 0.0},
        {"latency_cycles": -1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        base = dict(port_width_bits=64, burst_beats=8, frequency_mhz=100.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            DramModel(**base)

    def test_invalid_transfer_arguments_rejected(self):
        with pytest.raises(ValueError):
            WIDE.transfer_mem_cycles(-1)
        with pytest.raises(ValueError):
            WIDE.transfer_cycles(16, 0.0)
        with pytest.raises(ValueError):
            WIDE.effective_bandwidth_gbps(0)


class TestPhaseLatency:
    def test_effective_is_max(self):
        assert PhaseLatency(10, 20, 5).effective_cycles == 20
        assert PhaseLatency(30, 20, 5).effective_cycles == 30
        assert PhaseLatency(10, 20, 50).effective_cycles == 50

    def test_bound_names_the_dominant_phase(self):
        assert PhaseLatency(30, 20, 5).bound == LOAD_PHASE
        assert PhaseLatency(10, 20, 5).bound == COMPUTE_PHASE
        assert PhaseLatency(10, 20, 50).bound == WRITE_PHASE

    def test_bound_ties_resolve_in_phase_order(self):
        assert PhaseLatency(20, 20, 20).bound == LOAD_PHASE
        assert PhaseLatency(10, 20, 20).bound == COMPUTE_PHASE

    def test_compute_bound_flag(self):
        assert PhaseLatency(10, 20, 5).compute_bound
        assert PhaseLatency(20, 20, 5).compute_bound  # tie counts
        assert not PhaseLatency(30, 20, 5).compute_bound

    def test_negative_phase_rejected(self):
        with pytest.raises(ValueError):
            PhaseLatency(-1, 0, 0)
