"""Tests for multi-FPGA platforms and PE allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1, XC7A50T, XCZU9EG, FpgaDevice
from repro.fpga.platform import Platform, _proportional_split


def arch_of(counts, size=16, channels=1):
    return Architecture.from_choices(
        [3] * len(counts), list(counts), input_size=size,
        input_channels=channels,
    )


class TestPlatformBasics:
    def test_single(self):
        platform = Platform.single(PYNQ_Z1)
        assert platform.total_dsps == PYNQ_Z1.dsp_slices
        assert platform.clock_mhz == PYNQ_Z1.clock_mhz

    def test_replicated(self):
        platform = Platform.replicated(PYNQ_Z1, 3)
        assert platform.total_dsps == 3 * PYNQ_Z1.dsp_slices

    def test_replicated_rejects_zero(self):
        with pytest.raises(ValueError):
            Platform.replicated(PYNQ_Z1, 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Platform([])

    def test_rejects_mixed_clocks(self):
        fast = FpgaDevice("fast", 100, 100, 1.0, clock_mhz=200.0)
        with pytest.raises(ValueError, match="clock"):
            Platform([PYNQ_Z1, fast])

    def test_cycles_ms_roundtrip(self):
        platform = Platform.single(PYNQ_Z1)
        assert platform.cycles_to_ms(
            platform.ms_to_cycles(3.0)) == pytest.approx(3.0)


class TestAllocation:
    def test_single_device_all_layers(self):
        platform = Platform.single(PYNQ_Z1)
        arch = arch_of([8, 16, 8])
        allocations = platform.allocate(arch)
        assert len(allocations) == 3
        assert [a.layer_index for a in allocations] == [0, 1, 2]
        assert all(a.device is PYNQ_Z1 for a in allocations)

    def test_dsp_budgets_fit_device(self):
        platform = Platform.single(PYNQ_Z1)
        arch = arch_of([8, 16, 32, 16])
        allocations = platform.allocate(arch)
        assert sum(a.dsp_budget for a in allocations) <= PYNQ_Z1.dsp_slices
        assert all(a.dsp_budget >= 1 for a in allocations)

    def test_heavier_layers_get_more_dsps(self):
        platform = Platform.single(XCZU9EG)
        arch = arch_of([4, 64, 4])
        allocations = platform.allocate(arch)
        # Layer 1 (4->64) and layer 2 (64->4 input 64) dominate layer 0.
        assert allocations[1].dsp_budget > allocations[0].dsp_budget

    def test_multi_fpga_partition_is_contiguous_and_complete(self):
        platform = Platform.replicated(PYNQ_Z1, 2)
        arch = arch_of([8, 8, 8, 8])
        allocations = platform.allocate(arch)
        assert [a.layer_index for a in allocations] == [0, 1, 2, 3]
        indices = [a.device_index for a in allocations]
        # Contiguous and monotone: device index never decreases.
        assert indices == sorted(indices)

    def test_more_devices_than_layers(self):
        platform = Platform.replicated(PYNQ_Z1, 4)
        arch = arch_of([8, 8])
        allocations = platform.allocate(arch)
        assert len(allocations) == 2
        # Each layer alone on a device gets the full device.
        assert allocations[0].dsp_budget == PYNQ_Z1.dsp_slices

    def test_per_device_budgets_fit(self):
        platform = Platform.replicated(XC7A50T, 2)
        arch = arch_of([8, 16, 16, 8, 8])
        allocations = platform.allocate(arch)
        per_device: dict[int, int] = {}
        for a in allocations:
            per_device[a.device_index] = (
                per_device.get(a.device_index, 0) + a.dsp_budget
            )
        assert len(per_device) == 2
        for used in per_device.values():
            assert used <= XC7A50T.dsp_slices


class TestProportionalSplit:
    def test_exact_budget_consumed(self):
        shares = _proportional_split(10, [1, 1, 1])
        assert sum(shares) == 10

    def test_everyone_gets_at_least_one(self):
        shares = _proportional_split(5, [1000, 1, 1, 1, 1])
        assert min(shares) >= 1
        assert sum(shares) == 5

    def test_rejects_budget_below_count(self):
        with pytest.raises(ValueError):
            _proportional_split(2, [1, 1, 1])

    def test_zero_weights_split_evenly(self):
        shares = _proportional_split(9, [0, 0, 0])
        assert sum(shares) == 9
        assert max(shares) - min(shares) <= 1

    @given(
        budget=st.integers(3, 500),
        weights=st.lists(st.integers(0, 10**9), min_size=1, max_size=8),
    )
    def test_invariants(self, budget, weights):
        if budget < len(weights):
            return
        shares = _proportional_split(budget, weights)
        assert sum(shares) == budget
        assert all(s >= 1 for s in shares)
