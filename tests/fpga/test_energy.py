"""Tests for the energy model extension."""

import pytest

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1
from repro.fpga.energy import EnergyModel, EnergyReport
from repro.fpga.platform import Platform
from repro.fpga.tiling import TilingDesigner
from repro.latency.analyzer import FnasAnalyzer
from repro.scheduling.fnas_sched import FnasScheduler
from repro.taskgraph.graph import TaskGraphGenerator


@pytest.fixture(scope="module")
def design():
    arch = Architecture.from_choices(
        [3, 3], [16, 32], input_size=16, input_channels=1)
    return TilingDesigner().design(arch, Platform.single(PYNQ_Z1))


@pytest.fixture(scope="module")
def schedule(design):
    graph = TaskGraphGenerator().generate(design)
    return FnasScheduler().schedule(graph)


class TestEnergyModel:
    def test_report_components_positive(self, design):
        latency = FnasAnalyzer().analyze(design).total_cycles
        report = EnergyModel().estimate(design, latency)
        assert report.compute_mj > 0
        assert report.memory_mj > 0
        assert report.static_mj > 0
        assert report.total_mj == pytest.approx(
            report.compute_mj + report.memory_mj + report.static_mj)
        assert 0 < report.memory_share < 1

    def test_schedule_reuse_reduces_traffic(self, design, schedule):
        model = EnergyModel()
        without = model.traffic_bytes(design)
        with_schedule = model.traffic_bytes(design, schedule)
        assert with_schedule < without

    def test_traffic_scales_with_model_size(self):
        small = Architecture.from_choices([3], [8], input_size=16)
        large = Architecture.from_choices([3], [64], input_size=16)
        platform = Platform.single(PYNQ_Z1)
        designer = TilingDesigner()
        model = EnergyModel()
        small_traffic = model.traffic_bytes(designer.design(small, platform))
        large_traffic = model.traffic_bytes(designer.design(large, platform))
        assert large_traffic > small_traffic

    def test_longer_latency_more_static_energy(self, design):
        model = EnergyModel()
        short = model.estimate(design, 10_000)
        long = model.estimate(design, 1_000_000)
        assert long.static_mj > short.static_mj
        # Compute energy is latency-independent (work is fixed).
        assert long.compute_mj == pytest.approx(short.compute_mj)

    def test_coefficients_scale_linearly(self, design):
        latency = 100_000
        base = EnergyModel().estimate(design, latency)
        double = EnergyModel(
            mac_energy_pj=2 * EnergyModel().mac_energy_pj
        ).estimate(design, latency)
        assert double.compute_mj == pytest.approx(2 * base.compute_mj)

    def test_validation(self, design):
        with pytest.raises(ValueError):
            EnergyModel(mac_energy_pj=0)
        with pytest.raises(ValueError):
            EnergyModel(static_watts_per_device=-1)
        with pytest.raises(ValueError):
            EnergyModel().estimate(design, 0)

    def test_report_is_plain_dataclass(self):
        report = EnergyReport(compute_mj=1.0, memory_mj=2.0, static_mj=3.0)
        assert report.total_mj == 6.0
        assert report.memory_share == pytest.approx(2.0 / 6.0)
