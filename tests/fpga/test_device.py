"""Tests for FPGA device models."""

import pytest

from repro.fpga.device import (
    DEVICE_CATALOG,
    PYNQ_Z1,
    XC7A50T,
    XC7Z020,
    XCZU9EG,
    FpgaDevice,
    get_device,
)


class TestCatalog:
    def test_contains_all_paper_devices(self):
        assert {"xc7a50t", "xc7z020", "pynq-z1", "xczu9eg"} <= set(
            DEVICE_CATALOG
        )

    def test_contains_ddr_variant_pair(self):
        assert {"xc7z020-ddr-wide", "xc7z020-ddr-narrow"} <= set(
            DEVICE_CATALOG
        )

    def test_get_device(self):
        assert get_device("pynq-z1") is PYNQ_Z1

    def test_get_device_unknown_lists_names(self):
        with pytest.raises(KeyError, match="unknown FPGA device.*known"):
            get_device("virtex")

    def test_pynq_is_a_7z020(self):
        assert PYNQ_Z1.dsp_slices == XC7Z020.dsp_slices
        assert PYNQ_Z1.bram_kbytes == XC7Z020.bram_kbytes

    def test_low_end_smaller_than_high_end(self):
        assert XC7A50T.dsp_slices < XC7Z020.dsp_slices < XCZU9EG.dsp_slices
        assert XC7A50T.bram_kbytes < XC7Z020.bram_kbytes


class TestValidation:
    @pytest.mark.parametrize("field", [
        "dsp_slices", "bram_kbytes", "bandwidth_gbps", "clock_mhz"
    ])
    def test_rejects_non_positive(self, field):
        kwargs = dict(name="x", dsp_slices=10, bram_kbytes=10,
                      bandwidth_gbps=1.0, clock_mhz=100.0)
        kwargs[field] = 0
        with pytest.raises(ValueError, match=field):
            FpgaDevice(**kwargs)


class TestConversions:
    def test_cycle_time(self):
        dev = FpgaDevice("x", 10, 10, 1.0, clock_mhz=100.0)
        assert dev.cycle_time_us == pytest.approx(0.01)

    def test_cycles_to_ms_at_100mhz(self):
        dev = FpgaDevice("x", 10, 10, 1.0, clock_mhz=100.0)
        assert dev.cycles_to_ms(100_000) == pytest.approx(1.0)

    def test_ms_to_cycles_roundtrip(self):
        dev = PYNQ_Z1
        assert dev.cycles_to_ms(dev.ms_to_cycles(7.5)) == pytest.approx(7.5)

    def test_cycles_to_ms_rejects_negative(self):
        with pytest.raises(ValueError):
            PYNQ_Z1.cycles_to_ms(-1)

    def test_ms_to_cycles_rejects_negative(self):
        with pytest.raises(ValueError):
            PYNQ_Z1.ms_to_cycles(-0.1)

    def test_bram_bytes(self):
        dev = FpgaDevice("x", 10, bram_kbytes=2, bandwidth_gbps=1.0,
                         clock_mhz=100.0)
        assert dev.bram_bytes == 2048

    def test_bytes_per_cycle(self):
        # 8 Gb/s = 1 GB/s; at 100 MHz that is 10 bytes/cycle.
        dev = FpgaDevice("x", 10, 10, bandwidth_gbps=8.0, clock_mhz=100.0)
        assert dev.bytes_per_cycle == pytest.approx(10.0)


class TestScaled:
    def test_scaled_halves_resources(self):
        half = XC7Z020.scaled(0.5)
        assert half.dsp_slices == 110
        assert half.clock_mhz == XC7Z020.clock_mhz

    def test_scaled_names(self):
        assert XC7Z020.scaled(2).name == "xc7z020x2"
        assert XC7Z020.scaled(2, name="big").name == "big"

    def test_scaled_never_drops_to_zero(self):
        tiny = XC7Z020.scaled(1e-9)
        assert tiny.dsp_slices >= 1
        assert tiny.bram_kbytes >= 1

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            XC7Z020.scaled(0)

    def test_compute_axis_scales_only_dsps(self):
        doubled = XC7Z020.scaled(compute=2)
        assert doubled.dsp_slices == 2 * XC7Z020.dsp_slices
        assert doubled.bram_kbytes == XC7Z020.bram_kbytes
        assert doubled.bandwidth_gbps == XC7Z020.bandwidth_gbps
        assert doubled.clock_mhz == XC7Z020.clock_mhz
        assert doubled.name == "xc7z020xc2"

    def test_memory_axis_scales_bram_and_bandwidth(self):
        halved = XC7Z020.scaled(memory=0.5)
        assert halved.dsp_slices == XC7Z020.dsp_slices
        assert halved.bram_kbytes == XC7Z020.bram_kbytes // 2
        assert halved.bandwidth_gbps == pytest.approx(
            XC7Z020.bandwidth_gbps / 2
        )
        assert halved.name == "xc7z020xm0.5"

    def test_axes_combine(self):
        both = XC7Z020.scaled(compute=2, memory=0.5)
        assert both.dsp_slices == 2 * XC7Z020.dsp_slices
        assert both.bram_kbytes == XC7Z020.bram_kbytes // 2
        assert both.name == "xc7z020xc2m0.5"

    def test_uniform_factor_and_axes_are_exclusive(self):
        with pytest.raises(ValueError):
            XC7Z020.scaled(2, compute=2)
        with pytest.raises(ValueError):
            XC7Z020.scaled()

    def test_dram_is_never_scaled(self):
        """Pinned: scaling must not touch the burst-level DRAM model."""
        from repro.fpga.device import XC7Z020_DDR_NARROW, XC7Z020_DDR_WIDE

        for device in (XC7Z020_DDR_WIDE, XC7Z020_DDR_NARROW):
            for variant in (device.scaled(2), device.scaled(compute=4),
                            device.scaled(memory=0.25)):
                assert variant.dram is device.dram

    def test_paper_devices_have_no_dram(self):
        """Pinned: the seed catalog stays on the flat memory model."""
        for device in (XC7A50T, XC7Z020, PYNQ_Z1, XCZU9EG):
            assert device.dram is None
