"""Tests for the tile-based task graph generator (FNAS-GG)."""

import pytest

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.fpga.tiling import LayerDesign, PipelineDesign, TilingVector
from repro.taskgraph.graph import TaskGraphGenerator
from repro.taskgraph.tiles import IfmTile, OfmTile


def manual_design(channel_plan, input_size=8, kernel=3,
                  tilings=None) -> PipelineDesign:
    """Build a PipelineDesign with hand-chosen tiling vectors.

    ``channel_plan`` is the per-layer output channel list;
    ``tilings`` the matching TilingVector list (defaults to 1x1x full
    spatial tiles).
    """
    arch = Architecture.from_choices(
        [kernel] * len(channel_plan), channel_plan, input_size=input_size,
        input_channels=channel_plan[0] if False else 1,
    )
    platform = Platform.single(PYNQ_Z1)
    layers = []
    for idx, spec in enumerate(arch.layers):
        if tilings is not None:
            tiling = tilings[idx]
        else:
            tiling = TilingVector(tm=1, tn=1, tr=spec.out_rows,
                                  tc=spec.out_cols)
        layers.append(LayerDesign(idx, spec, tiling))
    allocations = tuple(Platform.single(PYNQ_Z1).allocate(arch))
    return PipelineDesign(
        architecture=arch, platform=platform, layers=tuple(layers),
        allocations=allocations,
    )


class TestGeneration:
    def test_task_counts_match_design(self, designer, mnist_arch,
                                      pynq_platform):
        design = designer.design(mnist_arch, pynq_platform)
        graph = TaskGraphGenerator().generate(design)
        for layer_idx, tasks in enumerate(graph.tasks_by_layer):
            assert len(tasks) == design.layers[layer_idx].task_count
        assert graph.total_tasks == sum(
            d.task_count for d in design.layers
        )

    def test_every_ofm_tile_has_all_its_producers(self, designer, mnist_arch,
                                                  pynq_platform):
        design = designer.design(mnist_arch, pynq_platform)
        graph = TaskGraphGenerator().generate(design)
        for tile, producers in graph.ofm_producers.items():
            layer = design.layers[tile.layer]
            # One producer per IFM channel tile of that layer.
            assert len(producers) == layer.n_ifm_channel_tiles
            assert all(t.output_tile == tile for t in producers)

    def test_input_tiles_are_layer0(self, designer, mnist_arch,
                                    pynq_platform):
        design = designer.design(mnist_arch, pynq_platform)
        graph = TaskGraphGenerator().generate(design)
        tiles = graph.input_tiles()
        first = design.layers[0]
        assert len(tiles) == first.n_ifm_channel_tiles * first.n_rc_tiles
        assert all(t.layer == 0 for t in tiles)

    def test_validate_passes_for_generated_graphs(self, designer,
                                                  mnist_arch, pynq_platform):
        design = designer.design(mnist_arch, pynq_platform)
        graph = TaskGraphGenerator().generate(design)
        graph.validate()  # no raise

    def test_networkx_export_is_acyclic(self, designer, small_arch,
                                        pynq_platform):
        import networkx as nx
        design = designer.design(small_arch, pynq_platform)
        graph = TaskGraphGenerator().generate(design)
        g = graph.to_networkx()
        assert nx.is_directed_acyclic_graph(g)

    def test_rejects_unknown_rc_mapping(self):
        with pytest.raises(ValueError, match="rc_mapping"):
            TaskGraphGenerator(rc_mapping="diagonal")


class TestChannelDependencies:
    def test_paper_figure3_non_uniform_tiling(self):
        """Figure 3(d): Tm != Tn across a layer boundary.

        Upstream produces 6 channels in tiles of Tm=2 (3 OFM tiles);
        downstream consumes them in tiles of Tn=3 (2 IFM tiles).  IFM
        tile 0 covers channels 0-2 -> OFM tiles {0, 1}; IFM tile 1
        covers 3-5 -> {1, 2}.
        """
        design = manual_design(
            [6, 4],
            tilings=[
                TilingVector(tm=2, tn=1, tr=8, tc=8),
                TilingVector(tm=1, tn=3, tr=8, tc=8),
            ],
        )
        graph = TaskGraphGenerator().generate(design)
        deps0 = {o.channel_tile for o in graph.ifm_sources[IfmTile(1, 0, 0)]}
        deps1 = {o.channel_tile for o in graph.ifm_sources[IfmTile(1, 1, 0)]}
        assert deps0 == {0, 1}
        assert deps1 == {1, 2}

    def test_integer_ratio_matches_paper_formula(self):
        """Tn = 2 * Tm: IFM tile j depends on OFM tiles 2j and 2j+1."""
        design = manual_design(
            [8, 4],
            tilings=[
                TilingVector(tm=2, tn=1, tr=8, tc=8),
                TilingVector(tm=1, tn=4, tr=8, tc=8),
            ],
        )
        graph = TaskGraphGenerator().generate(design)
        deps0 = {o.channel_tile for o in graph.ifm_sources[IfmTile(1, 0, 0)]}
        deps1 = {o.channel_tile for o in graph.ifm_sources[IfmTile(1, 1, 0)]}
        assert deps0 == {0, 1}
        assert deps1 == {2, 3}

    def test_one_to_one_when_tilings_match(self):
        design = manual_design(
            [4, 4],
            tilings=[
                TilingVector(tm=2, tn=1, tr=8, tc=8),
                TilingVector(tm=2, tn=2, tr=8, tc=8),
            ],
        )
        graph = TaskGraphGenerator().generate(design)
        for j in range(2):
            deps = {o.channel_tile for o in graph.ifm_sources[IfmTile(1, j, 0)]}
            assert deps == {j}


class TestRcDependencies:
    def test_identity_mapping_when_grids_match(self):
        design = manual_design(
            [4, 4],
            tilings=[
                TilingVector(tm=1, tn=1, tr=4, tc=4),
                TilingVector(tm=1, tn=1, tr=4, tc=4),
            ],
        )
        graph = TaskGraphGenerator(rc_mapping="identity").generate(design)
        for m in range(design.layers[1].n_rc_tiles):
            sources = graph.ifm_sources[IfmTile(1, 0, m)]
            assert {o.rc_tile for o in sources} == {m}

    def test_identity_rejects_mismatched_grids(self):
        design = manual_design(
            [4, 4],
            tilings=[
                TilingVector(tm=1, tn=1, tr=8, tc=8),
                TilingVector(tm=1, tn=1, tr=4, tc=4),
            ],
        )
        with pytest.raises(ValueError, match="identity rc mapping"):
            TaskGraphGenerator(rc_mapping="identity").generate(design)

    def test_overlap_mapping_includes_halo_neighbours(self):
        """With 3x3 kernels a tile's input window spills into neighbours."""
        design = manual_design(
            [4, 4],
            tilings=[
                TilingVector(tm=1, tn=1, tr=4, tc=4),
                TilingVector(tm=1, tn=1, tr=4, tc=4),
            ],
        )
        graph = TaskGraphGenerator(rc_mapping="overlap").generate(design)
        # 8x8 map in 4x4 tiles -> 2x2 grid; tile 0's window (rows/cols
        # -1..4) overlaps all of row/col tiles 0 and neighbours 1, 2, 3
        # only through the 1-pixel halo.
        sources = {o.rc_tile for o in graph.ifm_sources[IfmTile(1, 0, 0)]}
        assert 0 in sources
        assert sources <= {0, 1, 2, 3}
        assert len(sources) >= 3

    def test_overlap_mapping_handles_stride(self):
        arch = Architecture.from_choices(
            [3, 3], [4, 4], input_size=8, input_channels=1,
            strides=[2, 1],
        )
        platform = Platform.single(PYNQ_Z1)
        layers = (
            LayerDesign(0, arch.layers[0], TilingVector(1, 1, 2, 2)),
            LayerDesign(1, arch.layers[1], TilingVector(1, 1, 2, 2)),
        )
        design = PipelineDesign(
            architecture=arch, platform=platform, layers=layers,
            allocations=tuple(platform.allocate(arch)),
        )
        graph = TaskGraphGenerator(rc_mapping="overlap").generate(design)
        graph.validate()

    def test_auto_picks_identity_for_matching_stride1_grids(self):
        design = manual_design(
            [4, 4],
            tilings=[
                TilingVector(tm=1, tn=1, tr=4, tc=4),
                TilingVector(tm=1, tn=1, tr=4, tc=4),
            ],
        )
        graph = TaskGraphGenerator(rc_mapping="auto").generate(design)
        sources = {o.rc_tile for o in graph.ifm_sources[IfmTile(1, 0, 1)]}
        assert sources == {1}
