"""Tests for tile/task identities."""

import pytest

from repro.taskgraph.tiles import (
    IfmTile,
    OfmTile,
    Task,
    channel_range,
    ranges_overlap,
)


class TestIdentities:
    def test_task_input_output_tiles(self):
        task = Task(layer=1, ifm_tile=2, ofm_tile=3, rc_tile=4)
        assert task.input_tile == IfmTile(1, 2, 4)
        assert task.output_tile == OfmTile(1, 3, 4)

    def test_str_forms(self):
        assert str(Task(0, 1, 2, 3)) == "v[0,1,2,3]"
        assert str(IfmTile(0, 1, 2)) == "T_ifm[0,1,2]"
        assert "0->1" in str(OfmTile(0, 1, 2))

    def test_tiles_are_hashable_and_ordered(self):
        tiles = {IfmTile(0, 0, 0), IfmTile(0, 0, 1), IfmTile(0, 0, 0)}
        assert len(tiles) == 2
        assert IfmTile(0, 0, 0) < IfmTile(0, 1, 0)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            IfmTile(-1, 0, 0)
        with pytest.raises(ValueError):
            OfmTile(0, -1, 0)
        with pytest.raises(ValueError):
            Task(0, 0, 0, -1)


class TestChannelRange:
    def test_full_tiles(self):
        assert channel_range(0, 4, 10) == (0, 4)
        assert channel_range(1, 4, 10) == (4, 8)

    def test_ragged_last_tile(self):
        assert channel_range(2, 4, 10) == (8, 10)

    def test_out_of_range_tile_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            channel_range(3, 4, 10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            channel_range(-1, 4, 10)


class TestRangesOverlap:
    @pytest.mark.parametrize("a,b,expected", [
        ((0, 4), (2, 6), True),
        ((0, 4), (4, 8), False),
        ((0, 10), (3, 5), True),
        ((5, 6), (0, 5), False),
    ])
    def test_cases(self, a, b, expected):
        assert ranges_overlap(a, b) is expected
        assert ranges_overlap(b, a) is expected
