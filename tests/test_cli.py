"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_flags(self):
        args = build_parser().parse_args(["table1", "--seed", "3",
                                          "--trials", "10"])
        assert args.command == "table1"
        assert args.seed == 3
        assert args.trials == 10

    def test_estimate_flags(self):
        args = build_parser().parse_args([
            "estimate", "5,7", "9,18", "--device", "xczu9eg",
            "--boards", "2", "--simulate",
        ])
        assert args.filter_sizes == "5,7"
        assert args.boards == 2
        assert args.simulate


class TestCommands:
    def test_table1_small(self, capsys):
        assert main(["table1", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "NAS" in out and "FNAS" in out

    def test_figure8(self, capsys):
        assert main(["figure8"]) == 0
        out = capsys.readouterr().out
        assert "mean improvement" in out

    def test_estimate(self, capsys):
        code = main(["estimate", "5,7,5,7", "9,18,18,36"])
        assert code == 0
        out = capsys.readouterr().out
        assert "latency:" in out
        assert "pynq-z1" in out

    def test_estimate_simulate(self, capsys):
        code = main(["estimate", "5,5", "9,9", "--simulate"])
        assert code == 0
        assert "simulate" in capsys.readouterr().out

    def test_estimate_multi_board(self, capsys):
        code = main(["estimate", "3,3", "16,16", "--device", "xczu9eg",
                     "--boards", "2", "--input-size", "32",
                     "--input-channels", "3"])
        assert code == 0
        assert "2 x xczu9eg" in capsys.readouterr().out

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            main(["estimate", "3", "4", "--device", "virtex"])
