"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_flags(self):
        args = build_parser().parse_args(["table1", "--seed", "3",
                                          "--trials", "10"])
        assert args.command == "table1"
        assert args.seed == 3
        assert args.trials == 10

    def test_estimate_flags(self):
        args = build_parser().parse_args([
            "estimate", "5,7", "9,18", "--device", "xczu9eg",
            "--boards", "2", "--simulate",
        ])
        assert args.filter_sizes == "5,7"
        assert args.boards == 2
        assert args.simulate


class TestCommands:
    def test_table1_small(self, capsys):
        assert main(["table1", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "NAS" in out and "FNAS" in out

    def test_figure8(self, capsys):
        assert main(["figure8"]) == 0
        out = capsys.readouterr().out
        assert "mean improvement" in out

    def test_estimate(self, capsys):
        code = main(["estimate", "5,7,5,7", "9,18,18,36"])
        assert code == 0
        out = capsys.readouterr().out
        assert "latency:" in out
        assert "pynq-z1" in out

    def test_estimate_simulate(self, capsys):
        code = main(["estimate", "5,5", "9,9", "--simulate"])
        assert code == 0
        assert "simulate" in capsys.readouterr().out

    def test_estimate_multi_board(self, capsys):
        code = main(["estimate", "3,3", "16,16", "--device", "xczu9eg",
                     "--boards", "2", "--input-size", "32",
                     "--input-channels", "3"])
        assert code == 0
        assert "2 x xczu9eg" in capsys.readouterr().out

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            main(["estimate", "3", "4", "--device", "virtex"])


class TestSweep:
    def test_sweep_flags(self):
        args = build_parser().parse_args([
            "sweep", "--datasets", "mnist,cifar10", "--seeds", "0,1,2",
            "--specs", "5,2.5", "--include-nas", "--shard-workers", "4",
        ])
        assert args.datasets == ["mnist", "cifar10"]
        assert args.seeds == [0, 1, 2]
        assert args.specs == [5.0, 2.5]
        assert args.include_nas
        assert args.shard_workers == 4

    def test_sweep_runs_campaign(self, capsys, tmp_path):
        code = main([
            "sweep", "--seeds", "0,1", "--specs", "5", "--trials", "5",
            "--checkpoint-dir", str(tmp_path / "ck"),
            "--output", str(tmp_path / "campaign.json"), "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign frontier" in out
        assert "mnist-pynq-z1-fnas5ms-s0" in out
        assert (tmp_path / "campaign.json").exists()
        assert list((tmp_path / "ck").glob("*.checkpoint.json"))

    def test_sweep_without_work_errors(self, capsys):
        assert main(["sweep", "--seeds", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_unknown_dataset_errors(self, capsys):
        assert main(["sweep", "--datasets", "svhn", "--specs", "5"]) == 2
        assert "svhn" in capsys.readouterr().err

    def test_sweep_empty_axis_errors_cleanly(self, capsys):
        """An empty grid axis must take the clean error path (exit 2),
        not surface as a raw Campaign traceback."""
        assert main(["sweep", "--datasets", "", "--specs", "5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_table1_campaign_mode(self, capsys, tmp_path):
        assert main(["table1", "--trials", "5",
                     "--campaign-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "NAS" in out and "FNAS" in out
        assert list(tmp_path.glob("*.checkpoint.json"))
