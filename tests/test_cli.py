"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_flags(self):
        args = build_parser().parse_args(["table1", "--seed", "3",
                                          "--trials", "10"])
        assert args.command == "table1"
        assert args.seed == 3
        assert args.trials == 10

    def test_estimate_flags(self):
        args = build_parser().parse_args([
            "estimate", "5,7", "9,18", "--device", "xczu9eg",
            "--boards", "2", "--simulate",
        ])
        assert args.filter_sizes == "5,7"
        assert args.boards == 2
        assert args.simulate


class TestCommands:
    def test_table1_small(self, capsys):
        assert main(["table1", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "NAS" in out and "FNAS" in out

    def test_figure8(self, capsys):
        assert main(["figure8"]) == 0
        out = capsys.readouterr().out
        assert "mean improvement" in out

    def test_estimate(self, capsys):
        code = main(["estimate", "5,7,5,7", "9,18,18,36"])
        assert code == 0
        out = capsys.readouterr().out
        assert "latency:" in out
        assert "pynq-z1" in out

    def test_estimate_simulate(self, capsys):
        code = main(["estimate", "5,5", "9,9", "--simulate"])
        assert code == 0
        assert "simulate" in capsys.readouterr().out

    def test_estimate_multi_board(self, capsys):
        code = main(["estimate", "3,3", "16,16", "--device", "xczu9eg",
                     "--boards", "2", "--input-size", "32",
                     "--input-channels", "3"])
        assert code == 0
        assert "2 x xczu9eg" in capsys.readouterr().out

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            main(["estimate", "3", "4", "--device", "virtex"])


class TestSweep:
    def test_sweep_flags(self):
        args = build_parser().parse_args([
            "sweep", "--datasets", "mnist,cifar10", "--seeds", "0,1,2",
            "--specs", "5,2.5", "--include-nas", "--shard-workers", "4",
        ])
        assert args.datasets == ["mnist", "cifar10"]
        assert args.seeds == [0, 1, 2]
        assert args.specs == [5.0, 2.5]
        assert args.include_nas
        assert args.shard_workers == 4

    def test_sweep_runs_campaign(self, capsys, tmp_path):
        code = main([
            "sweep", "--seeds", "0,1", "--specs", "5", "--trials", "5",
            "--checkpoint-dir", str(tmp_path / "ck"),
            "--output", str(tmp_path / "campaign.json"), "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign frontier" in out
        assert "mnist-pynq-z1-fnas5ms-s0" in out
        assert (tmp_path / "campaign.json").exists()
        assert list((tmp_path / "ck").glob("*.checkpoint.json"))

    def test_sweep_without_work_errors(self, capsys):
        assert main(["sweep", "--seeds", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_unknown_dataset_errors(self, capsys):
        assert main(["sweep", "--datasets", "svhn", "--specs", "5"]) == 2
        assert "svhn" in capsys.readouterr().err

    def test_sweep_empty_axis_errors_cleanly(self, capsys):
        """An empty grid axis must take the clean error path (exit 2),
        not surface as a raw Campaign traceback."""
        assert main(["sweep", "--datasets", "", "--specs", "5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_table1_campaign_mode(self, capsys, tmp_path):
        assert main(["table1", "--trials", "5",
                     "--checkpoint-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "NAS" in out and "FNAS" in out
        assert list(tmp_path.glob("*.checkpoint.json"))


class TestPlanFlow:
    """--dump-plan / `repro run` and the canonical flag set."""

    def test_dump_plan_then_run_reproduces_table1(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        assert main(["table1", "--trials", "4", "--seed", "2",
                     "--dump-plan", str(plan_path)]) == 0
        first = capsys.readouterr().out
        assert plan_path.exists()
        assert main(["run", str(plan_path)]) == 0
        second = capsys.readouterr().out
        assert first == second  # byte-identical stdout artifact

    def test_dump_plan_then_run_reproduces_sweep(self, capsys, tmp_path):
        import json

        plan_path = tmp_path / "plan.json"
        assert main([
            "sweep", "--seeds", "0", "--specs", "5", "--trials", "4",
            "--output", str(tmp_path / "a.json"),
            "--dump-plan", str(plan_path), "--quiet",
        ]) == 0
        capsys.readouterr()
        assert main(["run", str(plan_path), "--quiet",
                     "--output", str(tmp_path / "b.json")]) == 0
        a = json.loads((tmp_path / "a.json").read_text())
        b = json.loads((tmp_path / "b.json").read_text())
        a.pop("wall_seconds"), b.pop("wall_seconds")
        for doc in (a, b):
            for shard in doc["shards"]:
                shard["result"].pop("wall_seconds")
        assert a == b

    def test_dumped_plan_captures_flags(self, capsys, tmp_path):
        import json

        plan_path = tmp_path / "plan.json"
        assert main(["sweep", "--seeds", "0,1", "--specs", "5,2",
                     "--trials", "4", "--batch-size", "2",
                     "--eval-workers", "1", "--quiet",
                     "--dump-plan", str(plan_path)]) == 0
        plan = json.loads(plan_path.read_text())
        assert plan["workload"] == "sweep"
        assert plan["scenario"]["seeds"] == [0, 1]
        assert plan["scenario"]["specs_ms"] == [5.0, 2.0]
        assert plan["execution"]["batch_size"] == 2

    def test_run_invalid_plan_errors_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"workload": "figure99"}')
        assert main(["run", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_missing_plan_file_errors_cleanly(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_wrong_typed_field_errors_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"workload": "table1", "search": {"trials": "5"}}')
        assert main(["run", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_checkpoint_every_without_dir_errors_cleanly(self, capsys):
        assert main(["table1", "--trials", "3",
                     "--checkpoint-every", "2"]) == 2
        assert "checkpoint_dir" in capsys.readouterr().err

    def test_run_report_plan_without_output_reports_honestly(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        monkeypatch.chdir(tmp_path)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "workload": "report",
            "search": {"trials": 3},
        }))
        assert main(["run", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "nothing written" in out
        assert not (tmp_path / "reproduction_report.md").exists()

    def test_deprecated_workers_alias_warns_and_works(self, capsys):
        assert main(["table1", "--trials", "3", "--batch-size", "2",
                     "--workers", "1"]) == 0
        captured = capsys.readouterr()
        assert "--workers is deprecated" in captured.err
        assert "NAS" in captured.out

    def test_deprecated_campaign_dir_alias_warns_and_works(
        self, capsys, tmp_path
    ):
        assert main(["table1", "--trials", "3",
                     "--campaign-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "--campaign-dir is deprecated" in captured.err
        assert list(tmp_path.glob("*.checkpoint.json"))

    def test_canonical_flags_do_not_warn(self, capsys, tmp_path):
        assert main(["table1", "--trials", "3",
                     "--checkpoint-dir", str(tmp_path)]) == 0
        assert "deprecated" not in capsys.readouterr().err

    def test_alias_and_canonical_conflict_resolves_to_canonical(
        self, capsys, tmp_path
    ):
        canonical = tmp_path / "canonical"
        legacy = tmp_path / "legacy"
        assert main(["table1", "--trials", "3",
                     "--checkpoint-dir", str(canonical),
                     "--campaign-dir", str(legacy)]) == 0
        assert list(canonical.glob("*.checkpoint.json"))
        assert not legacy.exists()


class TestServiceVerbs:
    def test_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--workers", "3",
            "--store-dir", "s", "--checkpoint-dir", "c",
        ])
        assert args.command == "serve"
        assert (args.port, args.workers) == (0, 3)
        assert (args.store_dir, args.checkpoint_dir) == ("s", "c")

    def test_submit_flags(self):
        args = build_parser().parse_args([
            "submit", "plan.json", "--url", "http://h:1", "--priority", "2",
            "--no-wait",
        ])
        assert args.command == "submit"
        assert args.plan == "plan.json"
        assert args.url == "http://h:1"
        assert args.priority == 2
        assert args.no_wait

    def test_submit_missing_plan_errors_cleanly(self, capsys, tmp_path):
        assert main(["submit", str(tmp_path / "none.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_against_live_server(self, capsys, tmp_path):
        """The whole CLI loop: dump a plan, serve, submit, fetch bytes."""
        import json
        import threading

        from repro.service.http import make_server

        assert main([
            "table1", "--trials", "3", "--dump-plan",
            str(tmp_path / "plan.json"),
        ]) == 0
        server = make_server(port=0, workers=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            capsys.readouterr()  # drop the table1 output
            code = main([
                "submit", str(tmp_path / "plan.json"),
                "--url", f"http://{host}:{port}",
                "--output", str(tmp_path / "result.json"),
            ])
            out = capsys.readouterr().out
            assert code == 0
            assert "done" in out
            # table1 has no result codec, so no --output bytes land; a
            # cacheable plan does:
            (tmp_path / "search.json").write_text(json.dumps({
                "workload": "search",
                "search": {"trials": 3},
                "scenario": {"datasets": ["mnist"],
                             "devices": ["pynq-z1"], "specs_ms": [5.0]},
            }))
            code = main([
                "submit", str(tmp_path / "search.json"),
                "--url", f"http://{host}:{port}",
                "--output", str(tmp_path / "result.json"),
            ])
            assert code == 0
            payload = json.loads((tmp_path / "result.json").read_text())
            assert len(payload["trials"]) == 3
        finally:
            server.shutdown()
            server.server_close()
            server.service.shutdown(wait=True, cancel_running=True)
            thread.join(timeout=10)

    def test_submit_connection_refused_errors_cleanly(
        self, capsys, tmp_path
    ):
        assert main([
            "table1", "--trials", "3", "--dump-plan",
            str(tmp_path / "plan.json"),
        ]) == 0
        capsys.readouterr()
        # Nothing listens on this port: the client must fail cleanly.
        code = main(["submit", str(tmp_path / "plan.json"),
                     "--url", "http://127.0.0.1:9"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
