"""Tests for schedule visualisation helpers."""

import pytest

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.fpga.tiling import TilingDesigner
from repro.scheduling.fixed_sched import FixedScheduler
from repro.scheduling.fnas_sched import FnasScheduler
from repro.scheduling.simulator import PipelineSimulator
from repro.scheduling.visualize import gantt_chart, utilisation_table
from repro.taskgraph.graph import TaskGraphGenerator


@pytest.fixture(scope="module")
def result():
    arch = Architecture.from_choices([3, 3, 3], [16, 32, 16],
                                     input_size=14)
    design = TilingDesigner().design(arch, Platform.single(PYNQ_Z1))
    graph = TaskGraphGenerator().generate(design)
    return PipelineSimulator().run(FnasScheduler().schedule(graph))


@pytest.fixture(scope="module")
def stalled_result():
    # A mixed-width pipeline the fixed scheduler is known to stall on
    # (Figure 8 architecture #6).
    arch = Architecture.from_choices([3, 3, 3, 3], [64, 128, 64, 128],
                                     input_size=28)
    design = TilingDesigner().design(arch, Platform.single(PYNQ_Z1))
    graph = TaskGraphGenerator().generate(design)
    result = PipelineSimulator().run(FixedScheduler().schedule(graph))
    assert result.total_stall_cycles > 0
    return result


class TestGanttChart:
    def test_one_row_per_pe(self, result):
        chart = gantt_chart(result)
        assert len(chart.splitlines()) == len(result.pe_traces)

    def test_width_respected(self, result):
        for line in gantt_chart(result, width=40).splitlines():
            bars = line.split("|")[1]
            assert len(bars) == 40

    def test_first_pe_starts_at_left_edge(self, result):
        first = gantt_chart(result).splitlines()[0]
        bars = first.split("|")[1]
        assert bars[0] in "#="

    def test_stalled_pe_uses_sparse_fill(self, stalled_result):
        chart = gantt_chart(stalled_result)
        assert "=" in chart  # at least one PE has stalls inside its span

    def test_rejects_tiny_width(self, result):
        with pytest.raises(ValueError):
            gantt_chart(result, width=4)


class TestUtilisationTable:
    def test_contains_all_pes_and_totals(self, result):
        table = utilisation_table(result)
        for trace in result.pe_traces:
            assert f"PE{trace.layer}" in table
        assert f"makespan {result.makespan}" in table

    def test_reports_stalls(self, stalled_result):
        table = utilisation_table(stalled_result)
        assert str(stalled_result.total_stall_cycles) in table
