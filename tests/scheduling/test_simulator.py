"""Tests for the cycle-accurate pipeline simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.architecture import Architecture
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.fpga.tiling import TilingDesigner
from repro.scheduling.fixed_sched import FixedScheduler
from repro.scheduling.fnas_sched import FnasScheduler
from repro.scheduling.simulator import (
    CommunicationModel,
    PipelineSimulator,
    SimulationResult,
)
from repro.taskgraph.graph import TaskGraphGenerator


def build_graph(counts, size=16, channels=1, kernel=3,
                platform=None):
    arch = Architecture.from_choices(
        [kernel] * len(counts), list(counts), input_size=size,
        input_channels=channels,
    )
    platform = platform or Platform.single(PYNQ_Z1)
    design = TilingDesigner().design(arch, platform)
    return TaskGraphGenerator().generate(design)


class TestBasics:
    def test_single_layer_makespan_is_processing_time(self):
        graph = build_graph([8])
        schedule = FnasScheduler().schedule(graph)
        result = PipelineSimulator().run(schedule)
        assert result.makespan == graph.design.layers[0].processing_time
        assert result.total_stall_cycles == 0
        assert result.pe_traces[0].start_time == 0

    def test_makespan_at_least_any_processing_time(self):
        graph = build_graph([8, 16, 8])
        schedule = FnasScheduler().schedule(graph)
        result = PipelineSimulator().run(schedule)
        for design in graph.design.layers:
            assert result.makespan >= design.processing_time

    def test_busy_cycles_equal_task_work(self):
        graph = build_graph([8, 16])
        schedule = FnasScheduler().schedule(graph)
        result = PipelineSimulator().run(schedule)
        for layer_idx, trace in enumerate(result.pe_traces):
            design = graph.design.layers[layer_idx]
            assert trace.busy_cycles == design.processing_time

    def test_start_times_monotone_along_pipeline(self):
        graph = build_graph([8, 16, 8, 16])
        schedule = FnasScheduler().schedule(graph)
        result = PipelineSimulator().run(schedule)
        starts = result.start_times
        assert starts == sorted(starts)
        assert starts[0] == 0

    def test_record_trace_collects_executions(self):
        graph = build_graph([4, 4])
        schedule = FnasScheduler().schedule(graph)
        result = PipelineSimulator(record_trace=True).run(schedule)
        for layer_idx, trace in enumerate(result.pe_traces):
            assert len(trace.executed) == len(
                graph.tasks_by_layer[layer_idx])
            for task, start, end in trace.executed:
                assert end - start == graph.design.layers[
                    layer_idx].execution_time

    def test_trace_respects_dependencies(self):
        """No task may start before its input tile's producers finished."""
        graph = build_graph([4, 8, 4])
        schedule = FnasScheduler().schedule(graph)
        result = PipelineSimulator(record_trace=True).run(schedule)
        finish = {}
        for trace in result.pe_traces:
            for task, start, end in trace.executed:
                finish[task] = end
        ofm_done = {}
        for tile, producers in graph.ofm_producers.items():
            ofm_done[tile] = max(finish[t] for t in producers)
        for trace in result.pe_traces:
            for task, start, end in trace.executed:
                sources = graph.ifm_sources.get(task.input_tile)
                if sources:
                    ready = max(ofm_done[o] for o in sources)
                    assert start >= ready


class TestSchedulerComparison:
    def test_fnas_never_slower_than_fixed(self):
        """The headline Figure 8 property on a mixed-width pipeline."""
        sim = PipelineSimulator()
        for counts in ([8, 16, 8], [16, 8, 16, 8], [4, 16, 4, 16]):
            graph = build_graph(counts)
            fnas = sim.run(FnasScheduler().schedule(graph))
            fixed = sim.run(FixedScheduler().schedule(graph))
            assert fnas.makespan <= fixed.makespan

    def test_fnas_alternation_is_stall_free_on_paper_configs(self):
        graph = build_graph([8, 16, 8, 16])
        result = PipelineSimulator().run(FnasScheduler().schedule(graph))
        assert result.total_stall_cycles == 0

    def test_uniform_reuse_can_stall(self):
        """The paper's observation behind Step 3's alternation."""
        graph = build_graph([16, 32, 16, 32], size=12)
        sim = PipelineSimulator()
        uniform = sim.run(
            FnasScheduler(uniform="ofm").schedule(graph))
        alternating = sim.run(FnasScheduler().schedule(graph))
        assert alternating.makespan <= uniform.makespan

    @settings(deadline=None, max_examples=15)
    @given(
        counts=st.lists(st.sampled_from([4, 8, 16, 32]), min_size=2,
                        max_size=4),
        size=st.sampled_from([8, 12, 16]),
    )
    def test_property_adaptive_fnas_beats_or_ties_fixed(self, counts, size):
        """The adaptive variant dominates fixed scheduling everywhere.

        (The paper's fixed alternation wins on its evaluated set but is
        not universally optimal -- one of its candidates, uniform-OFM
        with the ready queue, shares fixed scheduling's task order and
        can only start tasks earlier.)
        """
        from repro.scheduling.fnas_sched import AdaptiveFnasScheduler
        graph = build_graph(counts, size=size)
        sim = PipelineSimulator()
        fnas = sim.run(AdaptiveFnasScheduler().schedule(graph))
        fixed = sim.run(FixedScheduler().schedule(graph))
        assert fnas.makespan <= fixed.makespan


class TestCommunicationModel:
    def test_ideal_memory_is_lower_bound(self):
        graph = build_graph([8, 16])
        schedule = FnasScheduler().schedule(graph)
        ideal = PipelineSimulator().run(schedule)
        limited = PipelineSimulator(
            comm_model=CommunicationModel(bytes_per_cycle=0.5)
        ).run(schedule)
        assert limited.makespan >= ideal.makespan

    def test_generous_bandwidth_matches_ideal(self):
        graph = build_graph([8, 16])
        schedule = FnasScheduler().schedule(graph)
        ideal = PipelineSimulator().run(schedule)
        generous = PipelineSimulator(
            comm_model=CommunicationModel(bytes_per_cycle=1e9)
        ).run(schedule)
        assert generous.makespan == ideal.makespan

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            CommunicationModel(bytes_per_cycle=0.0)

    def test_reuse_reduces_traffic_duration(self):
        """Consecutive same-output tasks skip the OFM reload."""
        graph = build_graph([8, 16])
        schedule = FnasScheduler().schedule(graph)
        model = CommunicationModel(bytes_per_cycle=0.25)
        order = schedule.layer_orders[0]
        if len(order) >= 2 and (
            order[0].output_tile == order[1].output_tile
        ):
            first = model.duration(schedule, order[0], None)
            second = model.duration(schedule, order[1], order[0])
            assert second <= first


class TestResultAccounting:
    def test_stalls_are_gaps(self):
        graph = build_graph([8, 16, 8])
        result = PipelineSimulator().run(FixedScheduler().schedule(graph))
        for trace in result.pe_traces:
            span = trace.finish_time - trace.start_time
            assert trace.stall_cycles == span - trace.busy_cycles
            assert trace.stall_cycles >= 0

    def test_simulation_result_fields(self):
        graph = build_graph([4])
        result = PipelineSimulator().run(FnasScheduler().schedule(graph))
        assert isinstance(result, SimulationResult)
        assert result.schedule_name == "fnas-sched"
        assert len(result.pe_traces) == 1
