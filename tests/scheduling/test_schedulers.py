"""Tests for FNAS-Sched, the fixed baseline, and schedule invariants."""

import pytest

from repro.fpga.tiling import TilingDesigner
from repro.scheduling.base import (
    IFM_REUSE,
    IN_ORDER,
    OFM_REUSE,
    READY_QUEUE,
    Schedule,
)
from repro.scheduling.fixed_sched import FixedScheduler
from repro.scheduling.fnas_sched import (
    FnasScheduler,
    alternating_strategies,
    order_tasks,
)
from repro.taskgraph.graph import TaskGraphGenerator


@pytest.fixture
def graph(designer, mnist_arch, pynq_platform):
    design = designer.design(mnist_arch, pynq_platform)
    return TaskGraphGenerator().generate(design)


class TestOrderTasks:
    def test_ofm_reuse_groups_output_tiles(self, graph):
        tasks = graph.tasks_by_layer[1]
        ordered = order_tasks(tasks, OFM_REUSE)
        # Consecutive tasks with the same (rc, ofm) appear as one block:
        # once we leave an output tile we never come back.
        seen = set()
        current = None
        for task in ordered:
            key = (task.rc_tile, task.ofm_tile)
            if key != current:
                assert key not in seen
                seen.add(key)
                current = key

    def test_ifm_reuse_groups_input_tiles(self, graph):
        tasks = graph.tasks_by_layer[1]
        ordered = order_tasks(tasks, IFM_REUSE)
        seen = set()
        current = None
        for task in ordered:
            key = (task.rc_tile, task.ifm_tile)
            if key != current:
                assert key not in seen
                seen.add(key)
                current = key

    def test_rc_outermost_in_both_orders(self, graph):
        """Step 1: channel tiles advance before row/col tiles."""
        for reuse in (OFM_REUSE, IFM_REUSE):
            ordered = order_tasks(graph.tasks_by_layer[1], reuse)
            rc_sequence = [t.rc_tile for t in ordered]
            assert rc_sequence == sorted(rc_sequence)

    def test_rejects_unknown_strategy(self, graph):
        with pytest.raises(ValueError):
            order_tasks(graph.tasks_by_layer[0], "both")

    def test_is_permutation(self, graph):
        tasks = graph.tasks_by_layer[2]
        assert sorted(order_tasks(tasks, OFM_REUSE)) == sorted(tasks)


class TestAlternatingStrategies:
    def test_starts_with_ofm_by_default(self):
        assert alternating_strategies(4) == [
            OFM_REUSE, IFM_REUSE, OFM_REUSE, IFM_REUSE
        ]

    def test_can_start_with_ifm(self):
        assert alternating_strategies(3, first=IFM_REUSE) == [
            IFM_REUSE, OFM_REUSE, IFM_REUSE
        ]

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            alternating_strategies(3, first="none")


class TestFnasScheduler:
    def test_schedule_shape(self, graph):
        schedule = FnasScheduler().schedule(graph)
        assert schedule.policy == READY_QUEUE
        assert schedule.name == "fnas-sched"
        assert len(schedule.layer_orders) == graph.n_layers
        assert schedule.reuse_strategies == alternating_strategies(
            graph.n_layers)

    def test_uniform_variant(self, graph):
        schedule = FnasScheduler(uniform=IFM_REUSE).schedule(graph)
        assert set(schedule.reuse_strategies) == {IFM_REUSE}
        assert "uniform" in schedule.name

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            FnasScheduler(first_reuse="x")
        with pytest.raises(ValueError):
            FnasScheduler(uniform="y")

    def test_reuse_runs_match_tile_counts(self, graph):
        """Run length equals the swept-over tile count of the strategy."""
        schedule = FnasScheduler().schedule(graph)
        for layer in range(graph.n_layers):
            design = graph.design.layers[layer]
            if schedule.reuse_strategies[layer] == OFM_REUSE:
                expected = design.n_ifm_channel_tiles
            else:
                expected = design.n_ofm_channel_tiles
            assert schedule.reuse_runs(layer) == pytest.approx(expected)


class TestFixedScheduler:
    def test_schedule_shape(self, graph):
        schedule = FixedScheduler().schedule(graph)
        assert schedule.policy == IN_ORDER
        assert set(schedule.reuse_strategies) == {OFM_REUSE}

    def test_same_loop_order_every_layer(self, graph):
        schedule = FixedScheduler().schedule(graph)
        for order in schedule.layer_orders:
            keys = [(t.rc_tile, t.ofm_tile, t.ifm_tile) for t in order]
            assert keys == sorted(keys)


class TestScheduleValidation:
    def test_rejects_wrong_layer_count(self, graph):
        with pytest.raises(ValueError, match="layer orders"):
            Schedule(
                graph=graph,
                layer_orders=graph.tasks_by_layer[:-1],
                reuse_strategies=[OFM_REUSE] * graph.n_layers,
                policy=IN_ORDER,
                name="bad",
            )

    def test_rejects_non_permutation(self, graph):
        orders = [list(t) for t in graph.tasks_by_layer]
        orders[0] = orders[0][:-1] + [orders[0][0]]  # duplicate
        with pytest.raises(ValueError, match="permutation"):
            Schedule(
                graph=graph,
                layer_orders=orders,
                reuse_strategies=[OFM_REUSE] * graph.n_layers,
                policy=IN_ORDER,
                name="bad",
            )

    def test_rejects_unknown_policy(self, graph):
        with pytest.raises(ValueError, match="policy"):
            Schedule(
                graph=graph,
                layer_orders=[list(t) for t in graph.tasks_by_layer],
                reuse_strategies=[OFM_REUSE] * graph.n_layers,
                policy="whenever",
                name="bad",
            )

    def test_rejects_unknown_reuse(self, graph):
        with pytest.raises(ValueError, match="reuse"):
            Schedule(
                graph=graph,
                layer_orders=[list(t) for t in graph.tasks_by_layer],
                reuse_strategies=["sometimes"] * graph.n_layers,
                policy=IN_ORDER,
                name="bad",
            )
