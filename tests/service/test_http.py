"""The stdlib HTTP endpoint and its client, over a live loopback server."""

import threading

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import make_server


def search_plan(seed=0, trials=4):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


@pytest.fixture()
def live_service(tmp_path):
    """A served SearchService on an ephemeral loopback port."""
    server = make_server(port=0, workers=2, store_dir=str(tmp_path / "store"),
                         checkpoint_dir=str(tmp_path / "ckpt"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        server.service.shutdown(wait=True, cancel_running=True)
        thread.join(timeout=10)


class TestHTTPEndpoint:
    def test_health(self, live_service):
        health = live_service.health()
        assert health["status"] == "ok"
        assert health["store_entries"] == 0

    def test_submit_wait_result_roundtrip(self, live_service):
        info = live_service.submit(search_plan())
        assert info["state"] in ("queued", "running", "done")
        final = live_service.wait(info["job_id"], timeout=120)
        assert final["state"] == "done"
        blob = live_service.result_bytes(info["job_id"])
        assert b'"trials"' in blob
        assert len(live_service.jobs()) == 1

    def test_duplicate_submission_served_byte_identically(self, live_service):
        plan = search_plan(seed=3)
        first = live_service.submit(plan)
        live_service.wait(first["job_id"], timeout=120)
        original = live_service.result_bytes(first["job_id"])
        again = live_service.submit(plan)
        assert again["job_id"] == first["job_id"]
        assert live_service.result_bytes(again["job_id"]) == original

    def test_events_cursor(self, live_service):
        info = live_service.submit(search_plan(seed=5))
        live_service.wait(info["job_id"], timeout=120)
        page = live_service.events(info["job_id"])
        tags = [e["event"] for e in page["events"]]
        assert tags[0] == "job-queued"
        assert tags[-1] == "job-completed"
        assert "search-started" in tags and "search-finished" in tags
        # Cursor: a second read from `next` returns nothing new.
        rest = live_service.events(info["job_id"], since=page["next"])
        assert rest["events"] == []

    def test_cancel_then_resubmit_resumes(self, live_service):
        plan = search_plan(seed=7, trials=60)
        info = live_service.submit(plan)
        live_service.cancel(info["job_id"])
        final = live_service.wait(info["job_id"], timeout=120)
        assert final["state"] == "cancelled"
        with pytest.raises(ServiceError) as err:
            live_service.result_bytes(info["job_id"])
        assert err.value.status == 409
        resumed = live_service.submit(plan)
        assert resumed["job_id"] == info["job_id"]
        assert live_service.wait(resumed["job_id"],
                                 timeout=300)["state"] == "done"

    def test_bad_plan_is_a_400(self, live_service):
        with pytest.raises(ServiceError) as err:
            live_service.submit({"workload": "search",
                                 "search": {"seeed": 1}})
        assert err.value.status == 400
        assert "seeed" in err.value.body

    def test_unknown_job_is_a_404(self, live_service):
        with pytest.raises(ServiceError) as err:
            live_service.status("j-missing")
        assert err.value.status == 404
