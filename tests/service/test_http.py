"""The stdlib HTTP endpoint and its client, over a live loopback server."""

import json
import socket
import threading

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import make_server, run_server


def search_plan(seed=0, trials=4):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


@pytest.fixture()
def live_service(tmp_path):
    """A served SearchService on an ephemeral loopback port."""
    server = make_server(port=0, workers=2, store_dir=str(tmp_path / "store"),
                         checkpoint_dir=str(tmp_path / "ckpt"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        server.service.shutdown(wait=True, cancel_running=True)
        thread.join(timeout=10)


class TestHTTPEndpoint:
    def test_health(self, live_service):
        health = live_service.health()
        assert health["status"] == "ok"
        assert health["store_entries"] == 0

    def test_submit_wait_result_roundtrip(self, live_service):
        info = live_service.submit(search_plan())
        assert info["state"] in ("queued", "running", "done")
        final = live_service.wait(info["job_id"], timeout=120)
        assert final["state"] == "done"
        blob = live_service.result_bytes(info["job_id"])
        assert b'"trials"' in blob
        assert len(live_service.jobs()) == 1

    def test_duplicate_submission_served_byte_identically(self, live_service):
        plan = search_plan(seed=3)
        first = live_service.submit(plan)
        live_service.wait(first["job_id"], timeout=120)
        original = live_service.result_bytes(first["job_id"])
        again = live_service.submit(plan)
        assert again["job_id"] == first["job_id"]
        assert live_service.result_bytes(again["job_id"]) == original

    def test_events_cursor(self, live_service):
        info = live_service.submit(search_plan(seed=5))
        live_service.wait(info["job_id"], timeout=120)
        page = live_service.events(info["job_id"])
        tags = [e["event"] for e in page["events"]]
        assert tags[0] == "job-queued"
        assert tags[-1] == "job-completed"
        assert "search-started" in tags and "search-finished" in tags
        # Cursor: a second read from `next` returns nothing new.
        rest = live_service.events(info["job_id"], since=page["next"])
        assert rest["events"] == []

    def test_cancel_then_resubmit_resumes(self, live_service):
        plan = search_plan(seed=7, trials=60)
        info = live_service.submit(plan)
        live_service.cancel(info["job_id"])
        final = live_service.wait(info["job_id"], timeout=120)
        assert final["state"] == "cancelled"
        with pytest.raises(ServiceError) as err:
            live_service.result_bytes(info["job_id"])
        assert err.value.status == 409
        resumed = live_service.submit(plan)
        assert resumed["job_id"] == info["job_id"]
        assert live_service.wait(resumed["job_id"],
                                 timeout=300)["state"] == "done"

    def test_bad_plan_is_a_400(self, live_service):
        with pytest.raises(ServiceError) as err:
            live_service.submit({"workload": "search",
                                 "search": {"seeed": 1}})
        assert err.value.status == 400
        assert "seeed" in err.value.body

    def test_unknown_job_is_a_404(self, live_service):
        with pytest.raises(ServiceError) as err:
            live_service.status("j-missing")
        assert err.value.status == 404

    def test_job_info_comes_from_the_public_locked_accessor(
        self, live_service
    ):
        info = live_service.submit(search_plan(seed=11))
        final = live_service.wait(info["job_id"], timeout=120)
        # The /jobs shape is JobHandle.info(): all fields, one snapshot.
        assert set(final) >= {"job_id", "state", "plan_hash", "workload",
                              "priority", "cached", "runs", "events",
                              "error"}
        assert final["state"] == "done" and final["error"] is None


class TestShutdownFlush:
    """Pin the /shutdown fix: the reply is complete before the server dies.

    The old handler triggered the serve-loop shutdown while the
    response could still be unflushed on a daemon handler thread, so a
    client racing process teardown could read a torn (or empty) body.
    The response must now arrive complete -- headers, declared
    Content-Length, parseable JSON -- on a raw socket that reads
    *after* the server has begun shutting down.
    """

    def test_shutdown_reply_is_complete_on_the_wire(self):
        server = make_server(port=0, workers=1)
        thread = threading.Thread(target=run_server, args=(server,))
        thread.start()
        host, port = server.server_address[:2]
        try:
            with socket.create_connection((host, port), timeout=30) as sock:
                sock.sendall(
                    b"POST /shutdown HTTP/1.1\r\n"
                    b"Host: test\r\nContent-Length: 0\r\n\r\n"
                )
                # Wait for the serve loop to be told to stop, *then*
                # read -- the reply must already be flushed to the
                # socket by that point.
                assert server._shutdown_requested.wait(timeout=30)
                sock.settimeout(30)
                raw = b""
                while b"\r\n\r\n" not in raw:
                    chunk = sock.recv(4096)
                    assert chunk, f"connection closed mid-headers: {raw!r}"
                    raw += chunk
                headers, _, body = raw.partition(b"\r\n\r\n")
                assert b"200" in headers.splitlines()[0]
                length = int(
                    [line.split(b":", 1)[1] for line in headers.splitlines()
                     if line.lower().startswith(b"content-length")][0]
                )
                while len(body) < length:
                    chunk = sock.recv(4096)
                    assert chunk, "connection closed mid-body"
                    body += chunk
                assert json.loads(body) == {"status": "shutting down"}
        finally:
            thread.join(timeout=60)
            assert not thread.is_alive(), "server failed to shut down"
