"""Full-stack federation: HTTP coordinator + worker agents + SIGKILL.

The chaos matrix here runs real ``repro agent`` subprocesses armed via
``REPRO_CRASH_POINTS`` and SIGKILLs them at the interesting instants
(right after claiming, mid event stream, just before completing).  In
every case the contract is the same: the lease expires, the job
re-queues, someone else finishes it, and ``/result`` is byte-identical
to an uninterrupted run.
"""

import os
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service import SearchService
from repro.service.agent import WorkerAgent
from repro.service.client import ServiceClient
from repro.service.faults import CRASH_POINTS_ENV
from repro.service.http import make_server

SRC = str(Path(__file__).resolve().parents[2] / "src")


def search_plan(seed=0, trials=40):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def reference_bytes(plan):
    """The canonical result bytes of an uninterrupted local run."""
    with SearchService(workers=1) as service:
        return service.submit(plan).result_bytes(timeout=300)


def agent_env(crash_points=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(CRASH_POINTS_ENV, None)
    if crash_points:
        env[CRASH_POINTS_ENV] = crash_points
    return env


def spawn_agent(url, agent_id, crash_points=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "agent", "--coordinator", url,
         "--agent-id", agent_id, "--name", agent_id,
         "--poll-seconds", "0.1", "--max-jobs", "1"],
        env=agent_env(crash_points),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_for(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@contextmanager
def live_coordinator(tmp_path, lease_seconds):
    server = make_server(port=0, workers=1,
                         store_dir=str(tmp_path / "store"),
                         checkpoint_dir=str(tmp_path / "ckpt"),
                         lease_seconds=lease_seconds)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server.service, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        server.service.shutdown(wait=True, cancel_running=True)
        thread.join(timeout=10)


@pytest.fixture()
def federation(tmp_path):
    """A live coordinator with a short lease term; yields (service, url)."""
    with live_coordinator(tmp_path, lease_seconds=1.0) as pair:
        yield pair


class TestFederationHappyPath:
    def test_agent_run_matches_local_run_byte_for_byte(self, federation):
        service, url = federation
        plan = search_plan(seed=31)
        expected = reference_bytes(plan)
        client = ServiceClient(url)
        agent = WorkerAgent(url, name="worker-a", max_jobs=1,
                            poll_seconds=0.05)
        agent.register()
        info = client.submit(plan)
        assert agent.run() == 1
        final = client.wait(info["job_id"], timeout=120)
        assert final["state"] == "done"
        assert client.result_bytes(info["job_id"]) == expected
        events = client.events(info["job_id"])["events"]
        tags = [e["event"] for e in events]
        assert "job-leased" in tags
        assert "search-started" in tags or "trial-started" in tags or (
            len(events) > 4)  # execution events streamed back
        assert client.agents() == []  # graceful leave

    def test_health_counts_registered_agents(self, federation):
        _, url = federation
        client = ServiceClient(url)
        assert client.health()["agents"] == 0
        terms = client.register_agent(name="counted")
        assert client.health()["agents"] == 1
        client.agent_leave(terms["agent_id"])
        assert client.health()["agents"] == 0


class TestSIGKILLFailoverMatrix:
    """Agents armed to die at each interesting instant; work survives."""

    @pytest.mark.parametrize("crash_points", [
        "agent.claimed=1",    # dies before the child even starts
        "agent.event=3",      # dies mid event stream, child orphaned
        "agent.complete=1",   # dies with the work done but unreported
    ])
    def test_armed_agent_dies_and_job_finishes_locally(
            self, federation, crash_points):
        service, url = federation
        plan = search_plan(seed=37)
        expected = reference_bytes(plan)
        client = ServiceClient(url)
        agent = spawn_agent(url, "doomed", crash_points)
        try:
            assert wait_for(lambda: client.health()["agents"] == 1), (
                "agent never registered")
            info = client.submit(plan)
            # The agent claims, then SIGKILLs itself at its crash point.
            assert agent.wait(timeout=120) == -9
            # Lease expires, agent is presumed dead, the local worker
            # resumes from the checkpoint and finishes.
            final = client.wait(info["job_id"], timeout=120)
            assert final["state"] == "done"
            assert final["agent"] is None
            tags = [e["event"]
                    for e in client.events(info["job_id"])["events"]]
            assert "job-leased" in tags
            assert "lease-expired" in tags
            assert "agent-lost" not in tags  # agent events are bus-only
            assert client.result_bytes(info["job_id"]) == expected
            assert client.health()["agents"] == 0
        finally:
            if agent.poll() is None:
                agent.kill()
                agent.wait(timeout=30)

    def test_job_resumes_on_a_second_agent(self, tmp_path):
        # A longer lease than the `federation` fixture's: the survivor
        # must finish its interpreter startup and register before the
        # doomed agent's lease expires, or the local worker (correctly,
        # per zero-agent fallback) would take the re-queued job itself.
        plan = search_plan(seed=41, trials=60)
        expected = reference_bytes(plan)
        doomed = survivor = None
        with live_coordinator(tmp_path, lease_seconds=8.0) as (_, url):
            client = ServiceClient(url)
            doomed = spawn_agent(url, "doomed", "agent.claimed=1")
            try:
                assert wait_for(lambda: client.health()["agents"] >= 1)
                info = client.submit(plan)
                assert doomed.wait(timeout=120) == -9
                survivor = spawn_agent(url, "survivor")
                assert wait_for(
                    lambda: any(a["agent_id"] == "survivor"
                                for a in client.agents()))
                final = client.wait(info["job_id"], timeout=120)
                assert final["state"] == "done"
                leases = [e for e in client.events(info["job_id"])["events"]
                          if e["event"] == "job-leased"]
                assert [lease["agent"] for lease in leases] == [
                    "doomed", "survivor"]
                assert client.result_bytes(info["job_id"]) == expected
                assert survivor.wait(timeout=120) == 0  # max-jobs exit
            finally:
                for proc in (doomed, survivor):
                    if proc is not None and proc.poll() is None:
                        proc.kill()
                        proc.wait(timeout=30)
