"""The crash-consistent job journal: appends, replay, recovery.

The property under test is the restart contract: a service killed with
work in flight must, on restart over the same ``store_dir``, re-queue
every job whose last journaled state is non-terminal -- and those jobs
must *resume* from their per-hash checkpoints to a result
byte-identical to an uninterrupted run's.
"""

import json
import time

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service import JobJournal, SearchService
from repro.service.journal import PendingJob
from repro.service.service import JOURNAL_FILENAME


def search_plan(seed=0, trials=5):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def wait_for(predicate, timeout=60.0, interval=0.02):
    """Poll ``predicate`` until true (returning True) or timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestJournalFile:
    def test_appends_are_replayable_in_order(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.record("queued", "abc", "j-abc", priority=2,
                           plan_doc={"workload": "search"})
            journal.record("running", "abc", "j-abc")
            journal.record("done", "abc", "j-abc")
        entries = JobJournal.replay(path)
        assert [e["op"] for e in entries] == ["queued", "running", "done"]
        assert entries[0]["plan"] == {"workload": "search"}
        assert entries[0]["priority"] == 2

    def test_record_after_close_is_a_noop(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.record("queued", "abc", "j-abc", priority=0, plan_doc={})
        journal.close()
        journal.record("done", "abc", "j-abc")
        assert [e["op"] for e in JobJournal.replay(path)] == ["queued"]

    def test_queued_requires_a_plan(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        with pytest.raises(ValueError, match="must carry the plan"):
            journal.record("queued", "abc", "j-abc")

    def test_unknown_op_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        with pytest.raises(ValueError, match="unknown journal op"):
            journal.record("paused", "abc", "j-abc")

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.record("queued", "abc", "j-abc", priority=0,
                           plan_doc={})
        with open(path, "a") as f:
            f.write('{"schema": 1, "op": "done", "hash": "ab')  # torn write
        entries = JobJournal.replay(path)
        assert [e["op"] for e in entries] == ["queued"]

    def test_appending_after_a_torn_tail_truncates_it_first(self, tmp_path):
        """Regression: appending must not glue onto a torn trailing line.

        A crash can tear the last line; a restarted service then
        appends recovery entries.  Writing straight after the partial
        text would produce *mid-file* corruption that every later
        replay refuses -- bricking restarts over that store dir.  The
        torn (never-acknowledged) fragment is dropped instead.
        """
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.record("queued", "abc", "j-abc", priority=0,
                           plan_doc={})
        with open(path, "a") as f:
            f.write('{"schema": 1, "op": "done", "hash": "ab')  # torn write
        with JobJournal(path) as journal:  # the restarted process
            journal.record("queued", "def", "j-def", priority=1,
                           plan_doc={})
        entries = JobJournal.replay(path)  # must not raise
        assert [(e["op"], e["hash"]) for e in entries] == [
            ("queued", "abc"), ("queued", "def"),
        ]

    def test_torn_tail_with_no_complete_line_truncates_to_empty(
        self, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b'{"schema": 1, "op":')  # torn very first entry
        with JobJournal(path) as journal:
            journal.record("queued", "abc", "j-abc", priority=0,
                           plan_doc={})
        assert [e["hash"] for e in JobJournal.replay(path)] == ["abc"]

    def test_corruption_followed_by_valid_lines_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            'not json\n'
            '{"schema": 1, "op": "done", "hash": "abc", "job": "j-abc"}\n'
        )
        with pytest.raises(ValueError, match="trailing"):
            JobJournal.replay(path)

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"schema": 99, "op": "done", "hash": "a", '
                        '"job": "j-a"}\n')
        with pytest.raises(ValueError, match="schema"):
            JobJournal.replay(path)


class TestPendingReduction:
    def entry(self, op, digest, **extra):
        return {"schema": 1, "op": op, "hash": digest,
                "job": f"j-{digest}"} | extra

    def test_terminal_jobs_are_not_pending(self):
        entries = [
            self.entry("queued", "a", plan={"w": 1}, priority=0),
            self.entry("running", "a"),
            self.entry("done", "a"),
            self.entry("queued", "b", plan={"w": 2}, priority=1),
            self.entry("running", "b"),
        ]
        pending = JobJournal.pending_jobs(entries)
        assert [p.plan_hash for p in pending] == ["b"]
        assert pending[0] == PendingJob(
            plan_doc={"w": 2}, plan_hash="b", priority=1,
            last_state="running",
        )

    def test_cancel_resubmit_cycle_keeps_the_latest_submission(self):
        entries = [
            self.entry("queued", "a", plan={"w": 1}, priority=0),
            self.entry("running", "a"),
            self.entry("cancelled", "a"),
            self.entry("queued", "a", plan={"w": 1}, priority=7),
        ]
        pending = JobJournal.pending_jobs(entries)
        assert len(pending) == 1
        assert pending[0].priority == 7
        assert pending[0].last_state == "queued"

    def test_cancelled_without_resubmit_is_not_recovered(self):
        entries = [
            self.entry("queued", "a", plan={"w": 1}, priority=0),
            self.entry("cancelled", "a"),
        ]
        assert JobJournal.pending_jobs(entries) == []


class TestTruncationProperty:
    """Replay over a prefix of the journal cut at *every* byte offset.

    A SIGKILL can stop the file at any byte.  Whatever the cut, replay
    must never raise, and a job whose terminal entry landed fully
    before the cut must never be resurrected by the pending reduction.
    """

    def write_history(self, path):
        """A journal exercising every op, including the lease cycle."""
        plan = search_plan().to_dict()
        with JobJournal(path) as journal:
            # a: leased, expired, re-queued, finished locally.
            journal.record("queued", "aaa", "j-aaa", priority=0,
                           plan_doc=plan)
            journal.record("running", "aaa", "j-aaa")
            journal.record("leased", "aaa", "j-aaa", agent="agent-x",
                           lease_seconds=5.0)
            journal.record("lease-expired", "aaa", "j-aaa")
            journal.record("queued", "aaa", "j-aaa", priority=0,
                           plan_doc=plan)
            journal.record("running", "aaa", "j-aaa")
            journal.record("done", "aaa", "j-aaa")
            # b: leased and failed remotely.
            journal.record("queued", "bbb", "j-bbb", priority=1,
                           plan_doc=plan)
            journal.record("leased", "bbb", "j-bbb", agent="agent-y",
                           lease_seconds=2.0)
            journal.record("failed", "bbb", "j-bbb")
            # c: cancelled, then resubmitted (legitimately pending).
            journal.record("queued", "ccc", "j-ccc", priority=0,
                           plan_doc=plan)
            journal.record("running", "ccc", "j-ccc")
            journal.record("cancelled", "ccc", "j-ccc")
            journal.record("queued", "ccc", "j-ccc", priority=3,
                           plan_doc=plan)
        return path.read_bytes()

    def terminal_offsets(self, raw):
        """hash -> byte offset just past its *last* terminal entry."""
        offsets = {}
        position = 0
        for line in raw.splitlines(keepends=True):
            position += len(line)
            entry = json.loads(line)
            if entry["op"] in ("done", "failed", "cancelled"):
                offsets[entry["hash"]] = position
            elif entry["op"] == "queued":
                offsets.pop(entry["hash"], None)  # resubmitted
        return offsets

    def test_every_byte_offset_replays_cleanly(self, tmp_path):
        full = self.write_history(tmp_path / "full.jsonl")
        terminal_at = self.terminal_offsets(full)
        cut_path = tmp_path / "cut.jsonl"
        for offset in range(len(full) + 1):
            cut_path.write_bytes(full[:offset])
            entries = JobJournal.replay(cut_path)  # must never raise
            pending = JobJournal.pending_jobs(entries)
            states = {p.plan_hash: p.last_state for p in pending}
            for digest, end in terminal_at.items():
                if offset >= end:
                    assert digest not in states, (
                        f"offset {offset}: terminal job {digest} "
                        f"resurrected as {states[digest]!r}")
            for item in pending:
                assert item.plan_doc is not None
                assert item.last_state in (
                    "queued", "running", "leased", "lease-expired")
        # Sanity: the *un*cut journal recovers exactly the open job.
        final = JobJournal.pending_jobs(JobJournal.replay(cut_path))
        assert [(p.plan_hash, p.priority) for p in final] == [("ccc", 3)]

    def test_truncated_lease_entry_still_recovers_the_job(self, tmp_path):
        """Cutting mid-'leased' leaves the prior 'running' state live."""
        full = self.write_history(tmp_path / "full.jsonl")
        lines = full.splitlines(keepends=True)
        leased_line = next(ln for ln in lines if b'"leased"' in ln)
        upto = full.index(leased_line) + len(leased_line) // 2
        cut_path = tmp_path / "cut.jsonl"
        cut_path.write_bytes(full[:upto])
        pending = JobJournal.pending_jobs(JobJournal.replay(cut_path))
        assert [(p.plan_hash, p.last_state) for p in pending] == [
            ("aaa", "running")]
        assert pending[0].agent is None  # the torn lease never happened


class TestServiceRecovery:
    def test_journal_lands_next_to_a_persistent_store(self, tmp_path):
        with SearchService(workers=1, store_dir=str(tmp_path)) as service:
            service.submit(search_plan(trials=3)).result(timeout=120)
        entries = JobJournal.replay(tmp_path / JOURNAL_FILENAME)
        assert [e["op"] for e in entries] == ["queued", "running", "done"]
        # The queued entry carries the canonical plan document.
        assert RunPlan.from_dict(entries[0]["plan"]) == search_plan(trials=3)

    def test_in_memory_service_has_no_journal(self):
        with SearchService(workers=1) as service:
            assert service._journal is None

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_killed_service_recovers_and_resumes_byte_identically(
        self, tmp_path, backend
    ):
        """The headline crash contract, simulated in-process.

        'Crash' = the journal stops receiving entries (as if the
        process died) while a checkpointed job is running; the work is
        then stopped.  A fresh service over the same directories must
        re-queue the job, resume it from its per-hash checkpoint, and
        produce result bytes identical to an uninterrupted run.
        """
        store_dir = tmp_path / "store"
        ckpt_dir = tmp_path / "ckpt"
        plan = search_plan(seed=2, trials=400)
        crashed = SearchService(
            workers=1, store_dir=str(store_dir),
            checkpoint_dir=str(ckpt_dir), backend=backend,
        )
        handle = crashed.submit(plan)
        job_dir = ckpt_dir / handle.plan_hash
        assert wait_for(lambda: handle.state == "running"
                        and list(job_dir.glob("*.checkpoint.json")))
        # Simulate the SIGKILL: no further journal writes land, and the
        # in-flight work is torn down without a terminal journal entry.
        crashed._journal.close()
        handle.cancel()
        handle.wait(timeout=120)
        snapshot = json.loads(
            next(job_dir.glob("*.checkpoint.json")).read_text()
        )
        assert 0 < snapshot["next_index"] < 400

        restarted = SearchService(
            workers=1, store_dir=str(store_dir),
            checkpoint_dir=str(ckpt_dir), backend=backend,
        )
        try:
            assert restarted.recovered_jobs == [handle.job_id]
            assert restarted.recovery_errors == []
            recovered = restarted.job(handle.job_id)
            queued = [e for e in recovered.events()
                      if type(e).__name__ == "JobQueued"]
            assert "recovered from journal" in queued[-1].message
            recovered_bytes = recovered.result_bytes(timeout=600)
        finally:
            restarted.shutdown()

        with SearchService(workers=1) as reference:
            reference_bytes = reference.submit(plan).result_bytes(timeout=600)
        assert recovered_bytes == reference_bytes

    def test_recovery_skips_unparseable_entries_without_failing(
        self, tmp_path
    ):
        journal_path = tmp_path / JOURNAL_FILENAME
        good = search_plan(seed=1, trials=3)
        bad_doc = good.to_dict()
        bad_doc["search"]["evaluator"] = "no-such-evaluator"
        with JobJournal(journal_path) as journal:
            journal.record("queued", "deadbeef", "j-deadbeef", priority=0,
                           plan_doc=bad_doc)
            journal.record("queued", "feedface", "j-feedface", priority=0,
                           plan_doc=good.to_dict())
        with SearchService(workers=1, store_dir=str(tmp_path)) as service:
            assert len(service.recovered_jobs) == 1
            assert len(service.recovery_errors) == 1
            assert "no-such-evaluator" in service.recovery_errors[0]
            handle = service.job(service.recovered_jobs[0])
            assert len(handle.result(timeout=120).trials) == 3

    def test_recover_false_leaves_the_queue_forgotten(self, tmp_path):
        with JobJournal(tmp_path / JOURNAL_FILENAME) as journal:
            journal.record("queued", "cafe", "j-cafe", priority=0,
                           plan_doc=search_plan().to_dict())
        with SearchService(workers=1, store_dir=str(tmp_path),
                           recover=False) as service:
            assert service.recovered_jobs == []
            assert service.jobs() == []
