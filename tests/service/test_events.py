"""The typed event vocabulary and the bus that carries it."""

import asyncio
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.events import (
    AgentJoined,
    AgentLost,
    CacheHit,
    Event,
    EventBus,
    JobCompleted,
    JobLeased,
    JobQueued,
    LeaseExpired,
    PoolFallback,
    SearchFinished,
    SearchStarted,
    ShardRequeued,
    event_from_dict,
    event_from_json,
    event_to_json,
    legacy_event,
)

#: Arbitrary wire-safe text: ids and messages cross JSON and pipes, so
#: throw full unicode (newlines, quotes, surrogate-free) at the codec.
wire_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40)

#: Lease terms as they appear in the wild: positive finite floats.
lease_terms = st.floats(min_value=0.001, max_value=1e6,
                        allow_nan=False, allow_infinity=False)


class TestEventTypes:
    def test_kinds_match_the_string_era(self):
        assert SearchStarted("x").kind == "start"
        assert SearchFinished("x").kind == "finish"
        assert ShardRequeued("x").kind == "requeue"
        assert PoolFallback("").kind == "fallback"

    def test_shard_id_aliases_scope(self):
        event = SearchStarted("mnist-pynq-z1-nas-s0", "running in-process")
        assert event.shard_id == event.scope == "mnist-pynq-z1-nas-s0"

    def test_events_are_frozen(self):
        with pytest.raises(Exception):
            SearchStarted("a", "b").scope = "c"

    @pytest.mark.parametrize("event", [
        Event("s", "m"),
        SearchStarted("shard-1", "running"),
        ShardRequeued("shard-2", "worker died"),
        JobQueued("j-abc", "queued at priority 0", plan_hash="ff" * 32),
        CacheHit("j-abc", "stored", plan_hash="00" * 32),
        JobCompleted("j-abc", "completed", plan_hash="11" * 32),
    ])
    def test_to_dict_round_trips_losslessly(self, event):
        restored = event_from_dict(event.to_dict())
        assert restored == event
        assert type(restored) is type(event)

    def test_to_dict_carries_kind_and_tag(self):
        data = JobQueued("j-1", "m", plan_hash="aa").to_dict()
        assert data["event"] == "job-queued"
        assert data["kind"] == "queued"
        assert data["plan_hash"] == "aa"

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            event_from_dict({"event": "nope", "scope": "", "message": ""})

    def test_legacy_kind_mapping(self):
        assert type(legacy_event("start", "s", "m")) is SearchStarted
        assert type(legacy_event("requeue", "s", "m")) is ShardRequeued
        assert type(legacy_event("custom", "s", "m")) is Event

    @pytest.mark.parametrize("event", [
        SearchStarted("shard-1", "running"),
        JobQueued("j-abc", "queued at priority 0", plan_hash="ff" * 32),
    ])
    def test_json_line_codec_round_trips(self, event):
        """The pipe/journal wire form: one line, lossless, typed."""
        line = event_to_json(event)
        assert "\n" not in line
        restored = event_from_json(line)
        assert restored == event
        assert type(restored) is type(event)

    def test_json_line_codec_escapes_embedded_newlines(self):
        event = SearchStarted("shard-1", "line one\nline two")
        line = event_to_json(event)
        assert "\n" not in line  # framing survives hostile messages
        assert event_from_json(line).message == "line one\nline two"


class TestFederationEventRoundTrips:
    """Property: every lease/agent event survives both wire codecs.

    These four types are exactly what crosses the agent protocol and
    the journal, so a lossy field here silently corrupts recovery.
    """

    @staticmethod
    def both_codecs(event):
        via_dict = event_from_dict(event.to_dict())
        via_json = event_from_json(event_to_json(event))
        return via_dict, via_json

    @given(scope=wire_text, message=wire_text, name=wire_text)
    def test_agent_joined_round_trips(self, scope, message, name):
        event = AgentJoined(scope, message, name=name)
        for restored in self.both_codecs(event):
            assert restored == event
            assert type(restored) is AgentJoined

    @given(scope=wire_text, message=wire_text, name=wire_text)
    def test_agent_lost_round_trips(self, scope, message, name):
        event = AgentLost(scope, message, name=name)
        for restored in self.both_codecs(event):
            assert restored == event
            assert type(restored) is AgentLost

    @given(scope=wire_text, message=wire_text, agent=wire_text,
           plan_hash=wire_text, lease_seconds=lease_terms)
    def test_job_leased_round_trips(self, scope, message, agent,
                                    plan_hash, lease_seconds):
        event = JobLeased(scope, message, plan_hash=plan_hash,
                          agent=agent, lease_seconds=lease_seconds)
        for restored in self.both_codecs(event):
            assert restored == event
            assert type(restored) is JobLeased
            assert restored.lease_seconds == lease_seconds

    @given(scope=wire_text, message=wire_text, agent=wire_text,
           plan_hash=wire_text)
    def test_lease_expired_round_trips(self, scope, message, agent,
                                       plan_hash):
        event = LeaseExpired(scope, message, plan_hash=plan_hash,
                             agent=agent)
        for restored in self.both_codecs(event):
            assert restored == event
            assert type(restored) is LeaseExpired

    @given(scope=wire_text, message=wire_text, agent=wire_text,
           lease_seconds=lease_terms)
    def test_json_lines_stay_single_line(self, scope, message, agent,
                                         lease_seconds):
        event = JobLeased(scope, message, agent=agent,
                          lease_seconds=lease_seconds)
        assert "\n" not in event_to_json(event)


class TestEventBus:
    def test_subscribe_receives_in_publish_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        events = [SearchStarted(f"s{i}") for i in range(5)]
        for event in events:
            bus.publish(event)
        assert seen == events

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        callback = bus.subscribe(seen.append)
        bus.unsubscribe(callback)
        bus.publish(Event("a", "b"))
        assert seen == []

    def test_recording_bus_keeps_history(self):
        bus = EventBus(record=True)
        bus.publish(Event("a"))
        bus.publish(Event("b"))
        assert [e.scope for e in bus.history] == ["a", "b"]

    def test_sync_stream_iteration(self):
        bus = EventBus()
        stream = bus.stream()
        for i in range(3):
            bus.publish(Event(f"s{i}"))
        stream.close()
        assert [e.scope for e in stream] == ["s0", "s1", "s2"]

    def test_async_iteration(self):
        bus = EventBus()
        stream = bus.stream()

        def produce():
            for i in range(4):
                bus.publish(Event(f"s{i}"))
            stream.close()

        async def consume():
            threading.Thread(target=produce).start()
            return [event.scope async for event in stream]

        assert asyncio.run(consume()) == ["s0", "s1", "s2", "s3"]

    def test_concurrent_publishers_deliver_everything(self):
        bus = EventBus(record=True)
        barrier = threading.Barrier(4)

        def publish_many(tag):
            barrier.wait()
            for i in range(50):
                bus.publish(Event(f"{tag}-{i}"))

        threads = [threading.Thread(target=publish_many, args=(t,))
                   for t in "abcd"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(bus.history) == 200
        # Per-publisher order is preserved even though publishers race.
        for tag in "abcd":
            mine = [e.scope for e in bus.history
                    if e.scope.startswith(f"{tag}-")]
            assert mine == [f"{tag}-{i}" for i in range(50)]
