"""Compat pin: the PR-7-era client session against the async gateway.

``_LegacyClient`` below freezes the wire usage of the pre-gateway
:class:`ServiceClient`: one-shot urllib requests, no API-key header,
no keep-alive, ``GET /jobs/<id>/events?since=N`` with no ``wait``
parameter, and a submit -> poll -> result loop.  The test drives that
exact session against the asyncio gateway and pins the observable
transcript -- response schemas, event tags, and the stored result
bytes -- to what a sync-server run of the same plan produces.

If a gateway change breaks an old deployed client, this file is where
it fails.
"""

import json
import threading
import time
import urllib.request

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service.gateway import GatewayRunner
from repro.service.http import make_server


def search_plan(seed=0, trials=4):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


class _LegacyClient:
    """The PR-7 wire surface, frozen.  Do not modernise this class."""

    def __init__(self, base_url):
        self.base_url = base_url.rstrip("/")

    def _request(self, path, payload=None):
        url = f"{self.base_url}{path}"
        if payload is None:
            request = urllib.request.Request(url)
        else:
            request = urllib.request.Request(
                url, data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as resp:
            return json.loads(resp.read())

    def _request_bytes(self, path):
        with urllib.request.urlopen(f"{self.base_url}{path}",
                                    timeout=30) as resp:
            return resp.read()

    def submit(self, plan, priority=0):
        return self._request("/jobs", {"plan": plan.to_dict(),
                                       "priority": priority})

    def status(self, job_id):
        return self._request(f"/jobs/{job_id}")

    def events(self, job_id, since=0):
        return self._request(f"/jobs/{job_id}/events?since={since}")

    def result_bytes(self, job_id):
        return self._request_bytes(f"/jobs/{job_id}/result")

    def run_session(self, plan):
        """Submit -> poll -> drain events -> fetch result, PR-7 style."""
        submitted = self.submit(plan)
        job_id = submitted["job_id"]
        deadline = time.monotonic() + 120
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                break
            assert time.monotonic() < deadline, "job never finished"
            time.sleep(0.05)
        cursor, tags = 0, []
        while True:
            page = self.events(job_id, since=cursor)
            tags.extend(e["event"] for e in page["events"])
            if page["next"] == cursor:
                break
            cursor = page["next"]
        return {
            "submit_keys": sorted(submitted),
            "final_state": status["state"],
            "plan_hash": status["plan_hash"],
            "event_tags": tags,
            "result": self.result_bytes(job_id),
        }


def test_legacy_session_is_identical_against_gateway_and_sync_server(
        tmp_path):
    plan = search_plan(seed=77)

    server = make_server(port=0, workers=1,
                         store_dir=str(tmp_path / "sync-store"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        sync_run = _LegacyClient(f"http://{host}:{port}").run_session(plan)
    finally:
        server.shutdown()
        server.server_close()
        server.service.shutdown(wait=True, cancel_running=True)
        thread.join(timeout=10)

    with GatewayRunner(workers=1,
                       store_dir=str(tmp_path / "gw-store")) as runner:
        gateway_run = _LegacyClient(runner.base_url).run_session(plan)

    # The submit response schema, terminal state, plan hash, event-tag
    # sequence, and the stored result BYTES are all pinned.
    assert gateway_run["submit_keys"] == sync_run["submit_keys"]
    assert gateway_run["final_state"] == sync_run["final_state"] == "done"
    assert gateway_run["plan_hash"] == sync_run["plan_hash"]
    assert gateway_run["event_tags"] == sync_run["event_tags"]
    assert gateway_run["result"] == sync_run["result"]


def test_legacy_session_schema_snapshot(tmp_path):
    """The exact field set a PR-7 client sees, pinned literally."""
    with GatewayRunner(workers=1,
                       store_dir=str(tmp_path / "store")) as runner:
        run = _LegacyClient(runner.base_url).run_session(search_plan(seed=78))
    assert run["submit_keys"] == ["agent", "cached", "deduped", "error",
                                  "events", "job_id", "plan_hash",
                                  "priority", "runs", "state", "tenant",
                                  "workload"]
    assert run["event_tags"][0] == "job-queued"
    assert run["event_tags"][-1] == "job-completed"
    assert run["result"].endswith(b"\n") or run["result"]
