"""Canonical plan hashing and the content-addressed result store."""

import json

import pytest

from repro.plans import (
    RunPlan,
    ScenarioPlan,
    SearchPlan,
    canonical_plan_json,
    plan_hash,
)
from repro.service.store import (
    ResultStore,
    decode_result,
    encode_result,
    is_cacheable,
)


def search_plan(seed=0, trials=4):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


class TestPlanHash:
    def test_equal_plans_hash_equal(self):
        assert plan_hash(search_plan()) == plan_hash(search_plan())

    def test_any_field_change_changes_the_hash(self):
        base = plan_hash(search_plan())
        assert plan_hash(search_plan(seed=1)) != base
        assert plan_hash(search_plan(trials=5)) != base

    def test_hash_survives_json_round_trip(self):
        plan = search_plan()
        replayed = RunPlan.from_json(plan.to_json())
        assert plan_hash(replayed) == plan_hash(plan)

    def test_canonical_json_is_key_order_independent(self):
        plan = search_plan()
        shuffled = json.loads(plan.to_json())
        shuffled = dict(reversed(list(shuffled.items())))
        assert (canonical_plan_json(RunPlan.from_dict(shuffled))
                == canonical_plan_json(plan))


class TestCodecs:
    def test_cacheable_workloads(self):
        assert is_cacheable(search_plan())
        assert not is_cacheable(RunPlan(workload="figure8"))

    def test_output_bearing_plans_are_not_cacheable(self):
        """A plan promising an artifact write must always execute."""
        import dataclasses

        with_output = dataclasses.replace(search_plan(), output="out.json")
        assert not is_cacheable(with_output)

    def test_search_codec_round_trips_ledgers(self):
        from repro.api import run_plan
        from repro.core.serialization import search_result_to_dict

        plan = search_plan()
        result = run_plan(plan)
        payload = encode_result(plan, result)
        restored = decode_result(plan, json.loads(json.dumps(payload)))
        assert (search_result_to_dict(restored)
                == search_result_to_dict(result))

    def test_uncacheable_workload_rejected(self):
        with pytest.raises(ValueError, match="no result codec"):
            encode_result(RunPlan(workload="figure8"), object())


class TestResultStore:
    def test_miss_then_hit(self):
        store = ResultStore()
        assert store.get_bytes("k") is None
        blob = store.put("k", {"b": 2, "a": 1})
        assert store.get_bytes("k") == blob == b'{"a":1,"b":2}'
        assert "k" in store and len(store) == 1

    def test_put_is_idempotent_first_write_wins(self):
        store = ResultStore()
        first = store.put("k", {"a": 1})
        second = store.put("k", {"a": 999})
        assert first == second == store.get_bytes("k")

    def test_persistence_across_instances(self, tmp_path):
        blob = ResultStore(tmp_path).put("deadbeef", {"x": [1, 2]})
        reopened = ResultStore(tmp_path)
        assert reopened.get_bytes("deadbeef") == blob
        assert reopened.get_payload("deadbeef") == {"x": [1, 2]}
        assert len(reopened) == 1


class TestTornStore:
    """A persisted entry truncated at *any* byte offset is a miss.

    The disk-corruption wall (mirrors the journal's torn-tail
    property): reads never raise and never serve torn bytes, and the
    next ``put`` atomically repairs the damaged file.
    """

    PAYLOAD = {"shard_id": "mnist-pynq-z1-fnas5ms-s0",
               "result": {"trials": [1, 2, 3], "wall_seconds": 0.5},
               "resumed_from": None}

    def test_every_truncation_offset_is_a_silent_miss(self, tmp_path):
        blob = ResultStore(tmp_path).put("k", self.PAYLOAD)
        path = tmp_path / "k.json"
        assert path.read_bytes() == blob
        for offset in range(len(blob)):
            path.write_bytes(blob[:offset])
            fresh = ResultStore(tmp_path)  # no memory cache to mask disk
            assert fresh.get_bytes("k") is None, f"offset {offset}"
            assert fresh.get_payload("k") is None
            assert "k" not in fresh
        path.write_bytes(blob)  # untruncated bytes still serve
        assert ResultStore(tmp_path).get_bytes("k") == blob

    def test_put_atomically_repairs_a_torn_entry(self, tmp_path):
        blob = ResultStore(tmp_path).put("k", self.PAYLOAD)
        (tmp_path / "k.json").write_bytes(blob[: len(blob) // 2])
        repaired = ResultStore(tmp_path)
        assert repaired.get_bytes("k") is None
        # First-write-wins does not apply to invalid entries: the put
        # goes through and overwrites via the atomic rename.
        assert repaired.put("k", self.PAYLOAD) == blob
        assert (tmp_path / "k.json").read_bytes() == blob
        assert ResultStore(tmp_path).get_bytes("k") == blob

    def test_non_object_json_is_a_miss(self, tmp_path):
        (tmp_path / "k.json").write_bytes(b'[1,2,3]')
        assert ResultStore(tmp_path).get_bytes("k") is None

    def test_unreadable_file_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get_bytes("missing") is None

    def test_memory_cache_is_not_poisoned_by_disk_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        blob = store.put("k", self.PAYLOAD)
        # Corrupt the file under a live store: the already-validated
        # in-memory bytes still serve (the hit contract), but a fresh
        # instance sees the miss.
        (tmp_path / "k.json").write_bytes(b"{tor")
        assert store.get_bytes("k") == blob
        assert ResultStore(tmp_path).get_bytes("k") is None
