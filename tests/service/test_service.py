"""SearchService behavior: queueing, dedup, cancellation, concurrency.

Covers the redesign's acceptance criteria directly:

* resubmitting an identical plan returns the stored result without
  re-executing (asserted via an evaluator-factory call counter);
* cancellation checkpoints, and a resubmit *resumes* instead of
  restarting;
* four concurrent jobs on a two-worker pool all complete with intact,
  correctly ordered event streams.
"""

import json
import threading

import pytest

from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.events import (
    CacheHit,
    JobCancelled,
    JobCompleted,
    JobQueued,
    JobStarted,
    SearchFinished,
    SearchStarted,
)
from repro.plans import ExecutionPolicy, RunPlan, ScenarioPlan, SearchPlan
from repro.registry import EVALUATORS
from repro.service import (
    JobCancelledError,
    ResultStore,
    SearchService,
    UnknownJobError,
)

#: Module-level counters the "counting" evaluator ticks (evaluator
#: builds and child evaluations), keyed so tests can reset them.
COUNTS = {"builds": 0, "evaluations": 0}


class _CountingEvaluator(SurrogateAccuracyEvaluator):
    """Surrogate evaluator that ticks COUNTS on every evaluation."""

    def __init__(self, space, config, seed):
        COUNTS["builds"] += 1
        super().__init__(space, config, seed=seed)

    def evaluate(self, architecture):
        COUNTS["evaluations"] += 1
        return super().evaluate(architecture)


@pytest.fixture()
def counting_evaluator():
    """Register the counting evaluator for a test and reset counters."""
    COUNTS["builds"] = COUNTS["evaluations"] = 0
    EVALUATORS.register("counting", _CountingEvaluator, replace=True)
    yield "counting"
    EVALUATORS.unregister("counting")


def search_plan(seed=0, trials=5, evaluator="surrogate", **execution):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials, evaluator=evaluator),
        execution=ExecutionPolicy(**execution),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


class TestSubmitAndDedup:
    def test_submit_runs_and_returns_result(self):
        with SearchService(workers=1) as service:
            handle = service.submit(search_plan())
            result = handle.result(timeout=120)
            assert len(result.trials) == 5
            assert handle.state == "done"

    def test_duplicate_submit_does_not_rerun(self, counting_evaluator):
        plan = search_plan(evaluator=counting_evaluator)
        with SearchService(workers=1) as service:
            first = service.submit(plan)
            first.result(timeout=120)
            runs_after_first = COUNTS["evaluations"]
            # FNAS prunes spec violators before training, so <= trials,
            # but something must actually have run.
            assert 0 < runs_after_first <= 5
            second = service.submit(plan)
            second.result(timeout=120)
            assert second.job_id == first.job_id  # coalesced, not re-run
            assert COUNTS["evaluations"] == runs_after_first

    def test_store_hit_across_service_instances_is_byte_identical(
        self, counting_evaluator, tmp_path
    ):
        plan = search_plan(evaluator=counting_evaluator)
        store = ResultStore(tmp_path)
        with SearchService(workers=1, store=store) as service:
            original = service.submit(plan).result_bytes(timeout=120)
        evaluations = COUNTS["evaluations"]
        with SearchService(workers=1, store=ResultStore(tmp_path)) as fresh:
            handle = fresh.submit(plan)
            assert handle.cached
            assert handle.state == "done"
            replayed = handle.result_bytes()
            kinds = [type(e) for e in handle.events()]
            assert kinds == [CacheHit, JobCompleted]
        assert replayed == original  # byte-identical, straight from disk
        assert COUNTS["evaluations"] == evaluations  # nothing re-ran

    def test_different_plans_do_not_dedup(self):
        with SearchService(workers=1) as service:
            a = service.submit(search_plan(seed=0))
            b = service.submit(search_plan(seed=1))
            assert a.job_id != b.job_id
            assert a.result(timeout=120).trials != b.result(timeout=120).trials

    def test_unknown_job_raises_listing_error(self):
        with SearchService(workers=1) as service:
            with pytest.raises(UnknownJobError, match="unknown job"):
                service.job("nope")


class TestCancellation:
    def test_cancel_queued_job(self):
        # One worker busy with a real job keeps the victim queued.
        with SearchService(workers=1) as service:
            service.submit(search_plan(seed=0, trials=20))
            victim = service.submit(search_plan(seed=1, trials=20))
            state = victim.cancel()
            assert state == "cancelled"
            with pytest.raises(JobCancelledError):
                victim.result(timeout=10)

    def test_cancel_running_job_checkpoints_and_resubmit_resumes(
        self, counting_evaluator, tmp_path
    ):
        """The headline property: cancel -> snapshot -> resume."""
        trials = 30
        plan = search_plan(evaluator=counting_evaluator, trials=trials,
                           checkpoint_dir=str(tmp_path / "ckpt"),
                           checkpoint_every=2)
        release = threading.Event()
        with SearchService(workers=1) as service:
            seen = threading.Event()

            def trip(event):
                if isinstance(event, JobStarted):
                    seen.set()
            service.bus.subscribe(trip)
            handle = service.submit(plan)
            assert seen.wait(timeout=60)
            # Let a few trials land, then cancel mid-run.
            while COUNTS["evaluations"] < 4 and handle.state == "running":
                release.wait(0.01)
            handle.cancel()
            assert handle.wait(timeout=120) == "cancelled"
            done_before = COUNTS["evaluations"]
            assert 0 < done_before < trials
            snapshots = list((tmp_path / "ckpt").glob("*.checkpoint.json"))
            assert snapshots, "cancellation must leave a snapshot behind"
            snapshot = json.loads(snapshots[0].read_text())
            assert snapshot["next_index"] >= done_before - 1
            # Resubmit: same job re-queues and resumes from the snapshot.
            resumed = service.submit(plan)
            assert resumed.job_id == handle.job_id
            result = resumed.result(timeout=300)
            assert len(result.trials) == trials
            # A restart would re-evaluate everything; a resume only the
            # remaining trials (modulo the cancelled batch's remainder).
            assert COUNTS["evaluations"] < trials + done_before

    def test_cancel_reaches_running_paired_workloads(self, counting_evaluator):
        """table1/figure/paired jobs also stop at trial boundaries."""
        plan = RunPlan(
            workload="table1",
            search=SearchPlan(trials=500, evaluator=counting_evaluator),
        )
        with SearchService(workers=1) as service:
            handle = service.submit(plan)
            import time

            deadline = time.monotonic() + 60
            while COUNTS["evaluations"] < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            handle.cancel()
            assert handle.wait(timeout=120) == "cancelled"
            assert COUNTS["evaluations"] < 4 * 500  # stopped early
            with pytest.raises(JobCancelledError):
                handle.result(timeout=10)

    def test_service_checkpoint_root_covers_plans_without_one(
        self, tmp_path
    ):
        plan = search_plan(trials=8)
        with SearchService(workers=1,
                           checkpoint_dir=str(tmp_path)) as service:
            handle = service.submit(plan)
            handle.result(timeout=120)
        per_job = list(tmp_path.glob("*/*.checkpoint.json"))
        assert per_job, "service root must collect per-hash job snapshots"
        assert per_job[0].parent.name == handle.plan_hash


class TestConcurrencyAndOrdering:
    def test_four_jobs_on_two_workers_all_complete_in_order(self):
        plans = [search_plan(seed=s, trials=4) for s in range(4)]
        with SearchService(workers=2) as service:
            handles = [service.submit(p) for p in plans]
            results = [h.result(timeout=300) for h in handles]
        assert all(len(r.trials) == 4 for r in results)
        for handle in handles:
            events = handle.events()
            kinds = [type(e) for e in events]
            # Intact lifecycle, correctly ordered, nothing interleaved
            # from other jobs (job logs are per-job).
            assert kinds[0] is JobQueued
            assert kinds.index(JobStarted) < kinds.index(JobCompleted)
            starts = [i for i, k in enumerate(kinds) if k is SearchStarted]
            finishes = [i for i, k in enumerate(kinds)
                        if k is SearchFinished]
            assert len(starts) == len(finishes) == 1
            assert starts[0] < finishes[0]
            assert all(e.scope == handle.job_id or not e.scope.startswith("j-")
                       for e in events)

    def test_priority_orders_the_queue(self):
        order = []
        with SearchService(workers=1) as service:
            blocker = service.submit(search_plan(seed=9, trials=10))
            low = service.submit(search_plan(seed=1, trials=3), priority=0)
            high = service.submit(search_plan(seed=2, trials=3), priority=5)

            def record(event):
                if isinstance(event, JobStarted):
                    order.append(event.scope)
            service.bus.subscribe(record)
            low.result(timeout=300)
            high.result(timeout=300)
            blocker.result(timeout=300)
        assert order.index(high.job_id) < order.index(low.job_id)


class TestLifecycleAndErrors:
    def test_failed_job_reraises_original_exception(self):
        # An impossible budget: ScenarioPlan rejects non-positive specs
        # at validation, so force a failure through a bogus evaluator.
        def broken(space, config, seed):
            raise RuntimeError("evaluator exploded")

        EVALUATORS.register("broken", broken, replace=True)
        try:
            with SearchService(workers=1) as service:
                handle = service.submit(search_plan(evaluator="broken"))
                assert handle.wait(timeout=120) == "failed"
                with pytest.raises(RuntimeError, match="evaluator exploded"):
                    handle.result(timeout=10)
                assert any(e.kind == "failed" for e in handle.events())
        finally:
            EVALUATORS.unregister("broken")

    def test_store_failure_still_terminates_the_job(self):
        """Regression: a result post-processing failure (store write,
        codec) must land the job in a terminal state -- leaving it
        'running' would hang every waiter and kill the worker thread."""
        class ExplodingStore(ResultStore):
            def put(self, key, payload):
                raise OSError("disk full")

        with SearchService(workers=1, store=ExplodingStore()) as service:
            handle = service.submit(search_plan(trials=3))
            assert handle.wait(timeout=120) == "failed"
            with pytest.raises(OSError, match="disk full"):
                handle.result(timeout=10)
            assert any("post-processing" in e.message
                       for e in handle.events() if e.kind == "failed")

    def test_evaluator_override_rejected_for_rebuilding_workloads(self):
        with SearchService(workers=1) as service:
            with pytest.raises(ValueError, match="evaluator override"):
                service.submit(search_plan(), evaluator=object())

    def test_shutdown_cancels_queued_jobs_and_rejects_new_ones(self):
        import time

        service = SearchService(workers=1)
        running = service.submit(search_plan(seed=0, trials=15))
        queued = service.submit(search_plan(seed=1, trials=15))
        deadline = time.monotonic() + 60
        while running.state == "queued" and time.monotonic() < deadline:
            time.sleep(0.01)  # let the worker claim the first job
        service.shutdown(wait=True)
        assert running.state == "done"
        assert queued.state == "cancelled"
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit(search_plan(seed=2))
