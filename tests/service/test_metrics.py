"""The metrics registry and the ``/metrics`` endpoint on both front ends."""

import json
import threading
import urllib.request

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan, plan_hash
from repro.service.client import ServiceClient
from repro.service.http import make_server
from repro.service.metrics import ANONYMOUS_TENANT, MetricsRegistry
from repro.service.service import SearchService


def search_plan(seed=0, trials=2):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


class TestRegistry:
    def test_counters_start_at_zero_and_accumulate(self, tmp_path):
        service = SearchService(workers=1,
                                checkpoint_dir=str(tmp_path / "ckpt"))
        try:
            registry = MetricsRegistry(service)
            assert registry.counter("submissions") == 0
            registry.inc("submissions")
            registry.inc("submissions", 4)
            assert registry.counter("submissions") == 5
            assert registry.snapshot()["counters"]["submissions"] == 5
        finally:
            service.shutdown(wait=True, cancel_running=True)

    def test_gauges_are_read_live_per_snapshot(self, tmp_path):
        service = SearchService(workers=1,
                                checkpoint_dir=str(tmp_path / "ckpt"))
        try:
            registry = MetricsRegistry(service)
            level = {"value": 1}
            registry.gauge("level", lambda: level["value"])
            assert registry.snapshot()["gauges"]["level"] == 1
            level["value"] = 7
            assert registry.snapshot()["gauges"]["level"] == 7
        finally:
            service.shutdown(wait=True, cancel_running=True)

    def test_uptime_uses_the_injected_clock(self, tmp_path):
        service = SearchService(workers=1,
                                checkpoint_dir=str(tmp_path / "ckpt"))
        try:
            now = {"t": 100.0}
            registry = MetricsRegistry(service, clock=lambda: now["t"])
            now["t"] = 107.5
            assert registry.snapshot()["uptime_seconds"] == 7.5
        finally:
            service.shutdown(wait=True, cancel_running=True)

    def test_snapshot_counts_jobs_and_queue_depth_per_tenant(
            self, tmp_path):
        service = SearchService(workers=1,
                                checkpoint_dir=str(tmp_path / "ckpt"))
        try:
            registry = MetricsRegistry(service)
            blocker = service.submit(search_plan(seed=1, trials=60))
            queued_acme = service.submit(search_plan(seed=2),
                                         tenant="acme")
            queued_anon = service.submit(search_plan(seed=3))
            snapshot = registry.snapshot()
            total = sum(snapshot["jobs"].values())
            assert total == 3
            depth = snapshot["queue_depth"]
            assert depth["acme"] == 1
            # The blocker and the anonymous job both land in the
            # anonymous bucket (whichever of them is running/queued).
            assert depth[ANONYMOUS_TENANT] == 2
            for handle in (blocker, queued_acme, queued_anon):
                service.cancel(handle.job_id)
        finally:
            service.shutdown(wait=True, cancel_running=True)

    def test_snapshot_reports_estimator_tiling_memo_by_kind(self, tmp_path):
        """The estimator section exposes the dw/pw tiling path."""
        from repro.core.architecture import Architecture
        from repro.fpga.device import PYNQ_Z1
        from repro.fpga.platform import Platform
        from repro.fpga.tiling import (
            LayerDesignMemo,
            TilingDesigner,
            reset_process_memo_stats,
        )

        reset_process_memo_stats()
        service = SearchService(workers=1,
                                checkpoint_dir=str(tmp_path / "ckpt"))
        try:
            registry = MetricsRegistry(service)
            designer = TilingDesigner(memo=LayerDesignMemo())
            arch = Architecture.from_choices(
                [3, 3], [8, 8], input_size=8, input_channels=3,
                conv_types=["separable", "standard"],
            )
            designer.design(arch, Platform.single(PYNQ_Z1))
            designer.design(arch, Platform.single(PYNQ_Z1))  # memo hits
            memo = registry.snapshot()["estimator"]["tiling_memo"]
            for bucket in ("all", "depthwise", "pointwise", "standard"):
                assert memo[bucket]["misses"] >= 1
                assert 0.0 <= memo[bucket]["hit_rate"] <= 1.0
            assert memo["all"]["hits"] >= 1
        finally:
            service.shutdown(wait=True, cancel_running=True)
            reset_process_memo_stats()

    def test_snapshot_reports_store_hits_and_misses(self, tmp_path):
        service = SearchService(workers=1, store_dir=str(tmp_path / "store"))
        try:
            registry = MetricsRegistry(service)
            plan = search_plan(seed=4)
            service.submit(plan).wait(timeout=120)
            assert service.store.get_bytes(plan_hash(plan))  # store hit
            service.store.get_bytes("0" * 64)  # store miss
            store = registry.snapshot()["store"]
            assert store["entries"] >= 1
            assert store["hits"] >= 1
            assert store["misses"] >= 1
        finally:
            service.shutdown(wait=True, cancel_running=True)

    def test_concurrent_incs_do_not_lose_updates(self, tmp_path):
        service = SearchService(workers=1,
                                checkpoint_dir=str(tmp_path / "ckpt"))
        try:
            registry = MetricsRegistry(service)

            def hammer():
                for _ in range(1000):
                    registry.inc("hits")

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert registry.counter("hits") == 4000
        finally:
            service.shutdown(wait=True, cancel_running=True)


class TestSyncMetricsEndpoint:
    @pytest.fixture()
    def live_server(self, tmp_path):
        server = make_server(port=0, workers=1,
                             store_dir=str(tmp_path / "store"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        server.service.shutdown(wait=True, cancel_running=True)
        thread.join(timeout=10)

    def test_metrics_route_serves_the_snapshot(self, live_server):
        client = ServiceClient(live_server)
        info = client.submit(search_plan(seed=5))
        client.wait(info["job_id"], timeout=120)
        with urllib.request.urlopen(f"{live_server}/metrics",
                                    timeout=10) as resp:
            snapshot = json.loads(resp.read())
        assert snapshot["jobs"]["done"] >= 1
        assert snapshot["counters"]["submissions"] >= 1
        assert snapshot["store"]["entries"] >= 1
        assert snapshot["uptime_seconds"] > 0
