"""Tenant registry, quotas, fair-share weighting, and accounting."""

import json

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan, plan_hash
from repro.service.journal import JobJournal
from repro.service.service import SearchService
from repro.service.tenants import (
    PRIORITY_BAND,
    MissingApiKeyError,
    QuotaExceededError,
    Tenant,
    TenantRegistry,
    UnknownApiKeyError,
    api_key_from_headers,
    check_quota,
    fair_share_priority,
    tenant_accounting,
)


def search_plan(seed=0, trials=2):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def registry(**overrides):
    return TenantRegistry([
        Tenant(name="acme", api_key="k-acme", weight=2, **overrides),
        Tenant(name="beta", api_key="k-beta", weight=1),
    ])


class TestTenantConfig:
    def test_load_round_trips_the_documented_shape(self, tmp_path):
        doc = {"tenants": [
            {"name": "acme", "api_key": "secret", "weight": 3,
             "max_running": 2, "max_queued": 10},
        ]}
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(doc))
        reg = TenantRegistry.load(path)
        tenant = reg.get("acme")
        assert (tenant.weight, tenant.max_running, tenant.max_queued) \
            == (3, 2, 10)

    def test_unknown_config_keys_fail_loudly_by_name(self):
        with pytest.raises(ValueError, match="wieght"):
            TenantRegistry.from_dict({"tenants": [
                {"name": "a", "api_key": "k", "wieght": 2}]})

    @pytest.mark.parametrize("bad", [
        {"name": "", "api_key": "k"},
        {"name": "a", "api_key": ""},
        {"name": "a", "api_key": "k", "weight": 0},
        {"name": "a", "api_key": "k", "max_running": 0},
        {"name": "a", "api_key": "k", "max_queued": -1},
    ])
    def test_invalid_tenant_fields_are_rejected(self, bad):
        with pytest.raises(ValueError):
            Tenant(**bad)

    def test_duplicate_names_and_keys_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TenantRegistry([Tenant(name="a", api_key="x"),
                            Tenant(name="a", api_key="y")])
        with pytest.raises(ValueError, match="api_key"):
            TenantRegistry([Tenant(name="a", api_key="x"),
                            Tenant(name="b", api_key="x")])

    def test_empty_registry_is_rejected(self):
        with pytest.raises(ValueError):
            TenantRegistry([])


class TestAuthentication:
    def test_authenticate_resolves_keys_to_tenants(self):
        assert registry().authenticate("k-acme").name == "acme"

    def test_missing_and_unknown_keys_are_distinct_errors(self):
        reg = registry()
        with pytest.raises(MissingApiKeyError):
            reg.authenticate(None)
        with pytest.raises(MissingApiKeyError):
            reg.authenticate("")
        with pytest.raises(UnknownApiKeyError):
            reg.authenticate("k-wrong")
        assert MissingApiKeyError.status == 401
        assert UnknownApiKeyError.status == 403

    def test_api_key_header_beats_bearer_authorization(self):
        headers = {"x-api-key": "from-header",
                   "authorization": "Bearer from-bearer"}
        assert api_key_from_headers(headers) == "from-header"
        assert api_key_from_headers(
            {"authorization": "Bearer tok"}) == "tok"
        assert api_key_from_headers(
            {"authorization": "Basic dXNlcg=="}) is None
        assert api_key_from_headers({}) is None


class TestQuotas:
    def test_running_quota_breach_carries_retry_after(self):
        tenant = Tenant(name="a", api_key="k", max_running=2)
        check_quota(tenant, queued=0, running=1)  # under: fine
        with pytest.raises(QuotaExceededError) as err:
            check_quota(tenant, queued=0, running=2)
        assert err.value.limit == "running"
        assert err.value.retry_after > 0

    def test_queued_quota_breach_names_the_limit(self):
        tenant = Tenant(name="a", api_key="k", max_queued=1)
        with pytest.raises(QuotaExceededError) as err:
            check_quota(tenant, queued=1, running=0)
        assert err.value.limit == "queued"

    def test_unlimited_tenants_never_breach(self):
        check_quota(Tenant(name="a", api_key="k"), queued=10_000,
                    running=10_000)


class TestFairShare:
    def test_first_job_lands_at_the_top_of_its_band(self):
        assert fair_share_priority(0, weight=1, outstanding=0) == 0
        assert fair_share_priority(1, weight=1, outstanding=0) \
            == PRIORITY_BAND

    def test_penalty_scales_inversely_with_weight(self):
        # Same backlog: the weight-2 tenant is penalised half as much.
        heavy = fair_share_priority(0, weight=1, outstanding=6)
        light = fair_share_priority(0, weight=2, outstanding=6)
        assert heavy == -6
        assert light == -3

    def test_caller_priority_stays_dominant(self):
        # Even a huge backlog cannot drop a high-priority submission
        # below a low-priority one.
        buried = fair_share_priority(1, weight=1,
                                     outstanding=10 * PRIORITY_BAND)
        fresh = fair_share_priority(0, weight=1, outstanding=0)
        assert buried > fresh

    def test_weighted_interleave_on_a_single_worker(self, tmp_path):
        """Weight-2 'acme' drains ~2 jobs per 'beta' job under contention."""
        from repro.events import JobCompleted

        service = SearchService(workers=1,
                                checkpoint_dir=str(tmp_path / "ckpt"))
        started_order = []
        tenants_by_job = {}

        def on_event(event):
            if isinstance(event, JobCompleted) \
                    and event.scope in tenants_by_job:
                started_order.append(tenants_by_job[event.scope])

        service.bus.subscribe(on_event)
        try:
            # Stall the single worker so every later submission queues.
            blocker = service.submit(search_plan(seed=99, trials=30))
            handles = []
            backlog = {"acme": 0, "beta": 0}
            weights = {"acme": 2, "beta": 1}
            for _ in range(3):
                for tenant in ("acme", "beta"):
                    priority = fair_share_priority(
                        0, weights[tenant], backlog[tenant])
                    handle = service.submit(
                        search_plan(seed=10 + len(handles), trials=1),
                        priority=priority, tenant=tenant)
                    tenants_by_job[handle.job_id] = tenant
                    backlog[tenant] += 1
                    handles.append(handle)
            service.cancel(blocker.job_id)
            for handle in handles:
                handle.wait(timeout=120)
        finally:
            service.shutdown(wait=True, cancel_running=True)
        # With one worker, completion order is dispatch order.  The
        # first three completions include both early acme jobs: a 2:1
        # interleave in acme's favour, with beta not starved.
        assert started_order[:3].count("acme") == 2
        assert "beta" in started_order[:3]


class TestJournalAccounting:
    def test_tenant_survives_journal_recovery(self, tmp_path):
        # A journal whose last transition is non-terminal (the crash
        # case): the recovering service must re-queue the job under
        # the tenant the original submission recorded.
        store = tmp_path / "store"
        plan = search_plan(seed=42)
        digest = plan_hash(plan)
        journal = JobJournal(store / "journal.jsonl")
        journal.record("queued", digest, f"j-{digest[:12]}", priority=0,
                       plan_doc=plan.to_dict(), tenant="acme")
        journal.close()
        recovered = SearchService(workers=1, store_dir=str(store))
        try:
            handle = recovered.job_by_hash(digest)
            assert handle is not None
            assert handle.info()["tenant"] == "acme"
            assert handle.wait(timeout=120) == "done"
        finally:
            recovered.shutdown(wait=True, cancel_running=True)

    def test_accounting_reduces_journal_to_per_tenant_counters(
            self, tmp_path):
        store = tmp_path / "store"
        service = SearchService(workers=1, store_dir=str(store))
        try:
            done = service.submit(search_plan(seed=1), tenant="acme")
            done.wait(timeout=120)
            gone = service.submit(search_plan(seed=2, trials=30),
                                  tenant="beta")
            service.cancel(gone.job_id)
            anon = service.submit(search_plan(seed=3))
            anon.wait(timeout=120)
        finally:
            service.shutdown(wait=True, cancel_running=True)
        entries = JobJournal.replay(store / "journal.jsonl")
        counts = tenant_accounting(entries)
        assert counts["acme"]["submitted"] == 1
        assert counts["acme"]["done"] == 1
        assert counts["beta"]["cancelled"] == 1
        assert counts["anonymous"]["submitted"] == 1
