"""Coordinator-side lease bookkeeping, driven at the service layer.

These tests play the agent's role by hand -- register, claim,
heartbeat (or pointedly don't), complete -- so every lease transition
is asserted without process management or HTTP in the way.  The
full-stack federation paths live in ``test_agent_federation.py``.
"""

import time

import pytest

from repro.events import AgentJoined, AgentLost, JobLeased, LeaseExpired
from repro.plans import (
    ExecutionPolicy,
    RunPlan,
    ScenarioPlan,
    SearchPlan,
)
from repro.service import (
    SearchService,
    StaleLeaseError,
    UnknownAgentError,
    execute_plan,
)
from repro.service import store as store_mod
from repro.service.service import DEFAULT_LEASE_SECONDS


def search_plan(seed=0, trials=4, **execution):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        execution=ExecutionPolicy(**execution),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def run_payload(plan):
    """The canonical result payload an honest agent would upload."""
    result = execute_plan(plan, emit=lambda event: None)
    return store_mod.encode_result(plan, result)


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def event_kinds(handle):
    return [type(e).__name__ for e in handle.events()]


class TestRegistration:
    def test_register_mints_id_and_terms(self):
        with SearchService(workers=1) as service:
            terms = service.register_agent(name="alpha")
            assert terms["agent_id"].startswith("agent-alpha-")
            assert terms["lease_seconds"] == DEFAULT_LEASE_SECONDS
            assert 0 < terms["heartbeat_seconds"] < terms["lease_seconds"]
            assert [a["name"] for a in service.agents()] == ["alpha"]

    def test_reregistration_is_idempotent_by_id(self):
        with SearchService(workers=1) as service:
            first = service.register_agent(name="alpha")
            again = service.register_agent(
                name="alpha", agent_id=first["agent_id"])
            assert again["agent_id"] == first["agent_id"]
            assert len(service.agents()) == 1

    def test_unknown_agent_rejected_everywhere(self):
        with SearchService(workers=1) as service:
            with pytest.raises(UnknownAgentError):
                service.claim_job("agent-ghost-9")
            with pytest.raises(UnknownAgentError):
                service.heartbeat("agent-ghost-9")

    def test_join_and_leave_publish_agent_events(self):
        with SearchService(workers=1) as service:
            seen = []
            service.bus.subscribe(seen.append)
            agent_id = service.register_agent(name="alpha")["agent_id"]
            service.deregister_agent(agent_id)
            kinds = [type(e) for e in seen]
            assert AgentJoined in kinds and AgentLost in kinds
            assert service.agents() == []


class TestClaiming:
    def test_claim_leases_the_job(self):
        with SearchService(workers=1) as service:
            agent_id = service.register_agent(name="alpha")["agent_id"]
            handle = service.submit(search_plan())
            claim = service.claim_job(agent_id)
            assert claim is not None
            assert claim["job_id"] == handle.job_id
            assert claim["plan"] == handle.plan.to_dict()
            assert claim["plan_hash"] == handle.plan_hash
            assert claim["lease_seconds"] == DEFAULT_LEASE_SECONDS
            info = handle.info()
            assert info["state"] == "running"
            assert info["agent"] == agent_id
            assert "JobLeased" in event_kinds(handle)
            assert service.claim_job(agent_id) is None  # queue drained
            service.complete_job(agent_id, handle.job_id, "failed",
                                 message="test teardown")

    def test_local_workers_defer_to_registered_agents(self):
        with SearchService(workers=2) as service:
            agent_id = service.register_agent(name="alpha")["agent_id"]
            handle = service.submit(search_plan())
            time.sleep(0.3)
            assert handle.state == "queued"  # locals left it for the agent
            claim = service.claim_job(agent_id)
            assert claim["job_id"] == handle.job_id
            service.complete_job(agent_id, handle.job_id, "failed",
                                 message="test teardown")

    def test_zero_agents_degrades_to_local_execution(self):
        with SearchService(workers=1) as service:
            handle = service.submit(search_plan())
            assert handle.wait(timeout=120) == "done"
            assert handle.info()["agent"] is None

    def test_remote_done_stores_bytes_identical_to_local_run(self, tmp_path):
        plan = search_plan(seed=7)
        with SearchService(workers=1) as local:
            expected = local.submit(plan).result_bytes(timeout=120)
        with SearchService(workers=1) as service:
            agent_id = service.register_agent(name="alpha")["agent_id"]
            handle = service.submit(plan)
            claim = service.claim_job(agent_id)
            service.complete_job(agent_id, claim["job_id"], "done",
                                 payload=run_payload(plan))
            assert handle.wait(timeout=10) == "done"
            assert handle.result_bytes() == expected
            assert handle.info()["agent"] is None  # lease released

    def test_remote_failure_surfaces_as_remote_job_error(self):
        from repro.service import RemoteJobError

        with SearchService(workers=1) as service:
            agent_id = service.register_agent(name="alpha")["agent_id"]
            handle = service.submit(search_plan())
            claim = service.claim_job(agent_id)
            service.complete_job(agent_id, claim["job_id"], "failed",
                                 message="boom on the remote")
            with pytest.raises(RemoteJobError, match="boom on the remote"):
                handle.result(timeout=10)

    def test_plan_lease_override_beats_service_default(self):
        with SearchService(workers=1, lease_seconds=30.0) as service:
            agent_id = service.register_agent(name="alpha")["agent_id"]
            handle = service.submit(search_plan(lease_seconds=2.0))
            claim = service.claim_job(agent_id)
            assert claim["lease_seconds"] == 2.0
            assert claim["heartbeat_seconds"] <= 2.0 / 3 + 1e-9
            service.complete_job(agent_id, handle.job_id, "failed",
                                 message="test teardown")


class TestHeartbeats:
    def test_heartbeat_renews_the_lease(self):
        with SearchService(workers=1, lease_seconds=0.4) as service:
            agent_id = service.register_agent(name="alpha")["agent_id"]
            handle = service.submit(search_plan())
            claim = service.claim_job(agent_id)
            for _ in range(10):  # 1s of renewals on a 0.4s lease
                answer = service.heartbeat(agent_id, [claim["job_id"]])
                assert answer == {"lost": [], "cancel": []}
                time.sleep(0.1)
            assert handle.info()["agent"] == agent_id
            service.complete_job(agent_id, claim["job_id"], "failed",
                                 message="test teardown")

    def test_heartbeat_reports_unheld_jobs_as_lost(self):
        with SearchService(workers=1) as service:
            agent_id = service.register_agent(name="alpha")["agent_id"]
            answer = service.heartbeat(agent_id, ["j-nothing"])
            assert answer["lost"] == ["j-nothing"]

    def test_cancel_request_rides_the_heartbeat(self):
        with SearchService(workers=1) as service:
            agent_id = service.register_agent(name="alpha")["agent_id"]
            handle = service.submit(search_plan())
            claim = service.claim_job(agent_id)
            handle.cancel()
            answer = service.heartbeat(agent_id, [claim["job_id"]])
            assert answer["cancel"] == [claim["job_id"]]
            service.complete_job(agent_id, claim["job_id"], "cancelled",
                                 completed=2)
            assert handle.state == "cancelled"


class TestExpiry:
    def test_silent_agent_loses_lease_and_job_requeues_locally(self):
        plan = search_plan(seed=3)
        with SearchService(workers=1) as local:
            expected = local.submit(plan).result_bytes(timeout=120)
        with SearchService(workers=1, lease_seconds=0.3) as service:
            agent_id = service.register_agent(name="flaky")["agent_id"]
            handle = service.submit(plan)
            service.claim_job(agent_id)
            # No heartbeats: the lease expires, the agent is presumed
            # dead, and -- with zero live agents left -- the local
            # worker takes the job over.
            assert handle.wait(timeout=30) == "done"
            kinds = event_kinds(handle)
            assert "LeaseExpired" in kinds
            assert kinds.index("LeaseExpired") < kinds.index("JobCompleted")
            assert service.agents() == []  # flaky was deregistered
            assert handle.result_bytes() == expected

    def test_stale_completion_conflicts_after_expiry(self):
        with SearchService(workers=1, lease_seconds=0.2) as service:
            agent_id = service.register_agent(name="slow")["agent_id"]
            handle = service.submit(search_plan())
            claim = service.claim_job(agent_id)
            assert wait_until(lambda: handle.info()["agent"] is None)
            with pytest.raises(StaleLeaseError):
                service.complete_job(agent_id, claim["job_id"], "done",
                                     payload=None)
            assert handle.wait(timeout=120) == "done"  # finished locally

    def test_stale_event_upload_conflicts_after_expiry(self):
        with SearchService(workers=1, lease_seconds=0.2) as service:
            agent_id = service.register_agent(name="slow")["agent_id"]
            handle = service.submit(search_plan())
            claim = service.claim_job(agent_id)
            assert wait_until(lambda: handle.info()["agent"] is None)
            with pytest.raises(StaleLeaseError):
                service.record_agent_events(
                    agent_id, claim["job_id"],
                    [JobLeased(claim["job_id"], "too late")])
            handle.wait(timeout=120)

    def test_graceful_leave_requeues_immediately(self):
        with SearchService(workers=1) as service:
            agent_id = service.register_agent(name="alpha")["agent_id"]
            handle = service.submit(search_plan())
            service.claim_job(agent_id)
            service.deregister_agent(agent_id)
            assert handle.wait(timeout=120) == "done"  # local takeover
            assert "LeaseExpired" in event_kinds(handle)


class TestJournalLeaseRecovery:
    def _freeze(self, service):
        """Simulate a coordinator SIGKILL: stop writing, stop expiring."""
        service._monitor_stop.set()
        if service._journal is not None:
            service._journal.close()

    def test_restart_restores_the_lease_to_the_recorded_agent(self, tmp_path):
        plan = search_plan(seed=11)
        store = str(tmp_path / "store")
        first = SearchService(workers=1, store_dir=store,
                              lease_seconds=5.0)
        agent_id = first.register_agent(name="alpha")["agent_id"]
        first.submit(plan)
        claim = first.claim_job(agent_id)
        self._freeze(first)

        second = SearchService(workers=1, store_dir=store, lease_seconds=5.0)
        try:
            assert second.recovered_jobs == [claim["job_id"]]
            handle = second.job(claim["job_id"])
            info = handle.info()
            assert info["state"] == "running"
            assert info["agent"] == agent_id
            agents = second.agents()
            assert [a["agent_id"] for a in agents] == [agent_id]
            assert agents[0]["restored"] is True
            assert "JobLeased" in event_kinds(handle)
            # The surviving agent re-registers and finishes normally.
            second.register_agent(name="alpha", agent_id=agent_id)
            second.heartbeat(agent_id, [claim["job_id"]])
            second.complete_job(agent_id, claim["job_id"], "done",
                                payload=run_payload(plan))
            assert handle.wait(timeout=10) == "done"
        finally:
            second.shutdown(wait=True, cancel_running=True)

    def test_restored_lease_expires_into_local_execution(self, tmp_path):
        plan = search_plan(seed=12)
        store = str(tmp_path / "store")
        first = SearchService(workers=1, store_dir=store, lease_seconds=0.3)
        agent_id = first.register_agent(name="alpha")["agent_id"]
        first.submit(plan)
        claim = first.claim_job(agent_id)
        self._freeze(first)

        second = SearchService(workers=1, store_dir=store, lease_seconds=0.3)
        try:
            handle = second.job(claim["job_id"])
            # The recorded agent never heartbeats: grace runs out, the
            # job re-queues and the local worker finishes it.
            assert handle.wait(timeout=30) == "done"
            kinds = event_kinds(handle)
            assert "LeaseExpired" in kinds
            assert handle.result_bytes() is not None
        finally:
            second.shutdown(wait=True, cancel_running=True)
