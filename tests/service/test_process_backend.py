"""The process execution backend: parity with the thread backend.

The backend contract is *observational equivalence*: whatever backend
runs a job, callers must see the same typed event sequence, the same
byte-identical stored result, the same cancel/resume semantics and the
same error propagation.  The only permitted difference is throughput.
"""

import time

import pytest

from repro.core.search import SearchCancelled
from repro.events import JobCancelled, JobCompleted, JobStarted
from repro.plans import ExecutionPolicy, RunPlan, ScenarioPlan, SearchPlan
from repro.registry import EVALUATORS
from repro.service import ProcessWorkerError, SearchService, run_job_in_process


def search_plan(seed=0, trials=5, **execution):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        execution=ExecutionPolicy(**execution),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def comparable(events):
    return [(type(e).__name__, e.scope, e.message) for e in events]


class TestParity:
    def test_result_bytes_and_events_match_thread_backend(self):
        plan = search_plan(seed=3)
        observed = {}
        for backend in ("thread", "process"):
            with SearchService(workers=1, backend=backend) as service:
                handle = service.submit(plan)
                observed[backend] = (
                    handle.result_bytes(timeout=300),
                    comparable(handle.events()),
                )
        assert observed["thread"][0] == observed["process"][0]
        assert observed["thread"][1] == observed["process"][1]

    def test_result_object_carries_real_wall_clock(self):
        """Parity covers handle.result(), not just stored bytes: the
        payload crosses the pipe unscrubbed, so the decoded object
        keeps the child's measured wall_seconds (the *stored* bytes
        are scrubbed to stay a pure function of the plan)."""
        with SearchService(workers=1, backend="process") as service:
            handle = service.submit(search_plan())
            result = handle.result(timeout=300)
            assert len(result.trials) == 5
            assert result.wall_seconds > 0
            stored = handle.result_bytes()
        import json

        assert json.loads(stored)["wall_seconds"] == 0.0

    def test_caching_off_still_returns_the_result_object(self):
        with SearchService(workers=1, backend="process",
                           cache_results=False) as service:
            handle = service.submit(search_plan())
            result = handle.result(timeout=300)
            assert len(result.trials) == 5
            # No cached bytes, exactly like the thread backend.
            assert handle.stored_result_bytes() is None

    def test_plan_level_backend_overrides_the_service_default(self):
        plan = search_plan(backend="process")
        with SearchService(workers=1, backend="thread") as service:
            assert service._backend_for(service.submit(plan)._job) == "process"
            with SearchService(workers=1, backend="process") as other:
                thread_plan = search_plan(seed=9, backend="thread")
                job = other.submit(thread_plan)._job
                assert other._backend_for(job) == "thread"

    def test_unknown_service_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SearchService(workers=1, backend="fiber")

    def test_unknown_plan_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionPolicy(backend="fiber")


class TestCancellation:
    def test_cancel_running_process_job_checkpoints_and_resumes(
        self, tmp_path
    ):
        plan = search_plan(seed=2, trials=600)
        with SearchService(workers=1, backend="process",
                           checkpoint_dir=str(tmp_path)) as service:
            handle = service.submit(plan)
            job_dir = tmp_path / handle.plan_hash
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if (handle.state == "running"
                        and list(job_dir.glob("*.checkpoint.json"))):
                    break
                time.sleep(0.02)
            handle.cancel()
            assert handle.wait(timeout=120) == "cancelled"
            kinds = [type(e) for e in handle.events()]
            assert kinds.count(JobCancelled) == 1
            # Resubmit resumes from the snapshot to the full budget.
            resumed = service.submit(plan)
            assert resumed.job_id == handle.job_id
            result = resumed.result(timeout=600)
            assert len(result.trials) == 600


class TestFailurePropagation:
    def test_child_exception_reraises_in_the_parent(self):
        def broken(space, config, seed):
            raise RuntimeError("evaluator exploded in the child")

        EVALUATORS.register("broken-child", broken, replace=True)
        try:
            plan = search_plan(seed=0)
            plan = RunPlan(
                workload="search",
                search=SearchPlan(seed=0, trials=3,
                                  evaluator="broken-child"),
                scenario=plan.scenario,
            )
            with SearchService(workers=1, backend="process") as service:
                handle = service.submit(plan)
                assert handle.wait(timeout=120) == "failed"
                with pytest.raises(RuntimeError, match="exploded in the child"):
                    handle.result(timeout=10)
        finally:
            EVALUATORS.unregister("broken-child")

    def test_evaluator_override_jobs_run_on_the_thread_backend(self):
        """A live evaluator object cannot cross a process boundary."""
        plan = RunPlan(workload="table1",
                       search=SearchPlan(trials=2))
        with SearchService(workers=1, backend="process") as service:
            evaluator = object.__new__(object)  # placeholder identity
            job = service.submit(plan, evaluator=evaluator)._job
            assert service._backend_for(job) == "thread"
            service.cancel(job.id)


class TestRunJobInProcess:
    def test_streams_events_and_returns_the_canonical_payload(self):
        events = []
        result, payload = run_job_in_process(
            search_plan(seed=4, trials=3),
            emit=events.append,
            cancel_requested=lambda: False,
        )
        assert result is None and payload is not None
        assert len(payload["trials"]) == 3
        names = [type(e).__name__ for e in events]
        assert names[0] == "RunStarted" and names[-1] == "RunFinished"
        assert "SearchStarted" in names and "SearchFinished" in names

    def test_cancel_before_start_raises_search_cancelled(self):
        with pytest.raises(SearchCancelled):
            run_job_in_process(
                search_plan(seed=5, trials=50),
                emit=lambda e: None,
                cancel_requested=lambda: True,
            )

    def test_worker_error_type_is_exported(self):
        assert issubclass(ProcessWorkerError, RuntimeError)
