"""The asyncio gateway: streaming, admission, drain, wire parity."""

import http.client
import json
import threading
import time
import urllib.request

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service.client import ServiceClient, ServiceError
from repro.service.gateway import GatewayRunner
from repro.service.http import make_server
from repro.service.journal import JobJournal
from repro.service.service import SearchService
from repro.service.tenants import Tenant, TenantRegistry


def search_plan(seed=0, trials=4):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


@pytest.fixture()
def live_gateway(tmp_path):
    """A gateway-served SearchService on an ephemeral loopback port."""
    with GatewayRunner(workers=2, store_dir=str(tmp_path / "store"),
                       checkpoint_dir=str(tmp_path / "ckpt")) as runner:
        yield runner


def get_json(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read())


class TestWireParity:
    """The gateway answers byte-for-byte like the sync front end."""

    def test_submit_wait_result_roundtrip(self, live_gateway):
        client = ServiceClient(live_gateway.base_url)
        info = client.submit(search_plan())
        assert info["state"] in ("queued", "running", "done")
        assert set(info) >= {"job_id", "state", "plan_hash", "priority",
                             "deduped", "tenant"}
        final = client.wait(info["job_id"], timeout=120)
        assert final["state"] == "done"
        blob = client.result_bytes(info["job_id"])
        assert b'"trials"' in blob

    def test_duplicate_submission_coalesces_and_matches_bytes(
            self, live_gateway):
        client = ServiceClient(live_gateway.base_url)
        plan = search_plan(seed=3)
        first = client.submit(plan)
        client.wait(first["job_id"], timeout=120)
        original = client.result_bytes(first["job_id"])
        again = client.submit(plan)
        assert again["deduped"] is True
        assert again["job_id"] == first["job_id"]
        assert client.result_bytes(again["job_id"]) == original

    def test_result_of_unfinished_job_is_409(self, live_gateway):
        client = ServiceClient(live_gateway.base_url, max_retries=0)
        info = client.submit(search_plan(seed=7, trials=60))
        try:
            with pytest.raises(ServiceError) as err:
                client.result_bytes(info["job_id"])
            assert err.value.status == 409
        finally:
            client.cancel(info["job_id"])

    def test_keep_alive_serves_multiple_requests_per_connection(
            self, live_gateway):
        conn = http.client.HTTPConnection("127.0.0.1", live_gateway.port,
                                          timeout=10)
        try:
            for _ in range(3):
                conn.request("GET", "/health")
                resp = conn.getresponse()
                assert resp.status == 200
                assert json.loads(resp.read())["status"] == "ok"
        finally:
            conn.close()

    def test_agent_routes_are_served(self, live_gateway):
        client = ServiceClient(live_gateway.base_url)
        registered = client.register_agent(name="gw-agent")
        assert registered["agent_id"]
        assert any(a["agent_id"] == registered["agent_id"]
                   for a in client.agents())
        assert client.claim(registered["agent_id"]) is None  # empty queue
        client.agent_leave(registered["agent_id"])


class TestEventDelivery:
    def test_sse_streams_events_live_then_ends(self, live_gateway):
        client = ServiceClient(live_gateway.base_url)
        info = client.submit(search_plan(seed=11, trials=8))
        frames = list(client.stream_events(info["job_id"]))
        tags = [f["event"] for f in frames]
        assert tags[0] == "job-queued"
        assert "job-completed" in tags
        assert tags[-1] == "end"
        assert frames[-1]["data"]["state"] == "done"
        # ids are the event cursor: strictly increasing from 1.
        ids = [f["id"] for f in frames[:-1]]
        assert ids == list(range(1, len(ids) + 1))

    def test_sse_since_resumes_after_the_last_seen_frame(
            self, live_gateway):
        client = ServiceClient(live_gateway.base_url)
        info = client.submit(search_plan(seed=12))
        client.wait(info["job_id"], timeout=120)
        everything = list(client.stream_events(info["job_id"]))
        resumed = list(client.stream_events(info["job_id"],
                                            since=everything[1]["id"]))
        assert [f["id"] for f in resumed[:-1]] \
            == [f["id"] for f in everything[2:-1]]

    def test_sse_for_unknown_job_is_404_not_a_stream(self, live_gateway):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{live_gateway.base_url}/jobs/nope/events/stream",
                timeout=10)
        assert err.value.code == 404

    def test_long_poll_parks_until_events_arrive(self, live_gateway):
        client = ServiceClient(live_gateway.base_url)
        # A queued-then-running job: the first poll page returns the
        # queue events; polling *past* the log's tail must park until
        # the job produces more instead of returning an empty page.
        info = client.submit(search_plan(seed=13, trials=8))
        cursor = client.events(info["job_id"])["next"]
        started = time.monotonic()
        page = client.events(info["job_id"], since=cursor, wait=30)
        elapsed = time.monotonic() - started
        assert page["events"] or page["state"] in ("done",)
        # Either events arrived (we parked until then) or the job
        # finished; both beat a 30s timeout by far.
        assert elapsed < 30
        client.wait(info["job_id"], timeout=120)

    def test_long_poll_returns_immediately_for_terminal_jobs(
            self, live_gateway):
        client = ServiceClient(live_gateway.base_url)
        info = client.submit(search_plan(seed=14))
        client.wait(info["job_id"], timeout=120)
        cursor = client.events(info["job_id"])["next"]
        started = time.monotonic()
        page = client.events(info["job_id"], since=cursor, wait=20)
        assert time.monotonic() - started < 5
        assert page["state"] == "done"
        assert page["events"] == []

    def test_stream_events_falls_back_to_polling_on_sync_servers(
            self, tmp_path):
        server = make_server(port=0, workers=1,
                             store_dir=str(tmp_path / "store"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            client = ServiceClient(f"http://{host}:{port}")
            info = client.submit(search_plan(seed=15))
            frames = list(client.stream_events(info["job_id"]))
            tags = [f["event"] for f in frames]
            assert "job-completed" in tags
            assert tags[-1] == "end"
            assert frames[-1]["data"]["state"] == "done"
        finally:
            server.shutdown()
            server.server_close()
            server.service.shutdown(wait=True, cancel_running=True)
            thread.join(timeout=10)


class TestAdmission:
    def test_backpressure_is_503_with_retry_after(self, tmp_path):
        with GatewayRunner(workers=1, max_pending=1,
                           checkpoint_dir=str(tmp_path / "ckpt")) as runner:
            client = ServiceClient(runner.base_url, max_retries=0)
            running = client.submit(search_plan(seed=20, trials=60))
            queued = client.submit(search_plan(seed=21, trials=60))
            try:
                request = urllib.request.Request(
                    f"{runner.base_url}/jobs",
                    data=json.dumps(
                        {"plan": search_plan(seed=22).to_dict()}).encode(),
                    headers={"Content-Type": "application/json"})
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(request, timeout=10)
                assert err.value.code == 503
                assert err.value.headers["Retry-After"]
            finally:
                client.cancel(queued["job_id"])
                client.cancel(running["job_id"])

    def test_rejected_submission_never_touches_admitted_jobs(
            self, tmp_path):
        registry = TenantRegistry([
            Tenant(name="acme", api_key="k-acme", max_queued=1)])
        with GatewayRunner(workers=1, tenants=registry,
                           checkpoint_dir=str(tmp_path / "ckpt")) as runner:
            client = ServiceClient(runner.base_url, max_retries=0,
                                   api_key="k-acme")
            running = client.submit(search_plan(seed=23, trials=40))
            queued = client.submit(search_plan(seed=24, trials=2))
            with pytest.raises(ServiceError) as err:
                client.submit(search_plan(seed=25))
            assert err.value.status == 429
            # The admitted jobs are untouched and both finish.
            assert client.wait(running["job_id"], timeout=120)["state"] \
                == "done"
            assert client.wait(queued["job_id"], timeout=120)["state"] \
                == "done"

    def test_connection_cap_rejects_the_excess_connection(self, tmp_path):
        with GatewayRunner(workers=1, max_connections=1,
                           checkpoint_dir=str(tmp_path / "ckpt")) as runner:
            holder = http.client.HTTPConnection(
                "127.0.0.1", runner.port, timeout=10)
            try:
                holder.connect()
                holder.request("GET", "/health")
                assert holder.getresponse().status == 200  # keep-alive held
                second = http.client.HTTPConnection(
                    "127.0.0.1", runner.port, timeout=10)
                try:
                    second.request("GET", "/health")
                    resp = second.getresponse()
                    assert resp.status == 503
                finally:
                    second.close()
            finally:
                holder.close()


class TestGracefulDrain:
    def test_shutdown_drains_jobs_and_flushes_the_journal(self, tmp_path):
        store = tmp_path / "store"
        runner = GatewayRunner(workers=1, store_dir=str(store)).start()
        client = ServiceClient(runner.base_url)
        try:
            info = client.submit(search_plan(seed=30, trials=10))
            assert client.shutdown()["status"] == "shutting down"
        finally:
            runner.stop()
        # The admitted job ran to completion during the drain and its
        # terminal transition reached the journal.
        entries = JobJournal.replay(store / "journal.jsonl")
        ops = [e["op"] for e in entries if e["hash"] == info["plan_hash"]]
        assert ops[-1] == "done"

    def test_drained_gateway_result_matches_a_sync_server_run(
            self, tmp_path):
        plan = search_plan(seed=31)
        gw_store = tmp_path / "gw-store"
        runner = GatewayRunner(workers=1, store_dir=str(gw_store)).start()
        try:
            client = ServiceClient(runner.base_url)
            info = client.submit(plan)
            client.wait(info["job_id"], timeout=120)
            async_bytes = client.result_bytes(info["job_id"])
        finally:
            runner.stop()
        sync_service = SearchService(
            workers=1, store_dir=str(tmp_path / "sync-store"))
        try:
            handle = sync_service.submit(plan)
            handle.wait(timeout=120)
            sync_bytes = handle.stored_result_bytes()
        finally:
            sync_service.shutdown(wait=True)
        assert async_bytes == sync_bytes

    def test_sse_streams_end_with_a_drain_frame(self, tmp_path):
        runner = GatewayRunner(workers=1,
                               checkpoint_dir=str(tmp_path / "ckpt")).start()
        client = ServiceClient(runner.base_url)
        try:
            info = client.submit(search_plan(seed=32, trials=120))
            frames = []
            stream = client.stream_events(info["job_id"])
            # Consume the first frames, then drain mid-stream.
            for frame in stream:
                frames.append(frame)
                if len(frames) == 2:
                    threading.Thread(target=client.shutdown,
                                     daemon=True).start()
            assert frames[-1]["event"] == "end"
        finally:
            runner.stop()


class TestGatewayMetrics:
    def test_metrics_reports_streams_and_submissions(self, live_gateway):
        client = ServiceClient(live_gateway.base_url)
        info = client.submit(search_plan(seed=40))
        client.wait(info["job_id"], timeout=120)
        list(client.stream_events(info["job_id"]))
        snapshot = get_json(f"{live_gateway.base_url}/metrics")
        assert snapshot["jobs"]["done"] >= 1
        assert snapshot["counters"]["submissions"] >= 1
        assert snapshot["counters"]["sse_streams"] >= 1
        assert snapshot["counters"]["sse_events"] >= 1
        assert snapshot["gauges"]["open_connections"] >= 1
        assert snapshot["store"]["entries"] >= 1
        assert snapshot["uptime_seconds"] > 0
