"""WorkerPool: the one process runtime behind campaigns, jobs, agents.

The properties under test are the ones the old duplicated runtimes
each needed separately: batch results stream back in order, workers
survive (and are *reused*) across tasks, cancellation is cooperative
at item boundaries, and a worker death names exactly the batch items
that produced no result.
"""

import os
import time

import pytest

from repro.service.pool import WorkerDied, WorkerPool, WorkerTaskError


#: Pool submission crosses callables by module reference, so every
#: task body lives at module level.
def _square(x):
    return x * x


def _slow_square(x):
    time.sleep(0.15)
    return x * x


def _exit_on_seven(x):
    if x == 7:
        os._exit(1)
    return x * x


def _raise_on_seven(x):
    if x == 7:
        raise ValueError("seven is right out")
    return x * x


class _Unpicklable(Exception):
    def __init__(self, sock):
        super().__init__("held a live handle")
        self.sock = sock


def _raise_unpicklable(x):
    import socket

    raise _Unpicklable(socket.socket())


def _pid(_):
    return os.getpid()


def _run(pool, fn, values, **kwargs):
    """Submit one batch and drive it to its terminal; returns
    (handle, {index: value})."""
    results = {}
    handle = pool.submit(fn, [(v,) for v in values],
                         on_item=results.__setitem__, **kwargs)
    while not handle.finished:
        pool.wait([handle], timeout=0.5)
    return handle, results


class TestBatchDispatch:
    def test_results_stream_in_order(self):
        with WorkerPool(1) as pool:
            handle, results = _run(pool, _square, [2, 3, 4])
        assert handle.outcome[0] == "done"
        assert results == {0: 4, 1: 9, 2: 16}
        assert handle.lost_indices == []

    def test_empty_batch_is_rejected(self):
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError, match="at least one"):
                pool.submit(_square, [])

    def test_setup_runs_before_first_call(self, tmp_path):
        marker = tmp_path / "setup-ran"
        import functools
        with WorkerPool(1) as pool:
            handle, results = _run(
                pool, _square, [3],
                setup=functools.partial(_touch, str(marker)),
            )
        assert results == {0: 9}
        assert marker.exists()

    def test_submit_after_close_raises(self):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_square, [(1,)])
        pool.close()  # idempotent


def _touch(path):
    with open(path, "w") as fh:
        fh.write("ran")


class TestWorkerReuse:
    def test_consecutive_tasks_share_one_process(self):
        with WorkerPool(1) as pool:
            _, first = _run(pool, _pid, [0])
            _, second = _run(pool, _pid, [0])
            stats = pool.stats()
        assert first[0] == second[0] != os.getpid()
        assert stats["worker.spawn"] == 1
        assert stats["worker.reuse"] == 1
        assert stats["pool.dispatch"] == 2
        assert stats["worker.death"] == 0

    def test_workers_spawn_lazily(self):
        with WorkerPool(4) as pool:
            assert pool.stats()["workers.alive"] == 0
            _run(pool, _square, [1])
            assert pool.stats()["workers.alive"] == 1
            assert pool.available() == 4


class TestFailureModes:
    def test_picklable_exception_propagates_and_worker_survives(self):
        with WorkerPool(1) as pool:
            handle, results = _run(pool, _raise_on_seven, [2, 7, 4])
            assert handle.outcome[0] == "failed"
            assert isinstance(handle.outcome[3], ValueError)
            assert results == {0: 4}           # items before the failure
            assert handle.lost_indices == [1, 2]
            # The worker reported cleanly and went back to the pool.
            assert pool.stats()["worker.death"] == 0
            _, again = _run(pool, _square, [5])
            assert again == {0: 25}

    def test_unpicklable_exception_degrades_to_message(self):
        with WorkerPool(1) as pool:
            handle, _ = _run(pool, _raise_unpicklable, [1])
        assert handle.outcome[0] == "failed"
        assert handle.outcome[3] is None
        assert "_Unpicklable" in handle.outcome[2]

    def test_worker_death_names_the_lost_items(self):
        with WorkerPool(1) as pool:
            handle, results = _run(pool, _exit_on_seven, [3, 7, 5])
            assert isinstance(handle.error, WorkerDied)
            assert handle.error.exitcode == 1
            assert results == {0: 9}
            assert handle.lost_indices == [1, 2]
            stats = pool.stats()
            assert stats["worker.death"] == 1
            assert stats["workers.alive"] == 0
            # The pool replaces the dead worker lazily on demand.
            _, again = _run(pool, _square, [6])
            assert again == {0: 36}
            assert pool.stats()["worker.spawn"] == 2


class TestCancellation:
    def test_cancel_stops_at_the_next_item_boundary(self):
        with WorkerPool(1) as pool:
            results = {}
            handle = pool.submit(_slow_square, [(i,) for i in range(50)],
                                 on_item=results.__setitem__)
            while not results:        # let at least one item land
                pool.wait([handle], timeout=0.5)
            pool.cancel(handle)
            while not handle.finished:
                pool.wait([handle], timeout=0.5)
            assert handle.outcome[0] == "cancelled"
            assert len(results) < 50
            # The worker is back: cancellation is not death.
            assert pool.stats()["worker.death"] == 0
            _, again = _run(pool, _square, [2])
            assert again == {0: 4}

    def test_cancel_after_finish_is_a_no_op(self):
        with WorkerPool(1) as pool:
            handle, _ = _run(pool, _square, [2])
            pool.cancel(handle)       # must not poison the next task
            _, again = _run(pool, _square, [3])
            assert again == {0: 9}


class TestCheckoutGuard:
    def test_submit_gives_up_when_should_stop_fires(self):
        with WorkerPool(1) as pool:
            blocker = pool.submit(_slow_square, [(i,) for i in range(50)])
            handle = pool.submit(_square, [(1,)], should_stop=lambda: True)
            assert handle is None     # nothing dispatched, nothing lost
            pool.cancel(blocker)
            while not blocker.finished:
                pool.wait([blocker], timeout=0.5)

    def test_available_tracks_checkouts(self):
        with WorkerPool(2) as pool:
            assert pool.available() == 2
            handle = pool.submit(_slow_square, [(1,)])
            assert pool.available() == 1
            while not handle.finished:
                pool.wait([handle], timeout=0.5)
            assert pool.available() == 2


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            WorkerPool(0)
