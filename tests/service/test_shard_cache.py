"""Cancel-then-resubmit at shard granularity, on both backends.

The memoization satellite of the service's cancellation story: cancel a
pooled sweep mid-run, resubmit the identical plan, and the shards that
completed before the cancel are served from the result store
(:class:`~repro.events.ShardCached`) instead of re-executing -- with
the final ``/result`` bytes identical to an uninterrupted run.
"""

import threading

import pytest

from repro.events import SearchFinished, ShardCached
from repro.plans import ExecutionPolicy, RunPlan, ScenarioPlan, SearchPlan
from repro.service import ResultStore, SearchService

#: Per-shard budget: large enough (~1s of surrogate search) that the
#: cancel lands before the last shard's pool future is collected, on
#: both backends (the process backend adds ~0.1s of pipe latency).
TRIALS = 1000


def sweep_plan(backend):
    return RunPlan(
        workload="sweep",
        search=SearchPlan(trials=TRIALS),
        execution=ExecutionPolicy(shard_workers=2, backend=backend),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0, 7.5, 10.0)),
    )


def reference_bytes(plan, tmp_path):
    """Canonical result bytes of an uninterrupted run (own store)."""
    with SearchService(
        workers=1, store=ResultStore(tmp_path / "reference-store"),
        checkpoint_dir=str(tmp_path / "reference-ckpt"),
    ) as service:
        return service.submit(plan).result_bytes(timeout=600)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_cancelled_sweeps_completed_shards_serve_from_the_store(
    tmp_path, backend
):
    plan = sweep_plan(backend)
    store_dir = tmp_path / "store"
    first_shard_done = threading.Event()

    def trip(event):
        if isinstance(event, SearchFinished):
            first_shard_done.set()

    with SearchService(
        workers=1, store=ResultStore(store_dir),
        checkpoint_dir=str(tmp_path / "ckpt"),
    ) as service:
        service.bus.subscribe(trip)
        handle = service.submit(plan)
        assert first_shard_done.wait(timeout=120), "no shard ever finished"
        handle.cancel()
        assert handle.wait(timeout=120) == "cancelled"

        # Completed shards were written through before the cancel; the
        # store holds strictly fewer than all three (the interrupted
        # sweep never merged, so there is no whole-plan entry yet).
        assert 1 <= len(ResultStore(store_dir)) < 3

        # Resubmit: the same job re-queues; its finished shards come
        # straight from the store.
        resumed = service.submit(plan)
        assert resumed.job_id == handle.job_id
        interrupted_bytes = resumed.result_bytes(timeout=600)
        cached = [e for e in resumed.events() if isinstance(e, ShardCached)]
        assert 1 <= len(cached) <= 2
        shard_ids = {e.shard_id for e in cached}
        assert all(s.startswith("mnist-pynq-z1-fnas") for s in shard_ids)

    assert interrupted_bytes == reference_bytes(plan, tmp_path)


def test_shard_results_shared_across_plans_not_just_jobs(tmp_path):
    """A different sweep overlapping in shards reuses their results."""
    store = ResultStore(tmp_path / "store")
    narrow = RunPlan(
        workload="sweep",
        search=SearchPlan(trials=5),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )
    wide = RunPlan(
        workload="sweep",
        search=SearchPlan(trials=5),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0, 7.5)),
    )
    with SearchService(workers=1, store=store) as service:
        service.submit(narrow).result(timeout=120)
        wide_handle = service.submit(wide)
        wide_handle.result(timeout=120)
        cached = [e for e in wide_handle.events()
                  if isinstance(e, ShardCached)]
        # Different plan hash (no whole-plan dedup), shared shard.
        assert [e.shard_id for e in cached] == ["mnist-pynq-z1-fnas5ms-s0"]


def test_search_and_sweep_share_one_shard_namespace(tmp_path):
    """A single search seeds the store entry a sweep then reuses."""
    store = ResultStore(tmp_path / "store")
    single = RunPlan(
        workload="search",
        search=SearchPlan(trials=5),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )
    sweep = RunPlan(
        workload="sweep",
        search=SearchPlan(trials=5),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0, 7.5)),
    )
    with SearchService(workers=1, store=store) as service:
        service.submit(single).result(timeout=120)
        handle = service.submit(sweep)
        handle.result(timeout=120)
        cached = [e for e in handle.events() if isinstance(e, ShardCached)]
        assert [e.shard_id for e in cached] == ["mnist-pynq-z1-fnas5ms-s0"]


def test_caching_disabled_disables_shard_memoization(tmp_path):
    plan = RunPlan(
        workload="sweep",
        search=SearchPlan(trials=5),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )
    with SearchService(
        workers=1, store=ResultStore(tmp_path / "store"), cache_results=False,
    ) as service:
        service.submit(plan).result(timeout=120)
        again = service.submit(plan)
        again.result(timeout=120)
        assert not [e for e in again.events() if isinstance(e, ShardCached)]
    assert len(ResultStore(tmp_path / "store")) == 0
