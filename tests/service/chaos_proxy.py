"""A mode-switchable TCP chaos proxy for federation fault tests.

:class:`ChaosProxy` sits between an agent (or client) and a live
coordinator and misbehaves on command.  Modes, switchable at runtime
while connections are in flight:

* ``"pass"`` -- forward bytes both ways faithfully (the control case);
* ``"refuse"`` -- accept and immediately close every new connection
  (connection-dropped errors on the client side);
* ``"blackhole"`` -- accept connections and read the request bytes but
  never forward them and never answer (the heartbeat-eating partition:
  the caller blocks until its socket timeout);
* ``"slow"`` -- forward, but trickle the upstream response back with a
  delay per chunk (slow-read / thundering-timeout behavior);
* ``"half-close"`` -- forward the request, relay roughly half of the
  response bytes, then sever the connection (torn replies).

Everything is stdlib sockets and daemon threads; ``stop()`` (or the
context manager) tears the listener down.  New connections observe the
mode at accept time, so a test can let a registration through in
``"pass"`` and then flip to ``"blackhole"`` to partition heartbeats.
"""

import socket
import threading
import time

#: Bytes per relay read.
_CHUNK = 4096

#: Modes the proxy understands.
MODES = ("pass", "refuse", "blackhole", "slow", "half-close")


class ChaosProxy:
    """Listen on an ephemeral port and relay to ``(host, port)`` chaotically.

    Parameters:
        upstream_host: the real server's host.
        upstream_port: the real server's port.
        mode: initial misbehavior mode (default ``"pass"``).
        slow_delay: per-chunk sleep in ``"slow"`` mode, seconds.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 mode: str = "pass", slow_delay: float = 0.5):
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
        self.upstream = (upstream_host, upstream_port)
        self.slow_delay = slow_delay
        self._mode = mode
        self._once: list[str] = []
        self._mode_lock = threading.Lock()
        self._stopping = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True)
        self._accept_thread.start()

    @property
    def mode(self) -> str:
        """The current misbehavior mode."""
        with self._mode_lock:
            return self._mode

    @mode.setter
    def mode(self, value: str) -> None:
        if value not in MODES:
            raise ValueError(
                f"unknown mode {value!r}; expected one of {MODES}")
        with self._mode_lock:
            self._mode = value

    def fail_next(self, mode: str, count: int = 1) -> None:
        """Apply ``mode`` to only the next ``count`` connections.

        One-shot modes are consumed at accept time, after which the
        base :attr:`mode` applies again -- the natural shape for
        "flaky" tests: refuse two connections, let the third through,
        and assert the client's retry loop absorbed the flakiness.
        """
        if mode not in MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {MODES}")
        with self._mode_lock:
            self._once.extend([mode] * count)

    def _next_mode(self) -> str:
        with self._mode_lock:
            if self._once:
                return self._once.pop(0)
            return self._mode

    def stop(self) -> None:
        """Close the listener; in-flight relays die with their sockets."""
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "ChaosProxy":
        """Context-manager entry: the proxy itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit stops the proxy."""
        self.stop()

    # -- internals -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._handle, args=(client,),
                             daemon=True).start()

    def _handle(self, client: socket.socket) -> None:
        mode = self._next_mode()
        try:
            if mode == "refuse":
                client.close()
                return
            if mode == "blackhole":
                self._swallow(client)
                return
            self._relay(client, mode)
        except OSError:
            pass
        finally:
            try:
                client.close()
            except OSError:
                pass

    def _swallow(self, client: socket.socket) -> None:
        """Read and discard until the peer gives up (never answer)."""
        client.settimeout(1.0)
        while not self._stopping.is_set():
            try:
                if not client.recv(_CHUNK):
                    return
            except socket.timeout:
                continue
            except OSError:
                return

    def _relay(self, client: socket.socket, mode: str) -> None:
        upstream = socket.create_connection(self.upstream, timeout=10.0)
        try:
            up = threading.Thread(
                target=self._pump, args=(client, upstream, "pass"),
                daemon=True)
            up.start()
            self._pump(upstream, client, mode)
            up.join(timeout=10.0)
        finally:
            try:
                upstream.close()
            except OSError:
                pass

    def _pump(self, source: socket.socket, sink: socket.socket,
              mode: str) -> None:
        """Copy source -> sink, mangled according to ``mode``."""
        half_close_budget = None
        source.settimeout(1.0)
        while not self._stopping.is_set():
            try:
                chunk = source.recv(_CHUNK)
            except socket.timeout:
                continue
            except OSError:
                return
            if not chunk:
                try:
                    sink.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                return
            if mode == "slow":
                time.sleep(self.slow_delay)
            if mode == "half-close":
                # Cut mid-*body*: truncating inside the headers makes
                # http.client see a headerless-but-valid empty reply,
                # which is undetectably wrong; a short body against the
                # Content-Length header is the real torn-reply failure.
                if half_close_budget is None:
                    header_end = chunk.find(b"\r\n\r\n")
                    if header_end != -1:
                        body = len(chunk) - header_end - 4
                        half_close_budget = header_end + 4 + body // 2
                    else:
                        half_close_budget = max(1, len(chunk) // 2)
                chunk = chunk[:half_close_budget]
                try:
                    sink.sendall(chunk)
                finally:
                    try:
                        sink.close()
                    except OSError:
                        pass
                return
            try:
                sink.sendall(chunk)
            except OSError:
                return
