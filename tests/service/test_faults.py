"""Fault-injection primitives and chaos-proxy failure scenarios.

Unit-tests the :mod:`repro.service.faults` crash-point grammar, proves
a crash point really SIGKILLs (in a sacrificial subprocess), and then
drives client/agent behavior through the :class:`ChaosProxy` -- slow
reads, half-closed replies, refused connections, and the
heartbeat-blackhole partition that forces a lease failover.
"""

import subprocess
import sys
import threading
import time

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service.agent import WorkerAgent
from repro.service.client import ServiceClient
from repro.service.faults import CRASH_POINTS_ENV, FaultInjector
from repro.service.http import make_server

from tests.service.chaos_proxy import ChaosProxy


def search_plan(seed=0, trials=4):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


class TestFaultInjector:
    def test_unarmed_points_never_crash(self):
        injector = FaultInjector(None)
        assert not injector.armed("agent.claimed")
        assert not any(injector.should_crash("agent.claimed")
                       for _ in range(100))

    def test_count_clause_triggers_on_the_exact_hit(self):
        injector = FaultInjector("agent.event=3")
        hits = [injector.should_crash("agent.event") for _ in range(5)]
        assert hits == [False, False, True, False, False]

    def test_count_clause_only_counts_its_own_name(self):
        injector = FaultInjector("agent.event=1")
        assert not injector.should_crash("agent.claimed")
        assert injector.should_crash("agent.event")

    def test_seeded_probability_is_reproducible(self):
        a = FaultInjector("hb~0.5@42")
        b = FaultInjector("hb~0.5@42")
        rolls_a = [a.should_crash("hb") for _ in range(50)]
        rolls_b = [b.should_crash("hb") for _ in range(50)]
        assert rolls_a == rolls_b
        assert any(rolls_a) and not all(rolls_a)

    def test_multiple_clauses_parse(self):
        injector = FaultInjector("a=2, b~0.1@7")
        assert injector.armed("a") and injector.armed("b")

    @pytest.mark.parametrize("spec", ["nonsense", "p~0.5", "x~2.0@1"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultInjector(spec)

    def test_crash_point_sigkills_the_process(self):
        code = (
            "from repro.service.faults import crash_point\n"
            "crash_point('die.here')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", CRASH_POINTS_ENV: "die.here=1"},
            capture_output=True, text=True, timeout=60, cwd=".",
        )
        assert proc.returncode == -9  # SIGKILL
        assert "survived" not in proc.stdout

    def test_unarmed_crash_point_is_a_noop(self):
        FaultInjector("other=1").crash_point("this")  # must return


@pytest.fixture()
def proxied_service(tmp_path):
    """A live coordinator plus a chaos proxy in front of it."""
    server = make_server(port=0, workers=1,
                         store_dir=str(tmp_path / "store"),
                         checkpoint_dir=str(tmp_path / "ckpt"),
                         lease_seconds=1.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    proxy = ChaosProxy(host, port)
    try:
        yield server.service, proxy
    finally:
        proxy.stop()
        server.shutdown()
        server.server_close()
        server.service.shutdown(wait=True, cancel_running=True)
        thread.join(timeout=10)


class TestChaosProxyScenarios:
    def test_refused_connections_are_retried_through(self, proxied_service):
        _, proxy = proxied_service
        client = ServiceClient(proxy.url, timeout=5.0, max_retries=3,
                               backoff=0.02)
        proxy.fail_next("refuse", 2)
        assert client.health()["status"] == "ok"

    def test_half_closed_reply_is_retried_through(self, proxied_service):
        _, proxy = proxied_service
        client = ServiceClient(proxy.url, timeout=5.0, max_retries=3,
                               backoff=0.02)
        proxy.fail_next("half-close", 1)
        assert client.health()["status"] == "ok"

    def test_slow_reads_time_out_then_recover(self, proxied_service):
        _, proxy = proxied_service
        client = ServiceClient(proxy.url, timeout=0.4, max_retries=1,
                               backoff=0.02)
        proxy.slow_delay = 1.5
        proxy.mode = "slow"
        with pytest.raises((TimeoutError, OSError)):
            client.health()
        proxy.mode = "pass"
        assert client.health()["status"] == "ok"

    def test_heartbeat_blackhole_forces_failover_to_local(
            self, proxied_service):
        service, proxy = proxied_service
        plan = search_plan(seed=21, trials=60)
        agent = WorkerAgent(
            proxy.url, name="partitioned", max_jobs=1, poll_seconds=0.05,
            client=ServiceClient(proxy.url, timeout=1.0, max_retries=1,
                                 backoff=0.02))
        agent.register()
        handle = service.submit(plan)
        runner = threading.Thread(target=agent.run, daemon=True)
        runner.start()
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if handle.info()["agent"] is not None:
                    break
                time.sleep(0.02)
            assert handle.info()["agent"] is not None, "agent never claimed"
            # Partition: every coordinator-bound byte now vanishes.
            proxy.mode = "blackhole"
            assert handle.wait(timeout=60) == "done"
            kinds = [type(e).__name__ for e in handle.events()]
            assert "LeaseExpired" in kinds
            assert handle.info()["agent"] is None  # finished locally
            assert handle.result_bytes() is not None
        finally:
            proxy.mode = "pass"
            agent.stop()
            runner.join(timeout=60)
            assert not runner.is_alive(), "agent wedged after partition"
