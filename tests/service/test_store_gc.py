"""Store garbage collection: budgets, journal liveness, crash safety.

The GC's one inviolable rule -- entries referenced by the journal's
non-terminal jobs are never removed -- is exercised the way it matters:
against the journal a SIGKILLed coordinator leaves behind, and against
a lease held by a remote agent that has already uploaded shard results
into the shared store.
"""

import json
import os
import time

import pytest

from repro.orchestration import run_shard
from repro.orchestration.shards import ShardSpec, plan_shards
from repro.plans import ExecutionPolicy, RunPlan, ScenarioPlan, SearchPlan, plan_hash
from repro.service import ResultStore, SearchService
from repro.service.journal import JobJournal
from repro.service.store import live_store_keys


def sweep_plan(trials=3, specs=(5.0, 7.5), **execution):
    return RunPlan(
        workload="sweep",
        search=SearchPlan(trials=trials),
        execution=ExecutionPolicy(**execution),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=tuple(specs)),
    )


def _age(path, seconds):
    """Backdate a store entry's mtime."""
    past = time.time() - seconds
    os.utime(path, (past, past))


class TestGCBudgets:
    def test_in_memory_store_refuses_gc(self):
        with pytest.raises(ValueError, match="persistent"):
            ResultStore().gc()

    def test_without_budgets_only_corrupt_entries_go(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("valid", {"a": 1})
        (tmp_path / "torn.json").write_bytes(b'{"a"')
        report = store.gc()
        assert report.removed_corrupt == ("torn",)
        assert report.removed_expired == ()
        assert report.kept == 1
        assert not (tmp_path / "torn.json").exists()
        assert (tmp_path / "valid.json").exists()

    def test_max_age_zero_reclaims_every_dead_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("dead1", {"a": 1})
        store.put("dead2", {"a": 2})
        report = store.gc(max_age_seconds=0)
        assert sorted(report.removed_expired) == ["dead1", "dead2"]
        assert len(store) == 0

    def test_max_age_spares_young_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("old", {"a": 1})
        store.put("young", {"a": 2})
        _age(tmp_path / "old.json", 3600)
        report = store.gc(max_age_seconds=600)
        assert report.removed_expired == ("old",)
        assert store.get_payload("young") == {"a": 2}

    def test_live_entries_survive_every_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("pinned", {"a": 1})
        store.put("dead", {"a": 2})
        _age(tmp_path / "pinned.json", 7200)
        _age(tmp_path / "dead.json", 7200)
        report = store.gc(live={"pinned"}, max_age_seconds=0, max_bytes=0)
        assert report.removed_expired == ("dead",)
        assert report.live == 1
        assert store.get_payload("pinned") == {"a": 1}

    def test_byte_budget_evicts_dead_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path)
        blob = store.put("oldest", {"pad": "x" * 100})
        store.put("middle", {"pad": "y" * 100})
        store.put("newest", {"pad": "z" * 100})
        _age(tmp_path / "oldest.json", 300)
        _age(tmp_path / "middle.json", 200)
        _age(tmp_path / "newest.json", 100)
        report = store.gc(max_bytes=2 * len(blob))
        assert report.removed_over_budget == ("oldest",)
        report = store.gc(max_bytes=0)
        assert sorted(report.removed_over_budget) == ["middle", "newest"]

    def test_dry_run_reports_without_deleting(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("dead", {"a": 1})
        (tmp_path / "torn.json").write_bytes(b"{")
        report = store.gc(max_age_seconds=0, dry_run=True)
        assert report.dry_run
        assert report.removed == 2
        assert report.reclaimed_bytes > 0
        assert (tmp_path / "dead.json").exists()
        assert (tmp_path / "torn.json").exists()
        assert "would reclaim" in report.format()

    def test_gc_purges_the_memory_cache_too(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("dead", {"a": 1})
        assert store.gc(max_age_seconds=0).removed == 1
        assert store.get_bytes("dead") is None

    def test_report_round_trips_to_dict(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("dead", {"a": 1})
        report = store.gc(max_age_seconds=0)
        document = json.loads(json.dumps(report.to_dict()))
        assert document["removed"] == 1
        assert document["removed_expired"] == ["dead"]

    def test_journal_file_is_not_a_store_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / "journal.jsonl").write_text('{"schema":1}\n')
        report = store.gc(max_age_seconds=0)
        assert report.examined == 0
        assert (tmp_path / "journal.jsonl").exists()


class TestJournalLiveness:
    def _journal(self, tmp_path, transitions):
        journal = JobJournal(tmp_path / "journal.jsonl")
        for op, digest, plan_doc in transitions:
            kwargs = {}
            if op == "queued":
                kwargs = {"plan_doc": plan_doc, "priority": 0}
            elif op == "leased":
                kwargs = {"agent": "a1"}
            journal.record(op, digest, f"job-{digest}", **kwargs)
        journal.close()
        return JobJournal.replay(journal.path)

    def test_non_terminal_sweep_pins_whole_plan_and_shard_hashes(
        self, tmp_path
    ):
        plan = sweep_plan()
        entries = self._journal(tmp_path, [
            ("queued", plan_hash(plan), plan.to_dict()),
            ("running", plan_hash(plan), None),
        ])
        live = live_store_keys(entries)
        assert plan_hash(plan) in live
        for shard in plan_shards(plan):
            assert shard.shard_hash in live

    def test_terminal_jobs_pin_nothing(self, tmp_path):
        plan = sweep_plan()
        for terminal in ("done", "failed", "cancelled"):
            entries = self._journal(tmp_path, [
                ("queued", plan_hash(plan), plan.to_dict()),
                (terminal, plan_hash(plan), None),
            ])
            assert live_store_keys(entries) == frozenset()
            (tmp_path / "journal.jsonl").unlink()

    def test_leased_and_lease_expired_jobs_stay_live(self, tmp_path):
        plan = sweep_plan()
        for non_terminal in ("leased", "lease-expired"):
            entries = self._journal(tmp_path, [
                ("queued", plan_hash(plan), plan.to_dict()),
                (non_terminal, plan_hash(plan), None),
            ])
            assert plan_hash(plan) in live_store_keys(entries)
            (tmp_path / "journal.jsonl").unlink()

    def test_search_plan_pins_its_single_shard(self, tmp_path):
        plan = RunPlan(
            workload="search",
            search=SearchPlan(trials=3),
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  specs_ms=(5.0,)),
        )
        entries = self._journal(tmp_path, [
            ("queued", plan_hash(plan), plan.to_dict()),
        ])
        live = live_store_keys(entries)
        assert live == {plan_hash(plan), ShardSpec.from_plan(plan).shard_hash}

    def test_unparseable_plan_keeps_the_recorded_hash(self, tmp_path):
        entries = self._journal(tmp_path, [
            ("queued", "cafe", {"workload": "not-a-workload"}),
        ])
        assert live_store_keys(entries) == frozenset({"cafe"})

    def test_state_marker_without_submission_stays_live(self, tmp_path):
        entries = self._journal(tmp_path, [("running", "feed", None)])
        assert live_store_keys(entries) == frozenset({"feed"})


class TestGCSafety:
    """The satellite wall: GC against crashed-coordinator journals."""

    def test_sigkilled_coordinator_leaves_live_entries_alone(self, tmp_path):
        """Journal says non-terminal -> nothing that job needs is GC'd."""
        plan = sweep_plan()
        shards = plan_shards(plan)
        store = ResultStore(tmp_path)
        # One shard finished (write-through landed) before the
        # coordinator was SIGKILLed mid-sweep; the whole-plan entry of
        # an unrelated *finished* job is dead.
        store.put(shards[0].shard_hash, run_shard(shards[0]))
        store.put("dead-finished-job", {"old": True})
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.record("queued", plan_hash(plan), "job-1",
                       plan_doc=plan.to_dict(), priority=0)
        journal.record("running", plan_hash(plan), "job-1")
        journal.close()  # SIGKILL: no terminal entry ever lands

        live = live_store_keys(JobJournal.replay(journal.path))
        report = store.gc(live=live, max_age_seconds=0, max_bytes=0)
        assert report.removed_expired == ("dead-finished-job",)
        assert store.get_payload(shards[0].shard_hash) is not None

        # The recovered job completes; a second sweep reclaims.
        with JobJournal(journal.path) as reopened:
            reopened.record("done", plan_hash(plan), "job-1")
        live = live_store_keys(JobJournal.replay(journal.path))
        report = store.gc(live=live, max_age_seconds=0)
        assert shards[0].shard_hash in report.removed_expired
        assert len(store) == 0

    def test_recovering_service_resumes_from_gc_survivors(self, tmp_path):
        """End-to-end: crash mid-sweep, GC, restart -> cached shards serve."""
        from repro.events import ShardCached

        store_dir = tmp_path / "store"
        plan = sweep_plan()
        shards = plan_shards(plan)
        # Simulate the crashed run's footprint: one shard stored, the
        # journal non-terminal (exactly what a SIGKILL preserves).
        ResultStore(store_dir).put(shards[0].shard_hash,
                                   run_shard(shards[0]))
        journal = JobJournal(store_dir / "journal.jsonl")
        journal.record("queued", plan_hash(plan), "job-1",
                       plan_doc=plan.to_dict(), priority=0)
        journal.record("running", plan_hash(plan), "job-1")
        journal.close()

        live = live_store_keys(JobJournal.replay(journal.path))
        ResultStore(store_dir).gc(live=live, max_age_seconds=0)

        events = []
        with SearchService(workers=1, store=ResultStore(store_dir)) as svc:
            svc.bus.subscribe(events.append)
            (job_id,) = svc.recovered_jobs
            svc.job(job_id).result(timeout=300)
        cached = [e for e in events if isinstance(e, ShardCached)]
        assert [e.shard_id for e in cached] == [shards[0].shard_id]

    def test_remote_agents_shard_uploads_stay_live_under_lease(
        self, tmp_path
    ):
        """Federation variant: a leased job pins its shards' entries."""
        store_dir = tmp_path / "store"
        plan = sweep_plan()
        shards = plan_shards(plan)
        with SearchService(workers=1, store=ResultStore(store_dir)) as svc:
            agent_id = svc.register_agent(name="gc-test")["agent_id"]
            handle = svc.submit(plan)
            claim = svc.claim_job(agent_id)
            assert claim is not None
            assert claim["store_dir"] == str(store_dir)

            # The agent's job child writes one shard through the shared
            # store, then the agent dies before completing the job.
            remote_store = ResultStore(claim["store_dir"])
            remote_store.put(shards[0].shard_hash, run_shard(shards[0]))

            live = live_store_keys(JobJournal.replay(
                store_dir / "journal.jsonl"
            ))
            report = ResultStore(store_dir).gc(live=live, max_age_seconds=0)
            assert report.removed == 0  # leased: everything is live

            # The agent finishes after all; now nothing pins the entries.
            from repro.service.store import encode_result

            result = run_campaign_result(plan)
            svc.complete_job(agent_id, handle.job_id, "done",
                             payload=encode_result(plan, result))
            assert handle.wait(timeout=60) == "done"
            live = live_store_keys(JobJournal.replay(
                store_dir / "journal.jsonl"
            ))
            report = ResultStore(store_dir).gc(live=live, max_age_seconds=0)
            assert shards[0].shard_hash in report.removed_expired


def run_campaign_result(plan):
    """Execute a sweep plan locally (the remote agent's stand-in)."""
    from repro.service.executor import execute_plan

    return execute_plan(plan)


class TestTilingMemoSweep:
    """``store gc`` owns the tiling-memo cache dir too: its entries are
    always-dead recomputable cache lines -- aged and budget-evicted
    alongside result entries, torn files removed as corrupt."""

    def _seed_tiling(self, store_dir, count=3):
        from repro.core.architecture import ConvLayerSpec
        from repro.fpga.tiling import TilingDiskCache, TilingVector

        cache = TilingDiskCache(str(store_dir / "tiling"))
        for n in range(1, count + 1):
            spec = ConvLayerSpec(in_channels=n, out_channels=4, kernel=3,
                                 in_rows=8, in_cols=8)
            cache.put(spec, 16, 64 * 1024, "max-reuse",
                      TilingVector(tm=1, tn=1, tr=1, tc=1))
        return sorted((store_dir / "tiling").glob("*.json"))

    def test_tiling_entries_age_out_as_pseudo_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("result", {"a": 1})
        files = self._seed_tiling(tmp_path)
        report = store.gc(live={"result"}, max_age_seconds=0)
        assert sorted(report.removed_expired) == sorted(
            f"tiling/{p.stem}" for p in files
        )
        assert not any(p.exists() for p in files)
        assert store.get_payload("result") == {"a": 1}

    def test_young_tiling_entries_survive_without_budgets(self, tmp_path):
        store = ResultStore(tmp_path)
        files = self._seed_tiling(tmp_path)
        report = store.gc()
        assert report.removed == 0
        assert all(p.exists() for p in files)
        # ... and an age budget they are younger than spares them too.
        assert store.gc(max_age_seconds=3600).removed == 0

    def test_torn_tiling_entry_is_swept_as_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        [intact, torn, empty] = self._seed_tiling(tmp_path)
        torn.write_bytes(torn.read_bytes()[:7])
        empty.write_bytes(b"")
        report = store.gc()
        assert sorted(report.removed_corrupt) == sorted(
            [f"tiling/{torn.stem}", f"tiling/{empty.stem}"]
        )
        assert intact.exists() and not torn.exists() and not empty.exists()

    def test_byte_budget_counts_and_evicts_tiling_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("result", {"pad": "x" * 4096})
        files = self._seed_tiling(tmp_path)
        for path in files:
            _age(path, 3600)   # older than the result entry
        report = store.gc(live={"result"}, max_bytes=4096)
        # Oldest dead entries go first: every tiling file precedes the
        # (live, hence untouchable) result entry.
        assert sorted(report.removed_over_budget) == sorted(
            f"tiling/{p.stem}" for p in files
        )
        assert store.get_payload("result") is not None
