"""ServiceClient retry, backoff, and wait semantics in isolation.

The chaos-proxy tests (``test_faults.py``) prove the retry loop works
against real torn sockets; these tests pin the *policy* -- how many
attempts, which failures are retryable, how the backoff grows, and
what ``wait`` raises -- without any network in the loop.
"""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.service.client import JobTimeoutError, ServiceClient, ServiceError


class FakeResponse:
    def __init__(self, payload):
        self._payload = json.dumps(payload).encode()

    def read(self):
        return self._payload

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


def http_error(code, body=b"boom"):
    return urllib.error.HTTPError(
        "http://x", code, "err", {}, io.BytesIO(body))


@pytest.fixture()
def client():
    return ServiceClient("http://127.0.0.1:1", timeout=1.0,
                         max_retries=3, backoff=0.01)


@pytest.fixture()
def no_sleep(monkeypatch):
    """Capture backoff sleeps instead of actually sleeping."""
    slept = []
    monkeypatch.setattr("repro.service.client.time.sleep", slept.append)
    return slept


def install_transport(monkeypatch, outcomes):
    """Serve each outcome (exception or payload dict) per attempt."""
    attempts = []

    def fake_urlopen(request, timeout=None):
        attempts.append(request)
        outcome = outcomes[min(len(attempts) - 1, len(outcomes) - 1)]
        if isinstance(outcome, Exception):
            raise outcome
        return FakeResponse(outcome)

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    return attempts


class TestConstruction:
    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            ServiceClient("http://x", max_retries=-1)

    def test_rejects_nonpositive_backoff(self):
        with pytest.raises(ValueError, match="backoff"):
            ServiceClient("http://x", backoff=0)

    def test_zero_retries_disables_retrying(self, monkeypatch, no_sleep):
        client = ServiceClient("http://x", max_retries=0)
        attempts = install_transport(monkeypatch, [ConnectionError("down")])
        with pytest.raises(ConnectionError):
            client.health()
        assert len(attempts) == 1


class TestRetryPolicy:
    def test_connection_errors_retried_then_raised(
            self, client, monkeypatch, no_sleep):
        attempts = install_transport(monkeypatch, [ConnectionError("down")])
        with pytest.raises(ConnectionError):
            client.health()
        assert len(attempts) == 1 + client.max_retries
        assert len(no_sleep) == client.max_retries  # sleep between, not after

    def test_recovery_mid_retries_returns_the_payload(
            self, client, monkeypatch, no_sleep):
        attempts = install_transport(monkeypatch, [
            ConnectionError("down"), TimeoutError("slow"), {"status": "ok"},
        ])
        assert client.health() == {"status": "ok"}
        assert len(attempts) == 3

    def test_5xx_is_retried(self, client, monkeypatch, no_sleep):
        attempts = install_transport(monkeypatch, [
            http_error(503), {"status": "ok"},
        ])
        assert client.health() == {"status": "ok"}
        assert len(attempts) == 2

    def test_5xx_exhaustion_raises_service_error(
            self, client, monkeypatch, no_sleep):
        install_transport(monkeypatch, [http_error(500)])
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.status == 500

    def test_4xx_is_an_answer_not_retried(
            self, client, monkeypatch, no_sleep):
        attempts = install_transport(monkeypatch, [http_error(404)])
        with pytest.raises(ServiceError) as excinfo:
            client.status("j-missing")
        assert excinfo.value.status == 404
        assert len(attempts) == 1
        assert no_sleep == []

    def test_non_idempotent_calls_never_retry(
            self, client, monkeypatch, no_sleep):
        attempts = install_transport(monkeypatch, [ConnectionError("down")])
        with pytest.raises(ConnectionError):
            client.shutdown()
        assert len(attempts) == 1

    def test_backoff_doubles_with_jitter_under_the_cap(
            self, client, monkeypatch, no_sleep):
        monkeypatch.setattr("repro.service.client.random.random", lambda: 1.0)
        client.max_retries = 10
        client.backoff = 0.1
        install_transport(monkeypatch, [ConnectionError("down")])
        with pytest.raises(ConnectionError):
            client.health()
        # Jitter factor pinned to its max (1.0): pure doubling, capped.
        assert no_sleep[:5] == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.6])
        assert max(no_sleep) <= 2.0
        # Jittered delays are never more than the deterministic curve.
        monkeypatch.setattr("repro.service.client.random.random",
                            lambda: 0.0)
        jittered = []
        monkeypatch.setattr("repro.service.client.time.sleep",
                            jittered.append)
        with pytest.raises(ConnectionError):
            client.health()
        assert all(low == pytest.approx(full / 2)
                   for low, full in zip(jittered, no_sleep))


class TestWait:
    def install_states(self, monkeypatch, client, states):
        calls = []

        def status(job_id):
            calls.append(job_id)
            state = states[min(len(calls) - 1, len(states) - 1)]
            return {"job_id": job_id, "state": state, "events": len(calls)}

        monkeypatch.setattr(client, "status", status)
        return calls

    def test_returns_on_terminal_state(self, client, monkeypatch, no_sleep):
        self.install_states(monkeypatch, client,
                            ["queued", "running", "done"])
        info = client.wait("j-1", timeout=5.0, poll=0.01)
        assert info["state"] == "done"
        assert len(no_sleep) == 2

    def test_poll_interval_grows_1p5x_to_the_cap(
            self, client, monkeypatch, no_sleep):
        self.install_states(monkeypatch, client, ["running"] * 12 + ["done"])
        client.wait("j-1", timeout=1000.0, poll=0.4, max_poll=2.0)
        assert no_sleep[0] == pytest.approx(0.4)
        assert no_sleep[1] == pytest.approx(0.6)
        assert no_sleep[2] == pytest.approx(0.9)
        assert max(no_sleep) <= 2.0
        assert no_sleep[-1] == pytest.approx(2.0)  # pinned at the cap

    def test_timeout_raises_jobtimeouterror_with_final_info(
            self, client, monkeypatch):
        self.install_states(monkeypatch, client, ["running"])
        with pytest.raises(JobTimeoutError) as excinfo:
            client.wait("j-stuck", timeout=0.05, poll=0.01)
        assert isinstance(excinfo.value, TimeoutError)  # legacy handlers
        assert excinfo.value.info["state"] == "running"
        assert excinfo.value.info["job_id"] == "j-stuck"
        assert "j-stuck" in str(excinfo.value)

    def test_terminal_on_first_probe_never_sleeps(
            self, client, monkeypatch, no_sleep):
        self.install_states(monkeypatch, client, ["failed"])
        assert client.wait("j-1", timeout=5.0)["state"] == "failed"
        assert no_sleep == []
