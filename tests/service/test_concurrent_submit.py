"""Concurrent submissions: no lost jobs, correct dedup, identical bytes.

N threads hammer one service with a mix of identical and distinct
plans, on both execution back-ends.  The invariants: every submission
gets a handle that completes; identical plans coalesce onto exactly one
job; distinct plans each get their own; and every handle of the same
plan serves byte-identical result bytes.
"""

import threading

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service import SearchService

THREADS = 8
DISTINCT = 3


def search_plan(seed=0, trials=3):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_concurrent_identical_and_distinct_submits(backend):
    shared = search_plan(seed=100)
    distinct = [search_plan(seed=s) for s in range(DISTINCT)]
    start = threading.Barrier(THREADS)
    handles_by_thread = [None] * THREADS
    errors = []

    def submitter(thread_index, service):
        try:
            start.wait(timeout=30)
            mine = [service.submit(shared)]
            mine.append(
                service.submit(distinct[thread_index % DISTINCT])
            )
            mine.append(service.submit(shared))
            handles_by_thread[thread_index] = mine
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    with SearchService(workers=2, backend=backend) as service:
        threads = [
            threading.Thread(target=submitter, args=(i, service))
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert all(h is not None for h in handles_by_thread)

        all_handles = [h for group in handles_by_thread for h in group]
        for handle in all_handles:
            assert handle.wait(timeout=300) == "done"

        # Dedup: every submission of the shared plan coalesced onto one
        # job; distinct plans each own exactly one.
        shared_ids = {
            h.job_id for group in handles_by_thread
            for h in (group[0], group[2])
        }
        assert len(shared_ids) == 1
        distinct_ids = {
            group[1].job_id for group in handles_by_thread
        }
        assert len(distinct_ids) == DISTINCT
        assert shared_ids.isdisjoint(distinct_ids)

        # No lost jobs, none invented: exactly 1 + DISTINCT exist.
        assert len(service.jobs()) == 1 + DISTINCT

        # Byte-identity per plan across every handle.
        shared_bytes = {
            h.result_bytes(timeout=300)
            for group in handles_by_thread for h in (group[0], group[2])
        }
        assert len(shared_bytes) == 1
        by_distinct_id = {}
        for group in handles_by_thread:
            by_distinct_id.setdefault(group[1].job_id, set()).add(
                group[1].result_bytes(timeout=300)
            )
        assert all(len(blobs) == 1 for blobs in by_distinct_id.values())
        # Distinct seeds really produced distinct results.
        assert len({b.pop() for b in by_distinct_id.values()}) == DISTINCT


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_locked_info_snapshots_stay_consistent_under_load(backend):
    """Hammer JobHandle.info() while jobs transition underneath it."""
    stop = threading.Event()
    torn = []

    with SearchService(workers=2, backend=backend) as service:
        handles = [service.submit(search_plan(seed=s, trials=4))
                   for s in range(4)]

        def reader():
            while not stop.is_set():
                for handle in handles:
                    info = handle.info()
                    if info["state"] == "done" and info["error"] is not None:
                        torn.append(info)
                    if info["state"] == "failed" and info["error"] is None:
                        torn.append(info)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for handle in handles:
                assert handle.wait(timeout=300) == "done"
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
    assert torn == []
