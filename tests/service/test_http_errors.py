"""HTTP error paths, parametrized over the sync and async front ends.

Every test here runs twice -- once against the threaded
``http.server`` front end and once against the asyncio gateway -- so
the two surfaces cannot drift apart on status codes, bodies, or
headers for the failure modes clients actually hit.
"""

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.service.client import ServiceClient
from repro.service.gateway import GatewayRunner
from repro.service.http import MAX_BODY_BYTES, make_server
from repro.service.tenants import Tenant, TenantRegistry

FRONT_ENDS = ("sync", "async")


def search_plan(seed=0, trials=2):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


class _FrontEnd:
    """A live server of either flavour, with a uniform teardown."""

    def __init__(self, kind, tmp_path, tenants=None, workers=1):
        self.kind = kind
        if kind == "async":
            self._runner = GatewayRunner(
                workers=workers, tenants=tenants,
                checkpoint_dir=str(tmp_path / "ckpt")).start()
            self.base_url = self._runner.base_url
        else:
            self._server = make_server(
                port=0, workers=workers, tenants=tenants,
                checkpoint_dir=str(tmp_path / "ckpt"))
            self._thread = threading.Thread(
                target=self._server.serve_forever, daemon=True)
            self._thread.start()
            host, port = self._server.server_address[:2]
            self.base_url = f"http://{host}:{port}"
        self.host, _, port = self.base_url.rpartition("//")[2].partition(":")
        self.port = int(port)

    def stop(self):
        if self.kind == "async":
            self._runner.stop()
        else:
            self._server.shutdown()
            self._server.server_close()
            self._server.service.shutdown(wait=True, cancel_running=True)
            self._thread.join(timeout=10)


@pytest.fixture(params=FRONT_ENDS)
def open_front_end(request, tmp_path):
    """A front end with no tenant registry (open access)."""
    front = _FrontEnd(request.param, tmp_path)
    yield front
    front.stop()


@pytest.fixture(params=FRONT_ENDS)
def tenant_front_end(request, tmp_path):
    """A front end requiring API keys, with tight quotas on 'acme'."""
    registry = TenantRegistry([
        Tenant(name="acme", api_key="k-acme", max_running=1, max_queued=2),
        Tenant(name="beta", api_key="k-beta"),
    ])
    front = _FrontEnd(request.param, tmp_path, tenants=registry)
    yield front
    front.stop()


def post(base_url, path, payload, headers=None):
    body = payload if isinstance(payload, bytes) \
        else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"{base_url}{path}", data=body,
        headers={"Content-Type": "application/json", **(headers or {})})
    return urllib.request.urlopen(request, timeout=10)


class TestMalformedRequests:
    def test_malformed_json_is_400(self, open_front_end):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(open_front_end.base_url, "/jobs", b"{not json")
        assert err.value.code == 400
        assert "error" in json.loads(err.value.read())

    def test_json_without_a_plan_is_400(self, open_front_end):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(open_front_end.base_url, "/jobs", {"nope": 1})
        assert err.value.code == 400

    def test_non_object_json_is_400(self, open_front_end):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(open_front_end.base_url, "/jobs", b"[1, 2, 3]")
        assert err.value.code == 400

    def test_invalid_since_parameter_is_400(self, open_front_end):
        client = ServiceClient(open_front_end.base_url)
        info = client.submit(search_plan())
        client.wait(info["job_id"], timeout=120)
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{open_front_end.base_url}/jobs/{info['job_id']}"
                "/events?since=banana", timeout=10)
        assert err.value.code == 400


class TestUnknownRoutes:
    @pytest.mark.parametrize("path", ["/nope", "/agents/x", "/jobs/x/what"])
    def test_unknown_get_routes_are_404(self, open_front_end, path):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{open_front_end.base_url}{path}", timeout=10)
        assert err.value.code == 404

    def test_unknown_post_routes_are_404(self, open_front_end):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(open_front_end.base_url, "/nope", {"x": 1})
        assert err.value.code == 404

    def test_unknown_job_id_is_404(self, open_front_end):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{open_front_end.base_url}/jobs/j-missing", timeout=10)
        assert err.value.code == 404


class TestOversizedPayloads:
    def test_declared_oversize_is_refused_with_413(self, open_front_end):
        # Declare a body one byte over the cap; both front ends must
        # refuse before reading it, so no body is ever sent here.
        conn = http.client.HTTPConnection(
            open_front_end.host, open_front_end.port, timeout=10)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 413
        finally:
            conn.close()

    def test_negative_content_length_is_400(self, open_front_end):
        conn = http.client.HTTPConnection(
            open_front_end.host, open_front_end.port, timeout=10)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", "-5")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()


class TestApiKeys:
    def test_missing_key_is_401(self, tenant_front_end):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(tenant_front_end.base_url, "/jobs",
                 {"plan": search_plan().to_dict()})
        assert err.value.code == 401

    def test_unknown_key_is_403(self, tenant_front_end):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(tenant_front_end.base_url, "/jobs",
                 {"plan": search_plan().to_dict()},
                 headers={"X-API-Key": "k-wrong"})
        assert err.value.code == 403

    def test_reads_require_a_key_too(self, tenant_front_end):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{tenant_front_end.base_url}/jobs/j-x", timeout=10)
        assert err.value.code == 401

    def test_health_and_metrics_stay_open(self, tenant_front_end):
        for path in ("/health", "/metrics"):
            with urllib.request.urlopen(
                    f"{tenant_front_end.base_url}{path}",
                    timeout=10) as resp:
                assert resp.status == 200

    def test_valid_key_is_admitted_and_attributed(self, tenant_front_end):
        client = ServiceClient(tenant_front_end.base_url, api_key="k-beta")
        info = client.submit(search_plan(seed=50))
        assert info["tenant"] == "beta"
        assert client.wait(info["job_id"], timeout=120)["state"] == "done"


class TestQuotaBreaches:
    def test_running_quota_is_429_with_retry_after(self, tenant_front_end):
        client = ServiceClient(tenant_front_end.base_url, max_retries=0,
                               api_key="k-acme")
        blocker = client.submit(search_plan(seed=60, trials=60))
        try:
            deadline = time.monotonic() + 60
            while client.status(blocker["job_id"])["state"] != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.05)
            with pytest.raises(urllib.error.HTTPError) as err:
                post(tenant_front_end.base_url, "/jobs",
                     {"plan": search_plan(seed=61).to_dict()},
                     headers={"X-API-Key": "k-acme"})
            assert err.value.code == 429
            assert float(err.value.headers["Retry-After"]) > 0
            body = json.loads(err.value.read())
            assert body["tenant"] == "acme"
            assert body["limit"] == "running"
        finally:
            client.cancel(blocker["job_id"])

    def test_quota_is_per_tenant_not_global(self, tenant_front_end):
        acme = ServiceClient(tenant_front_end.base_url, max_retries=0,
                             api_key="k-acme")
        beta = ServiceClient(tenant_front_end.base_url, api_key="k-beta")
        blocker = acme.submit(search_plan(seed=62, trials=60))
        try:
            deadline = time.monotonic() + 60
            while acme.status(blocker["job_id"])["state"] != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.05)
            # acme is at its running limit; beta is unaffected.
            info = beta.submit(search_plan(seed=63))
            assert info["tenant"] == "beta"
            assert beta.wait(info["job_id"], timeout=120)["state"] == "done"
        finally:
            acme.cancel(blocker["job_id"])
