"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.configs import MNIST_CONFIG
from repro.core.architecture import Architecture
from repro.core.search_space import SearchSpace
from repro.fpga.device import PYNQ_Z1, FpgaDevice
from repro.fpga.platform import Platform
from repro.fpga.tiling import TilingDesigner


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def mnist_space() -> SearchSpace:
    """The paper's MNIST search space (Table 2)."""
    return SearchSpace.from_config(MNIST_CONFIG)


@pytest.fixture
def small_arch() -> Architecture:
    """A small 2-layer architecture on 12x12 inputs."""
    return Architecture.from_choices(
        filter_sizes=[3, 3],
        filter_counts=[4, 8],
        input_size=12,
        input_channels=1,
        num_classes=10,
    )


@pytest.fixture
def mnist_arch() -> Architecture:
    """A mid-sized MNIST-space architecture."""
    return Architecture.from_choices(
        filter_sizes=[5, 7, 5, 7],
        filter_counts=[9, 18, 18, 36],
        input_size=28,
        input_channels=1,
        num_classes=10,
    )


@pytest.fixture
def pynq_platform() -> Platform:
    """Single PYNQ-Z1 board."""
    return Platform.single(PYNQ_Z1)


@pytest.fixture
def tiny_device() -> FpgaDevice:
    """A deliberately tiny FPGA for stress-testing resource limits."""
    return FpgaDevice(
        name="tiny",
        dsp_slices=16,
        bram_kbytes=32,
        bandwidth_gbps=1.0,
        clock_mhz=100.0,
    )


@pytest.fixture
def designer() -> TilingDesigner:
    """Default (max-reuse) tiling designer."""
    return TilingDesigner()
