"""Component registries: lookup, decorator registration, plan plumbing."""

import pytest

from repro.registry import (
    CONTROLLERS,
    DATASETS,
    DEVICES,
    ESTIMATORS,
    EVALUATORS,
    Registry,
)


class TestBuiltins:
    def test_builtin_entries_load_lazily(self):
        assert set(CONTROLLERS) >= {"lstm", "tabular", "random"}
        assert set(EVALUATORS) >= {"surrogate", "trained"}
        assert set(ESTIMATORS) >= {"analytical", "simulate"}
        assert set(DATASETS) >= {"mnist", "cifar10", "imagenet"}
        assert set(DEVICES) >= {"pynq-z1", "xc7a50t", "xc7z020", "xczu9eg"}

    def test_device_catalog_is_the_registry(self):
        from repro.fpga.device import DEVICE_CATALOG

        assert DEVICE_CATALOG is DEVICES

    def test_dataset_names_served_from_registry(self):
        from repro.datasets import dataset_names

        assert dataset_names() == DATASETS.names()

    def test_miss_lists_known_names(self):
        with pytest.raises(KeyError, match="lstm"):
            CONTROLLERS["gru"]

    def test_miss_suggests_the_closest_name(self):
        with pytest.raises(KeyError, match="did you mean 'lstm'"):
            CONTROLLERS["lsmt"]
        with pytest.raises(KeyError, match="did you mean 'pynq-z1'"):
            DEVICES["pynq-z2"]
        with pytest.raises(KeyError,
                           match="did you mean 'xc7z020-ddr-wide'"):
            DEVICES["xc7z020-ddr-wid"]

    def test_miss_with_no_close_name_has_no_hint(self):
        with pytest.raises(KeyError) as excinfo:
            CONTROLLERS["qqqqqqqqqq"]
        assert "did you mean" not in str(excinfo.value)


class TestMappingProtocol:
    def test_len_iter_contains(self):
        assert len(DEVICES) >= 4
        assert "pynq-z1" in DEVICES
        assert "virtex" not in DEVICES
        assert sorted(DEVICES) == DEVICES.names()

    def test_items_and_get(self):
        assert DEVICES.get("virtex") is None
        assert dict(DEVICES.items())["pynq-z1"] is DEVICES["pynq-z1"]


class TestThirdPartyRegistration:
    def test_decorator_registration_and_unregister(self):
        registry = Registry("widget")

        @registry.register("one")
        def make_one():
            return 1

        assert registry["one"] is make_one
        registry.unregister("one")
        assert "one" not in registry

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.register("w", object())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("w", object())

    def test_same_object_reregistration_is_noop(self):
        registry = Registry("widget")
        sentinel = object()
        registry.register("w", sentinel)
        registry.register("w", sentinel)  # e.g. a module re-import
        assert registry["w"] is sentinel

    def test_replace_overrides(self):
        registry = Registry("widget")
        registry.register("w", 1)
        registry.register("w", 2, replace=True)
        assert registry["w"] == 2

    def test_bad_names_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError, match="non-empty"):
            registry.register("", object())

    def test_registered_device_reaches_plans_and_shards(self):
        """The extension story end to end: a third-party device becomes
        addressable from plan data with no signature changes."""
        from repro.fpga.device import XC7Z020
        from repro.orchestration import ShardSpec
        from repro.plans import ScenarioPlan

        custom = XC7Z020.scaled(0.5, name="half-zynq")
        DEVICES.register("half-zynq", custom)
        try:
            scenario = ScenarioPlan(devices=("half-zynq",))
            assert scenario.devices == ("half-zynq",)
            spec = ShardSpec(dataset="mnist", device="half-zynq",
                             kind="nas", trials=3)
            assert spec.to_plan().scenario.devices == ("half-zynq",)
        finally:
            DEVICES.unregister("half-zynq")

    def test_registered_controller_builds_searches(self):
        """A third-party controller registered under a new key drives a
        real (tiny) search via the plan builders."""
        import numpy as np

        from repro.core.controller import RandomController
        from repro.orchestration import ShardSpec, build_search

        @CONTROLLERS.register("test-random-clone")
        def _factory(space, seed):
            del seed
            return RandomController(space)

        try:
            spec = ShardSpec(dataset="mnist", device="pynq-z1", kind="nas",
                             trials=3, controller="test-random-clone")
            result = build_search(spec).run(3, np.random.default_rng(0))
            assert len(result.trials) == 3
        finally:
            CONTROLLERS.unregister("test-random-clone")
