"""Golden event streams: one plan, three surfaces, one typed sequence.

The redesign's core invariant: Session, Campaign and SearchService all
execute a single-search plan through the same engine, so the typed
search-level event sequence -- classes, scopes *and* messages -- must be
identical whichever surface ran it.  Checked for the plain, batched and
checkpointed (sharded-runtime) variants.
"""

import dataclasses

import pytest

from repro.api import Session
from repro.events import SearchFinished, SearchStarted
from repro.orchestration import Campaign, ShardSpec
from repro.plans import ExecutionPolicy, RunPlan, ScenarioPlan, SearchPlan
from repro.service import SearchService

TRIALS = 5


def single_search_plan(**execution):
    return RunPlan(
        workload="search",
        search=SearchPlan(seed=3, trials=TRIALS),
        execution=ExecutionPolicy(**execution),
        scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                              specs_ms=(5.0,)),
    )


def search_events(events):
    """The search-level subsequence, as comparable (type, scope, message)."""
    return [
        (type(e).__name__, e.scope, e.message)
        for e in events
        if isinstance(e, (SearchStarted, SearchFinished))
        and e.scope != "sweep"
    ]


def via_session(plan):
    events = []
    session = Session.from_plan(plan)
    session.subscribe(events.append)
    session.run()
    return search_events(events)


def via_campaign(plan):
    events = []
    Campaign(
        [ShardSpec.from_plan(plan)],
        checkpoint_dir=plan.execution.checkpoint_dir,
        checkpoint_every=plan.execution.checkpoint_every,
        progress=events.append,
    ).run(max_workers=1)
    return search_events(events)


def via_service(plan):
    with SearchService(workers=1) as service:
        handle = service.submit(plan)
        handle.result(timeout=300)
        return search_events(handle.events())


VARIANTS = {
    "plain": {},
    "batched": {"batch_size": 2},
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_all_surfaces_emit_the_identical_search_sequence(variant):
    plan = single_search_plan(**VARIANTS[variant])
    session_seq = via_session(plan)
    campaign_seq = via_campaign(plan)
    service_seq = via_service(plan)
    assert session_seq == campaign_seq == service_seq
    # And the sequence itself is the expected golden shape.
    shard_id = ShardSpec.from_plan(plan).shard_id
    assert session_seq == [
        ("SearchStarted", shard_id, "running in-process"),
        ("SearchFinished", shard_id, f"{TRIALS} trials"),
    ]


def test_checkpointed_variant_matches_across_surfaces(tmp_path):
    """The sharded/durable runtime: same sequence, snapshots on disk.

    Each surface gets its own checkpoint directory so no surface
    resumes another's snapshot; the typed event sequence must still be
    identical (shard ids do not encode the checkpoint location).
    """
    sequences = {}
    for name, runner in (("session", via_session),
                         ("campaign", via_campaign),
                         ("service", via_service)):
        plan = single_search_plan(
            checkpoint_dir=str(tmp_path / name), checkpoint_every=2
        )
        sequences[name] = runner(plan)
        assert list((tmp_path / name).glob("*.checkpoint.json"))
    assert sequences["session"] == sequences["campaign"] \
        == sequences["service"]


def test_session_still_wraps_search_events_in_run_events():
    """Session adds the workload envelope around the shared sequence."""
    events = []
    session = Session.from_plan(single_search_plan())
    session.subscribe(events.append)
    session.run()
    kinds = [(e.kind, e.scope) for e in events]
    assert ("start", "search") in kinds
    assert ("finish", "search") in kinds
    start = kinds.index(("start", "search"))
    finish = kinds.index(("finish", "search"))
    inner = [k for k, _ in kinds[start + 1:finish]]
    assert inner == ["start", "finish"]  # the shard's start/finish
