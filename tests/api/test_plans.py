"""RunPlan round-trips: from_dict(to_dict(plan)) must be identity.

The property Hypothesis pins here is the foundation of the declarative
API: a plan dumped by one process (``--dump-plan``) and parsed by
another (``repro run``) must describe the byte-identical run, so the
dict/JSON round-trip has to be lossless for every representable plan.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plans import (
    PLAN_SCHEMA,
    WORKLOADS,
    ExecutionPolicy,
    RunPlan,
    ScenarioPlan,
    SearchPlan,
    load_plan,
    save_plan,
    spec_key,
)

DATASET_NAMES = ("mnist", "cifar10", "imagenet", "mobilenet")
DEVICE_NAMES = ("pynq-z1", "xc7a50t", "xc7z020", "xczu9eg",
                "xc7z020-ddr-wide", "xc7z020-ddr-narrow")

search_plans = st.builds(
    SearchPlan,
    controller=st.sampled_from(("lstm", "tabular", "random")),
    evaluator=st.sampled_from(("surrogate", "trained")),
    estimator=st.sampled_from(("analytical", "simulate")),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    trials=st.one_of(st.none(), st.integers(min_value=1, max_value=10_000)),
    min_latency_fallback=st.booleans(),
)

checkpointing = st.one_of(
    st.tuples(st.none(), st.none()),
    st.tuples(st.text(min_size=1, max_size=40), st.none()),
    # A cadence is only valid together with a directory.
    st.tuples(st.text(min_size=1, max_size=40),
              st.integers(min_value=1, max_value=1000)),
)

execution_policies = st.tuples(
    st.integers(min_value=1, max_value=256),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
    checkpointing,
).map(lambda t: ExecutionPolicy(
    batch_size=t[0], eval_workers=t[1], shard_workers=t[2],
    checkpoint_dir=t[3][0], checkpoint_every=t[3][1],
))

scenario_plans = st.builds(
    ScenarioPlan,
    datasets=st.lists(st.sampled_from(DATASET_NAMES), max_size=3,
                      unique=True).map(tuple),
    devices=st.lists(st.sampled_from(DEVICE_NAMES), max_size=4,
                     unique=True).map(tuple),
    boards=st.integers(min_value=1, max_value=8),
    seeds=st.lists(st.integers(min_value=0, max_value=10_000),
                   max_size=4, unique=True).map(tuple),
    specs_ms=st.lists(
        st.floats(min_value=0.001, max_value=1000.0,
                  allow_nan=False, allow_infinity=False),
        max_size=4, unique=True,
    ).map(tuple),
    include_nas=st.booleans(),
    surrogate_seed=st.one_of(st.none(),
                             st.integers(min_value=0, max_value=10_000)),
)

run_plans = st.builds(
    RunPlan,
    workload=st.sampled_from(WORKLOADS),
    search=search_plans,
    execution=execution_policies,
    scenario=scenario_plans,
    output=st.one_of(st.none(), st.text(min_size=1, max_size=40)),
)


class TestRoundTrip:
    @given(plan=run_plans)
    @settings(max_examples=200, deadline=None)
    def test_dict_round_trip_is_identity(self, plan):
        assert RunPlan.from_dict(plan.to_dict()) == plan

    @given(plan=run_plans)
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip_is_identity(self, plan):
        assert RunPlan.from_json(plan.to_json()) == plan

    @given(plan=run_plans)
    @settings(max_examples=50, deadline=None)
    def test_round_trip_twice_is_stable(self, plan):
        once = RunPlan.from_dict(plan.to_dict())
        assert RunPlan.from_dict(once.to_dict()) == once

    def test_file_round_trip(self, tmp_path):
        plan = RunPlan(
            workload="sweep",
            search=SearchPlan(seed=3, trials=20),
            execution=ExecutionPolicy(batch_size=4, shard_workers=2,
                                      checkpoint_dir="ck"),
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  seeds=(0, 1), specs_ms=(5.0, 2.5)),
            output="artifact.json",
        )
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        assert load_plan(path) == plan

    def test_json_lists_become_tuples(self):
        """A plan parsed from JSON (lists everywhere) equals the
        tuple-built original -- the lossless-through-JSON guarantee."""
        plan = RunPlan.from_dict({
            "workload": "sweep",
            "scenario": {"datasets": ["mnist"], "devices": ["pynq-z1"],
                         "seeds": [0, 1], "specs_ms": [5.0]},
        })
        assert plan.scenario.datasets == ("mnist",)
        assert plan.scenario.seeds == (0, 1)
        assert isinstance(plan.scenario.specs_ms, tuple)


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            RunPlan(workload="figure99")

    def test_unknown_controller_rejected(self):
        with pytest.raises(KeyError, match="controller"):
            SearchPlan(controller="transformer")

    def test_unknown_dataset_rejected_at_construction(self):
        with pytest.raises(KeyError, match="svhn"):
            ScenarioPlan(datasets=("svhn",))

    def test_unknown_device_rejected_at_construction(self):
        with pytest.raises(KeyError, match="vu19p"):
            ScenarioPlan(devices=("vu19p",))

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown SearchPlan keys"):
            SearchPlan.from_dict({"sede": 3})

    def test_unknown_key_error_names_key_section_and_fields(self):
        """The contract: offending key + plan section + valid fields."""
        with pytest.raises(ValueError) as err:
            ExecutionPolicy.from_dict({"eval_worker": 2})
        message = str(err.value)
        assert "'eval_worker'" in message          # the offending key
        assert "'execution' plan section" in message  # its section
        assert "batch_size" in message             # the valid fields...
        assert "shard_workers" in message
        assert "checkpoint_dir" in message

    def test_unknown_key_error_suggests_the_closest_field(self):
        with pytest.raises(ValueError, match="did you mean 'eval_workers'"):
            ExecutionPolicy.from_dict({"eval_worker": 2})
        with pytest.raises(ValueError, match="did you mean 'seed'"):
            SearchPlan.from_dict({"sede": 3})

    def test_unknown_nested_key_rejected_through_runplan(self):
        """A typo nested in a full plan document fails loudly too."""
        data = RunPlan().to_dict()
        data["execution"]["eval_worker"] = 4
        del data["execution"]["eval_workers"]
        with pytest.raises(ValueError, match="eval_worker"):
            RunPlan.from_dict(data)

    def test_unknown_toplevel_key_names_the_plan_section(self):
        with pytest.raises(ValueError, match="'plan' plan section"):
            RunPlan.from_dict({"workload": "search", "extra": 1})

    def test_unknown_shard_spec_key_rejected(self):
        from repro.orchestration import ShardSpec

        with pytest.raises(ValueError, match="did you mean 'spec_ms'"):
            ShardSpec.from_dict({
                "dataset": "mnist", "device": "pynq-z1",
                "kind": "fnas", "specms": 5.0,
            })

    def test_unsupported_schema_rejected(self):
        data = RunPlan().to_dict()
        data["schema"] = PLAN_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            RunPlan.from_dict(data)

    def test_non_positive_execution_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            ExecutionPolicy(batch_size=0)

    def test_plans_are_frozen(self):
        plan = RunPlan()
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.workload = "sweep"


class TestSpecKey:
    def test_integral_specs_drop_the_point(self):
        assert spec_key(10.0) == "10"
        assert spec_key(2.0) == "2"

    def test_fractional_specs_keep_digits(self):
        assert spec_key(2.5) == "2.5"
        assert spec_key(0.125) == "0.125"

    def test_keys_are_bijective_over_paper_specs(self):
        specs = [20.0, 10.0, 5.0, 2.0, 1.0, 4.0, 2.5, 1.5, 7.5, 0.125]
        keys = {spec_key(s) for s in specs}
        assert len(keys) == len(specs)
        assert all(float(spec_key(s)) == s for s in specs)

    @given(spec=st.floats(min_value=1e-6, max_value=1e6,
                          allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, deadline=None)
    def test_keys_round_trip_exactly_for_any_float(self, spec):
        """float(spec_key(s)) == s bit-for-bit -- so serialized outcomes
        never collapse distinct specs or lose lookup precision."""
        assert float(spec_key(spec)) == spec
