"""Session facade: plan-driven runs must equal the legacy kwarg paths.

The golden-ledger acceptance criterion of the RunPlan redesign: for
table1 and sweep, a run built from a plan (including one that went
through a JSON round-trip, as ``--dump-plan`` / ``repro run`` do) must
produce trial ledgers byte-identical to the legacy kwarg entry points.
"""

import json

import pytest

from repro.api import Session, build_search, run_plan
from repro.core.serialization import search_result_to_dict
from repro.plans import (
    ExecutionPolicy,
    RunPlan,
    ScenarioPlan,
    SearchPlan,
)

TRIALS = 6


def ledger_bytes(result) -> bytes:
    """Canonical byte form of a search ledger (no wall-clock noise)."""
    payload = search_result_to_dict(result)
    payload.pop("wall_seconds", None)
    return json.dumps(payload, sort_keys=True).encode()


class TestTable1Equivalence:
    def test_plan_run_matches_legacy_kwargs(self):
        from repro.experiments.table1 import run_table1, table1_plan

        legacy = run_table1(trials=TRIALS, seed=1)
        plan = table1_plan(trials=TRIALS, seed=1)
        # The JSON round-trip is part of the contract: --dump-plan then
        # `repro run` must reproduce the run exactly.
        replayed = RunPlan.from_json(plan.to_json())
        planned = Session.from_plan(replayed).run()
        assert ledger_bytes(planned.outcome.nas) == \
            ledger_bytes(legacy.outcome.nas)
        assert sorted(planned.outcome.fnas) == sorted(legacy.outcome.fnas)
        for spec, result in legacy.outcome.fnas.items():
            assert ledger_bytes(planned.outcome.fnas_for(spec)) == \
                ledger_bytes(result)

    def test_rows_match_legacy(self):
        from repro.experiments.table1 import run_table1, table1_plan

        legacy = run_table1(trials=TRIALS, seed=0)
        planned = run_plan(table1_plan(trials=TRIALS, seed=0))
        assert planned.rows == legacy.rows


class TestSweepEquivalence:
    PLAN = RunPlan(
        workload="sweep",
        search=SearchPlan(trials=TRIALS),
        scenario=ScenarioPlan(
            datasets=("mnist",), devices=("pynq-z1",), seeds=(0, 1),
            specs_ms=(5.0,), include_nas=True,
        ),
    )

    def test_plan_sweep_matches_legacy_campaign(self):
        from repro.orchestration import run_campaign, shard_grid

        legacy = run_campaign(
            shard_grid(["mnist"], ["pynq-z1"], seeds=[0, 1],
                       specs_ms=[5.0], include_nas=True, trials=TRIALS)
        )
        planned = Session.from_plan(
            RunPlan.from_json(self.PLAN.to_json())
        ).run()
        assert [o.spec.shard_id for o in planned.outcomes] == \
            [o.spec.shard_id for o in legacy.outcomes]
        for mine, theirs in zip(planned.outcomes, legacy.outcomes):
            assert ledger_bytes(mine.result) == ledger_bytes(theirs.result)

    def test_sweep_writes_artifact_from_plan(self, tmp_path):
        import dataclasses

        plan = dataclasses.replace(
            self.PLAN, output=str(tmp_path / "artifact.json")
        )
        result = run_plan(plan)
        artifact = json.loads((tmp_path / "artifact.json").read_text())
        assert len(artifact["shards"]) == len(result.outcomes) == 4


class TestSearchWorkload:
    def test_single_search_plan_runs_and_checkpoints(self, tmp_path):
        plan = RunPlan(
            workload="search",
            search=SearchPlan(seed=2, trials=8),
            execution=ExecutionPolicy(checkpoint_dir=str(tmp_path),
                                      checkpoint_every=4),
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  specs_ms=(5.0,)),
        )
        result = run_plan(plan)
        assert len(result.trials) >= 8
        assert list(tmp_path.glob("*.checkpoint.json"))
        # Re-running resumes from the snapshot and returns the same ledger.
        again = run_plan(plan)
        assert ledger_bytes(again) == ledger_bytes(result)

    def test_shard_spec_plan_duality(self):
        """A ShardSpec is a thin wrapper over a serialized plan: both
        spellings build searches with identical trajectories."""
        import numpy as np

        from repro.orchestration import ShardSpec
        from repro.orchestration import build_search as build_from_spec

        spec = ShardSpec(dataset="mnist", device="pynq-z1", kind="fnas",
                         spec_ms=5.0, seed=4, trials=5)
        assert ShardSpec.from_plan(spec.to_plan()) == spec
        via_spec = build_from_spec(spec).run(5, np.random.default_rng(4))
        via_plan = build_search(spec.to_plan()).run(
            5, np.random.default_rng(4)
        )
        assert ledger_bytes(via_spec) == ledger_bytes(via_plan)


class TestSessionEvents:
    def test_paired_runs_stream_search_events(self):
        from repro.experiments.table1 import table1_plan

        events = []
        session = Session.from_plan(table1_plan(trials=3))
        session.subscribe(events.append)
        session.run()
        kinds = [(e.kind, e.scope) for e in events]
        assert ("start", "table1") in kinds
        assert ("finish", "table1") in kinds
        assert ("start", "nas") in kinds
        assert any(scope.startswith("fnas-") for _, scope in kinds)

    def test_sweep_forwards_campaign_events(self, tmp_path):
        import dataclasses

        plan = dataclasses.replace(
            TestSweepEquivalence.PLAN,
            execution=ExecutionPolicy(checkpoint_dir=str(tmp_path)),
        )
        events = []
        session = Session.from_plan(plan)
        session.subscribe(events.append)
        session.run()
        shard_scopes = {e.scope for e in events if e.kind == "finish"}
        assert "mnist-pynq-z1-fnas5ms-s0" in shard_scopes

    def test_unsubscribe_stops_delivery(self):
        session = Session.from_plan(RunPlan(workload="figure8"))
        events = []
        callback = session.subscribe(events.append)
        session.unsubscribe(callback)
        session.run()
        assert events == []


class TestEvaluatorOverride:
    def test_rejected_for_workloads_that_rebuild_evaluators(self):
        """An injected evaluator instance must never be silently dropped."""
        class Double:
            pass

        plan = RunPlan(
            workload="search",
            scenario=ScenarioPlan(datasets=("mnist",), devices=("pynq-z1",),
                                  specs_ms=(5.0,)),
        )
        with pytest.raises(ValueError, match="evaluator override"):
            Session.from_plan(plan, evaluator=Double()).run()


class TestDeprecationShims:
    def test_legacy_aliases_warn_and_still_work(self, tmp_path):
        from repro.experiments.runner import run_paired_search
        from repro.fpga.device import PYNQ_Z1
        from repro.fpga.platform import Platform

        with pytest.warns(DeprecationWarning, match="checkpoint_dir"):
            outcome = run_paired_search(
                "mnist", Platform.single(PYNQ_Z1), specs_ms=[5.0],
                trials=4, campaign_dir=str(tmp_path),
            )
        assert len(outcome.nas.trials) == 4
        assert list(tmp_path.glob("*.checkpoint.json"))

    def test_canonical_kwargs_do_not_warn(self, tmp_path, recwarn):
        from repro.experiments.table1 import run_table1

        run_table1(trials=3, checkpoint_dir=str(tmp_path))
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]


class TestFnasForLookup:
    def test_tolerant_and_string_lookup(self):
        from repro.experiments.runner import run_paired_search
        from repro.fpga.device import PYNQ_Z1
        from repro.fpga.platform import Platform

        outcome = run_paired_search(
            "mnist", Platform.single(PYNQ_Z1), specs_ms=[2.5], trials=3,
        )
        exact = outcome.fnas[2.5]
        assert outcome.fnas_for(2.5) is exact
        assert outcome.fnas_for("2.5") is exact
        assert outcome.fnas_for(2.5 + 1e-12) is exact
        with pytest.raises(KeyError, match="specs: 2.5"):
            outcome.fnas_for(7.5)

    def test_serialized_outcome_uses_string_spec_keys(self):
        from repro.experiments.runner import (
            PairedSearchOutcome,
            run_paired_search,
        )
        from repro.fpga.device import PYNQ_Z1
        from repro.fpga.platform import Platform

        outcome = run_paired_search(
            "mnist", Platform.single(PYNQ_Z1), specs_ms=[10.0, 2.5],
            trials=3,
        )
        data = json.loads(json.dumps(outcome.to_dict()))
        assert sorted(data["fnas"]) == ["10", "2.5"]
        restored = PairedSearchOutcome.from_dict(data)
        assert sorted(restored.fnas) == [2.5, 10.0]
        assert ledger_bytes(restored.fnas_for(10)) == \
            ledger_bytes(outcome.fnas[10.0])
