"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    dataset_names,
    load_dataset,
    make_cifar,
    make_imagenet,
    make_mnist,
    make_mobilenet,
)


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["cifar10", "imagenet", "mnist",
                                   "mobilenet"]

    def test_load_by_name(self):
        ds = load_dataset("mnist", train_size=50, val_size=20)
        assert ds.name == "synthetic-mnist"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known"):
            load_dataset("svhn")


@pytest.mark.parametrize("maker,channels,size,classes", [
    (make_mnist, 1, 28, 10),
    (make_cifar, 3, 32, 10),
    (make_imagenet, 3, 32, 20),
    (make_mobilenet, 3, 32, 10),
])
class TestGenerators:
    def test_shapes_and_ranges(self, maker, channels, size, classes):
        ds = maker(train_size=40, val_size=20, seed=0)
        assert ds.train_x.shape == (40, channels, size, size)
        assert ds.val_x.shape == (20, channels, size, size)
        assert ds.train_x.dtype == np.float32
        assert ds.train_x.min() >= 0.0 and ds.train_x.max() <= 1.0
        assert ds.num_classes == classes
        assert ds.input_channels == channels
        assert ds.input_size == size

    def test_deterministic_per_seed(self, maker, channels, size, classes):
        a = maker(train_size=20, val_size=10, seed=5)
        b = maker(train_size=20, val_size=10, seed=5)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.train_y, b.train_y)

    def test_different_seeds_differ(self, maker, channels, size, classes):
        a = maker(train_size=20, val_size=10, seed=1)
        b = maker(train_size=20, val_size=10, seed=2)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_covers_multiple_classes(self, maker, channels, size, classes):
        ds = maker(train_size=200, val_size=50, seed=0)
        assert len(np.unique(ds.train_y)) >= classes // 2

    def test_rejects_bad_sizes(self, maker, channels, size, classes):
        with pytest.raises(ValueError):
            maker(train_size=0, val_size=10)

    def test_images_not_constant(self, maker, channels, size, classes):
        ds = maker(train_size=10, val_size=5, seed=0)
        assert ds.train_x.std() > 0.01


class TestLearnability:
    def test_classes_are_separable_by_pixel_statistics(self):
        """Class-conditional means must differ -- the signal a CNN learns."""
        ds = make_cifar(train_size=400, val_size=50, seed=0)
        means = []
        for c in range(ds.num_classes):
            mask = ds.train_y == c
            if mask.sum() > 0:
                means.append(ds.train_x[mask].mean(axis=(0, 2, 3)))
        means = np.stack(means)
        # Pairwise distances between class color means are not tiny.
        dists = np.linalg.norm(means[:, None] - means[None, :], axis=-1)
        assert dists[np.triu_indices(len(means), 1)].mean() > 0.05

    def test_mobilenet_shares_style_not_images_with_cifar(self):
        """Same renderer, independent class-parameter draw."""
        cifar = make_cifar(train_size=20, val_size=10, seed=0)
        mobile = make_mobilenet(train_size=20, val_size=10, seed=0)
        assert not np.array_equal(cifar.train_x, mobile.train_x)

    def test_mnist_digit_masks_differ(self):
        ds = make_mnist(train_size=300, val_size=30, seed=0)
        ones = ds.train_x[ds.train_y == 1].mean(axis=0)
        eights = ds.train_x[ds.train_y == 8].mean(axis=0)
        if ones.size and eights.size:
            assert np.abs(ones - eights).mean() > 0.01


class TestDatasetContainer:
    def test_subsample(self):
        ds = make_mnist(train_size=50, val_size=20, seed=0)
        sub = ds.subsample(train=10, val=5, seed=1)
        assert sub.train_size == 10
        assert sub.val_size == 5
        assert sub.num_classes == ds.num_classes

    def test_subsample_too_big_raises(self):
        ds = make_mnist(train_size=10, val_size=5, seed=0)
        with pytest.raises(ValueError):
            ds.subsample(train=100, val=5)

    def test_validation_catches_mismatches(self):
        x = np.zeros((4, 1, 8, 8), dtype=np.float32)
        y = np.zeros(3, dtype=np.int64)
        with pytest.raises(ValueError):
            Dataset("bad", x, y, x, np.zeros(4, dtype=np.int64),
                    num_classes=10)

    def test_validation_catches_label_range(self):
        x = np.zeros((2, 1, 8, 8), dtype=np.float32)
        y = np.array([0, 12])
        with pytest.raises(ValueError, match="range"):
            Dataset("bad", x, y, x, y[:2], num_classes=10)
