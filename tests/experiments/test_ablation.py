"""Tests for the ablation studies (small-scale versions)."""

import pytest

from repro.experiments.ablation import (
    REUSE_VARIANTS,
    run_pruning_ablation,
    run_reuse_ablation,
)


class TestReuseAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_reuse_ablation()

    def test_covers_figure8_set_and_grid(self, result):
        assert len(result.points) == 16
        labels = {label for label, _ in REUSE_VARIANTS}
        for point in result.points:
            assert set(point.cycles) == labels

    def test_inorder_alternation_dominates_uniform(self, result):
        assert result.win_or_tie_rate("alt/inorder", "ofm/inorder") >= 0.9
        assert result.win_or_tie_rate("alt/inorder", "ifm/inorder") >= 0.9

    def test_ready_queue_never_hurts(self, result):
        for strategy in ("alt", "ofm", "ifm"):
            assert result.win_or_tie_rate(
                f"{strategy}/queue", f"{strategy}/inorder") == 1.0

    def test_mean_ratio_sane(self, result):
        assert 0 < result.mean_ratio("alt/queue", "alt/inorder") <= 1.0

    def test_format_renders_grid(self, result):
        text = result.format()
        assert "alt/queue" in text and "ifm/inorder" in text


class TestPruningAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_pruning_ablation(trials=20, seed=0)

    def test_counterfactual_at_least_actual(self, result):
        assert result.no_pruning_seconds >= result.actual_seconds

    def test_speedup_when_pruning_happens(self, result):
        if result.search.pruned_count > 0:
            assert result.pruning_speedup > 1.0
        else:
            assert result.pruning_speedup == pytest.approx(1.0)

    def test_format(self, result):
        assert "trained" in result.format()
