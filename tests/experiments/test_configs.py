"""Tests pinning Table 2 (dataset and parameter settings)."""

import pytest

from repro.configs import (
    CIFAR_CONFIG,
    CONFIGS,
    IMAGENET_CONFIG,
    MNIST_CONFIG,
    MOBILENET_CONFIG,
    TimingSpecs,
    get_config,
)


class TestTable2Values:
    def test_mnist_row(self):
        c = MNIST_CONFIG
        assert (c.train_size, c.val_size) == (60_000, 10_000)
        assert c.epochs == 25
        assert c.num_layers == 4
        assert c.filter_sizes == (5, 7, 14)
        assert c.filter_counts == (9, 18, 36)
        assert c.trials == 60

    def test_mnist_timing_specs(self):
        high = MNIST_CONFIG.timing_specs
        low = MNIST_CONFIG.timing_specs_low
        assert (high.ts4, high.ts3, high.ts2, high.ts1) == (2, 5, 10, 20)
        assert (low.ts4, low.ts3, low.ts2, low.ts1) == (1, 4, 10, 20)

    def test_cifar_row(self):
        c = CIFAR_CONFIG
        assert (c.train_size, c.val_size) == (45_000, 5_000)
        assert c.num_layers == 10
        assert c.filter_sizes == (1, 3, 5, 7)
        assert c.filter_counts == (24, 36, 48, 64)
        specs = c.timing_specs
        assert (specs.ts4, specs.ts3, specs.ts2, specs.ts1) == (
            1.5, 2, 2.5, 10)

    def test_imagenet_row(self):
        c = IMAGENET_CONFIG
        assert (c.train_size, c.val_size) == (4_500, 500)
        assert c.num_layers == 15
        assert c.filter_counts == (16, 32, 64, 128)
        specs = c.timing_specs
        assert (specs.ts4, specs.ts3, specs.ts2, specs.ts1) == (
            2.5, 5, 7.5, 10)

    def test_all_datasets_registered(self):
        assert set(CONFIGS) == {"mnist", "cifar10", "imagenet", "mobilenet"}

    def test_get_config(self):
        assert get_config("mnist") is MNIST_CONFIG
        with pytest.raises(KeyError):
            get_config("coco")

    def test_get_config_suggests_close_names(self):
        with pytest.raises(KeyError, match="did you mean 'mnist'"):
            get_config("mnsit")
        with pytest.raises(KeyError, match="did you mean 'mobilenet'"):
            get_config("mobilnet")

    def test_space_sizes(self):
        assert MNIST_CONFIG.space_size == 9**4
        assert CIFAR_CONFIG.space_size == 16**10
        assert IMAGENET_CONFIG.space_size == 16**15

    def test_mobilenet_extension_row(self):
        """The MobileNet-class space is an extension, not a Table 2 row."""
        c = MOBILENET_CONFIG
        assert c.num_layers == 6
        assert c.filter_sizes == (3, 5, 7)
        assert c.filter_counts == (16, 32, 64)
        # Cheapest conv type first (surrogate MAC-probe monotonicity).
        assert c.conv_types == ("separable", "standard")
        # The conv-type choice multiplies the per-layer fan-out.
        assert c.space_size == (3 * 3 * 2) ** 6

    def test_single_conv_type_does_not_inflate_space(self):
        assert MNIST_CONFIG.conv_types == ("standard",)
        assert MNIST_CONFIG.space_size == 9**4

    def test_empty_conv_types_rejected(self):
        import dataclasses

        with pytest.raises(ValueError, match="conv_types"):
            dataclasses.replace(MNIST_CONFIG, conv_types=())


class TestTimingSpecs:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError, match="tighten"):
            TimingSpecs(ts1=1, ts2=2, ts3=3, ts4=4)

    def test_positive_enforced(self):
        with pytest.raises(ValueError):
            TimingSpecs(ts1=10, ts2=5, ts3=2, ts4=0)

    def test_by_name(self):
        specs = TimingSpecs(ts1=20, ts2=10, ts3=5, ts4=2)
        assert specs.by_name("TS1") == 20
        assert specs.by_name("ts4") == 2
        with pytest.raises(KeyError):
            specs.by_name("TS5")

    def test_as_list_loosest_first(self):
        specs = TimingSpecs(ts1=20, ts2=10, ts3=5, ts4=2)
        names = [n for n, _ in specs.as_list()]
        values = [v for _, v in specs.as_list()]
        assert names == ["TS1", "TS2", "TS3", "TS4"]
        assert values == sorted(values, reverse=True)
