"""Tests for the reproduction report generator."""

from repro.experiments.report import generate_report


class TestReport:
    def test_contains_every_section(self):
        text = generate_report(trials=6, seed=0)
        for heading in ("Table 1", "Figure 6", "Figure 7", "Figure 8",
                        "reuse strategy", "early pruning"):
            assert heading in text, f"missing section {heading!r}"

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "report.md"
        assert main(["report", "--trials", "6", "--output", str(out)]) == 0
        assert out.exists()
        assert "Table 1" in out.read_text()
