"""Tests for the Pareto-front extension."""

import pytest

from repro.core.search_space import SearchSpace
from repro.experiments.pareto import ParetoFront, ParetoPoint, compute_pareto_front
from repro.configs import CIFAR_CONFIG
from repro.fpga.device import PYNQ_Z1, XCZU9EG
from repro.fpga.platform import Platform

SMALL_SPACE = SearchSpace(
    name="mnist",  # reuse the MNIST calibration
    num_layers=2,
    filter_sizes=(5, 7),
    filter_counts=(9, 18, 36),
    input_size=28,
    input_channels=1,
    num_classes=10,
)


@pytest.fixture(scope="module")
def front():
    return compute_pareto_front(SMALL_SPACE, Platform.single(PYNQ_Z1))


class TestFrontStructure:
    def test_exhaustive_for_small_space(self, front):
        assert front.exhaustive
        assert front.evaluated_count == SMALL_SPACE.size

    def test_sorted_and_monotone(self, front):
        lats = [p.latency_ms for p in front.points]
        accs = [p.accuracy for p in front.points]
        assert lats == sorted(lats)
        assert accs == sorted(accs)

    def test_no_dominated_points(self, front):
        for a in front.points:
            for b in front.points:
                if a is b:
                    continue
                dominates = (b.latency_ms <= a.latency_ms
                             and b.accuracy > a.accuracy)
                assert not dominates

    def test_best_accuracy_within(self, front):
        loosest = front.points[-1].latency_ms
        assert front.best_accuracy_within(loosest) == front.points[-1].accuracy
        tightest = front.points[0].latency_ms
        assert front.best_accuracy_within(tightest) == front.points[0].accuracy

    def test_budget_below_frontier_raises(self, front):
        with pytest.raises(ValueError, match="frontier"):
            front.best_accuracy_within(front.points[0].latency_ms / 10)

    def test_regret_non_negative_for_feasible(self, front):
        point = front.points[len(front.points) // 2]
        assert front.regret(point.accuracy, point.latency_ms) >= -1e-12
        assert front.regret(point.accuracy - 0.01,
                            point.latency_ms) >= 0.009

    def test_format_downsamples(self, front):
        text = front.format(max_rows=3)
        # Header + separator + at most 3 rows.
        assert len(text.splitlines()) <= 5


class TestSampledFront:
    def test_large_space_is_sampled(self):
        space = SearchSpace.from_config(CIFAR_CONFIG)
        front = compute_pareto_front(
            space, Platform.single(XCZU9EG), samples=100, seed=0)
        assert not front.exhaustive
        assert front.evaluated_count <= 100
        assert len(front.points) >= 1
