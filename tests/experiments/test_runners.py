"""Shape tests for the table/figure experiment runners.

These use reduced trial counts so the whole file runs in seconds; the
full paper-scale runs live in ``benchmarks/``.
"""

import math

import pytest

from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import figure8_architectures, run_figure8
from repro.experiments.runner import run_paired_search
from repro.experiments.table1 import run_table1
from repro.fpga.device import XC7Z020
from repro.fpga.platform import Platform

TRIALS = 25  # reduced from the paper's 60 for test speed


@pytest.fixture(scope="module")
def table1():
    return run_table1(trials=TRIALS, seed=0)


class TestTable1:
    def test_row_structure(self, table1):
        assert [r.method for r in table1.rows] == ["NAS", "FNAS", "FNAS",
                                                   "FNAS"]
        assert [r.spec_ms for r in table1.rows] == [None, 10.0, 5.0, 2.0]

    def test_fnas_meets_every_spec(self, table1):
        for row in table1.rows[1:]:
            assert row.latency_ms <= row.spec_ms

    def test_fnas_faster_than_nas(self, table1):
        nas = table1.rows[0]
        for row in table1.rows[1:]:
            assert row.elapsed_seconds < nas.elapsed_seconds
            assert row.elapsed_improvement > 1.0

    def test_speedup_grows_with_tighter_spec(self, table1):
        imps = [r.elapsed_improvement for r in table1.rows[1:]]
        assert imps == sorted(imps)

    def test_accuracy_loss_below_one_percent(self, table1):
        for row in table1.rows[1:]:
            assert row.accuracy_degradation < 0.01

    def test_format_renders(self, table1):
        text = table1.format()
        assert "NAS" in text and "FNAS" in text and "x" in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def figure6(self):
        return run_figure6(trials=TRIALS, seed=0)

    def test_two_devices_four_bars_each(self, figure6):
        assert len(figure6.bars) == 8
        for device in ("xc7z020", "xc7a50t"):
            group = figure6.bars_for(device)
            assert [b.method for b in group] == [
                "NAS", "FNAS-loose", "FNAS-med", "FNAS-tight"]

    def test_fnas_meets_specs_on_both_devices(self, figure6):
        for bar in figure6.bars:
            if bar.method != "NAS":
                assert bar.meets_spec

    def test_fnas_latency_decreases_with_tightness(self, figure6):
        for device in ("xc7z020", "xc7a50t"):
            lats = [b.latency_ms for b in figure6.bars_for(device)[1:]]
            assert lats == sorted(lats, reverse=True)

    def test_low_end_nas_slower_than_high_end(self, figure6):
        high = figure6.bars_for("xc7z020")[0]
        low = figure6.bars_for("xc7a50t")[0]
        assert low.latency_ms > high.latency_ms

    def test_format_renders(self, figure6):
        assert "xc7a50t" in figure6.format()


class TestFigure7:
    @pytest.fixture(scope="class")
    def figure7(self):
        # MNIST only: CIFAR/ImageNet paths are exercised in benchmarks.
        return run_figure7(datasets=("mnist",), trials=TRIALS, seed=0)

    def test_four_points_per_dataset(self, figure7):
        assert len(figure7.points_for("mnist")) == 4

    def test_time_reduction_grows_with_tightness(self, figure7):
        reductions = [p.time_reduction for p in figure7.points_for("mnist")]
        assert reductions[-1] > reductions[0]

    def test_accuracy_loss_below_one_percent(self, figure7):
        for p in figure7.points_for("mnist"):
            if p.found_valid:
                assert p.accuracy_loss < 0.01

    def test_fnas_latency_meets_spec(self, figure7):
        for p in figure7.points_for("mnist"):
            if p.found_valid:
                assert p.fnas_latency_ms <= p.spec_ms

    def test_format_handles_all_points(self, figure7):
        text = figure7.format()
        assert text.count("TS") >= 4


class TestFigure8:
    @pytest.fixture(scope="class")
    def figure8(self):
        return run_figure8()

    def test_sixteen_architectures(self, figure8):
        assert len(figure8.points) == 16
        assert len(figure8_architectures()) == 16

    def test_fnas_sched_never_loses(self, figure8):
        for p in figure8.points:
            assert p.fnas_cycles <= p.fixed_cycles

    def test_fnas_sched_wins_on_most(self, figure8):
        wins = sum(1 for p in figure8.points if p.fnas_cycles < p.fixed_cycles)
        assert wins >= 14

    def test_mean_improvement_positive(self, figure8):
        assert figure8.mean_improvement_percent > 5.0

    def test_filter_combinations_cover_both_choices(self, figure8):
        counts = {p.filter_counts for p in figure8.points}
        assert len(counts) == 16
        assert (64, 64, 64, 64) in counts
        assert (128, 128, 128, 128) in counts

    def test_format_renders(self, figure8):
        assert "FNAS-Sched" in figure8.format()


class TestPairedSearch:
    def test_trials_default_to_config(self):
        outcome = run_paired_search(
            "mnist", Platform.single(XC7Z020), specs_ms=[10.0], trials=5,
            seed=0,
        )
        assert len(outcome.nas.trials) == 5
        assert len(outcome.fnas[10.0].trials) == 5

    def test_nas_best_properties(self):
        outcome = run_paired_search(
            "mnist", Platform.single(XC7Z020), specs_ms=[10.0], trials=5,
            seed=0,
        )
        assert 0 < outcome.nas_best_accuracy <= 1
        assert outcome.nas_best_latency_ms > 0
        assert math.isfinite(outcome.nas_best_latency_ms)


class TestCampaignMode:
    """Campaign mode is an execution policy, not a different experiment:
    its ledgers must match the in-process mode trial for trial."""

    KWARGS = dict(dataset="mnist", specs_ms=[10.0, 5.0], trials=6, seed=0)

    @staticmethod
    def tokens_of(result):
        return [t.tokens for t in result.trials]

    def test_campaign_matches_serial_ledgers(self, tmp_path):
        platform = Platform.single(XC7Z020)
        serial = run_paired_search(platform=platform, **self.KWARGS)
        campaign = run_paired_search(
            platform=platform, checkpoint_dir=str(tmp_path), shard_workers=2,
            **self.KWARGS,
        )
        assert self.tokens_of(campaign.nas) == self.tokens_of(serial.nas)
        for spec in self.KWARGS["specs_ms"]:
            assert self.tokens_of(campaign.fnas[spec]) == \
                   self.tokens_of(serial.fnas[spec])
            assert [t.reward for t in campaign.fnas[spec].trials] == \
                   [t.reward for t in serial.fnas[spec].trials]

    def test_reinvocation_resumes_from_checkpoints(self, tmp_path):
        platform = Platform.single(XC7Z020)
        first = run_paired_search(
            platform=platform, checkpoint_dir=str(tmp_path), **self.KWARGS,
        )
        assert list(tmp_path.glob("*.checkpoint.json"))
        second = run_paired_search(
            platform=platform, checkpoint_dir=str(tmp_path), **self.KWARGS,
        )
        assert self.tokens_of(second.nas) == self.tokens_of(first.nas)

    def test_campaign_rejects_custom_evaluator(self, tmp_path):
        from repro.core.evaluator import SurrogateAccuracyEvaluator
        from repro.core.search_space import SearchSpace
        from repro.experiments.configs import get_config

        space = SearchSpace.from_config(get_config("mnist"))
        with pytest.raises(ValueError, match="evaluator"):
            run_paired_search(
                platform=Platform.single(XC7Z020),
                evaluator=SurrogateAccuracyEvaluator(space),
                checkpoint_dir=str(tmp_path), **self.KWARGS,
            )

    def test_campaign_rejects_non_catalog_device(self, tmp_path):
        custom = XC7Z020.scaled(0.5, name="half-zynq")
        with pytest.raises(ValueError, match="catalog"):
            run_paired_search(
                platform=Platform.single(custom), checkpoint_dir=str(tmp_path),
                **self.KWARGS,
            )
