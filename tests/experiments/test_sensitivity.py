"""Tests for the seed-sensitivity study (reduced scale)."""

import pytest

from repro.experiments.sensitivity import run_sensitivity


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sensitivity(seeds=(0, 1), trials=15,
                               specs_ms=(10.0, 2.0))

    def test_one_stat_block_per_spec(self, result):
        assert [s.spec_ms for s in result.stats] == [10.0, 2.0]
        for stat in result.stats:
            assert len(stat.speedups) == 2
            assert len(stat.degradations) == 2

    def test_statistics_are_consistent(self, result):
        for stat in result.stats:
            assert stat.speedup_mean == pytest.approx(
                sum(stat.speedups) / len(stat.speedups))
            assert stat.degradation_max == max(stat.degradations)
            assert 0.0 <= stat.meets_spec_rate <= 1.0

    def test_format_renders(self, result):
        text = result.format()
        assert "speedup" in text
        assert "+/-" in text

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_sensitivity(seeds=())
