"""Tests for the energy-aware search extension."""

import numpy as np
import pytest

from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.core.search_space import SearchSpace
from repro.configs import MNIST_CONFIG
from repro.experiments.energy_aware import EnergyAwareFnasSearch
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator


@pytest.fixture(scope="module")
def setup():
    space = SearchSpace.from_config(MNIST_CONFIG)
    evaluator = SurrogateAccuracyEvaluator(space)
    estimator = LatencyEstimator(Platform.single(PYNQ_Z1))
    return space, evaluator, estimator


class TestEnergyAwareSearch:
    def test_violators_not_trained(self, setup):
        space, evaluator, estimator = setup
        search = EnergyAwareFnasSearch(
            space, evaluator, estimator,
            required_latency_ms=10.0, required_energy_mj=100.0)
        result, facts = search.run(25, np.random.default_rng(0))
        assert len(facts) == 25
        for trial, fact in zip(result.trials, facts):
            if fact.latency_violated or fact.energy_violated:
                assert not trial.trained
            else:
                assert trial.trained

    def test_energy_budget_actually_prunes(self, setup):
        """A tight energy budget must prune children a loose one allows."""
        space, evaluator, estimator = setup

        def run(energy_mj):
            search = EnergyAwareFnasSearch(
                space, evaluator, estimator,
                required_latency_ms=100.0, required_energy_mj=energy_mj)
            return search.run(25, np.random.default_rng(1))

        loose_result, loose_facts = run(1e9)
        tight_result, tight_facts = run(30.0)
        tight_energy_prunes = sum(1 for f in tight_facts if f.energy_violated)
        loose_energy_prunes = sum(1 for f in loose_facts if f.energy_violated)
        assert loose_energy_prunes == 0
        assert tight_energy_prunes > 0
        assert tight_result.trained_count < loose_result.trained_count

    def test_valid_children_meet_both_budgets(self, setup):
        space, evaluator, estimator = setup
        search = EnergyAwareFnasSearch(
            space, evaluator, estimator,
            required_latency_ms=10.0, required_energy_mj=120.0)
        result, facts = search.run(30, np.random.default_rng(2))
        for trial, fact in zip(result.trials, facts):
            if trial.trained:
                assert trial.latency_ms <= 10.0
                assert fact.energy_mj <= 120.0

    def test_validation(self, setup):
        space, evaluator, estimator = setup
        with pytest.raises(ValueError):
            EnergyAwareFnasSearch(space, evaluator, estimator,
                                  required_latency_ms=0,
                                  required_energy_mj=1)
        search = EnergyAwareFnasSearch(space, evaluator, estimator, 1, 1)
        with pytest.raises(ValueError):
            search.run(0, np.random.default_rng(0))
