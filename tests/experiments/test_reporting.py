"""Tests for report formatting helpers."""

import pytest

from repro.experiments.reporting import format_minutes, format_table, improvement


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [["x", "y"], ["long", "z"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # All rows the same width.
        assert len(set(len(l) for l in lines)) <= 2

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])


class TestImprovement:
    def test_factor(self):
        assert improvement(10.0, 5.0) == pytest.approx(2.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            improvement(10.0, 0.0)


class TestFormatMinutes:
    @pytest.mark.parametrize("seconds,expected", [
        (0, "0m00s"),
        (33, "0m33s"),
        (60, "1m00s"),
        (11433, "190m33s"),
        (59.6, "1m00s"),
    ])
    def test_cases(self, seconds, expected):
        assert format_minutes(seconds) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_minutes(-1)
