"""Figure 9 (extension): conv-type frontiers across memory hierarchies.

Reduced sample budgets keep the file fast; the headline property --
the separable family's slowdown under bandwidth starvation exceeds the
standard family's -- survives even tiny budgets because the latency
shift comes from the analytical model, not sampling noise.
"""

import pytest

from repro.experiments.figure9 import (
    FAMILIES,
    FIGURE9_DEVICES,
    figure9_plan,
    run_figure9,
    run_figure9_plan,
)
from repro.service.executor import check_evaluator_override, execute_plan

SAMPLES = 48  # reduced from FIGURE9_SAMPLES for test speed


@pytest.fixture(scope="module")
def figure9():
    return run_figure9_plan(figure9_plan(samples=SAMPLES, seed=0))


class TestPlanShape:
    def test_plan_fields(self):
        plan = figure9_plan(samples=SAMPLES, seed=3)
        assert plan.workload == "figure9"
        assert plan.search.trials == SAMPLES
        assert plan.search.seed == 3
        assert plan.scenario.datasets == ("mobilenet",)
        assert plan.scenario.devices == FIGURE9_DEVICES

    def test_default_devices_are_the_ddr_pair(self):
        assert FIGURE9_DEVICES == ("xc7z020-ddr-wide", "xc7z020-ddr-narrow")
        assert figure9_plan().scenario.devices == FIGURE9_DEVICES


class TestResultShape:
    def test_one_curve_per_device_family_pair(self, figure9):
        assert len(figure9.curves) == len(FIGURE9_DEVICES) * len(FAMILIES)
        for device in FIGURE9_DEVICES:
            for family in FAMILIES:
                curve = figure9.curve(device, family)
                assert curve.front.points
                assert curve.front.evaluated_count == SAMPLES
        with pytest.raises(KeyError):
            figure9.curve("xc7z020-ddr-wide", "dilated")

    def test_frontiers_are_latency_sorted(self, figure9):
        for curve in figure9.curves:
            lats = [p.latency_ms for p in curve.front.points]
            assert lats == sorted(lats)
            assert curve.min_latency_ms == lats[0]

    def test_format_renders_all_curves_and_the_slowdown_panel(self, figure9):
        text = figure9.format()
        for device in FIGURE9_DEVICES:
            assert device in text
        for family in FAMILIES:
            assert family in text
        assert "slowdown" in text


class TestBandwidthSensitivity:
    """The headline: depthwise layers are the first casualty of a
    narrow DRAM port, so the separable family slows down more."""

    def test_separable_slows_down_more_than_standard(self, figure9):
        assert figure9.slowdown("separable") > figure9.slowdown("standard")

    def test_both_families_pay_for_the_narrow_port(self, figure9):
        for family in FAMILIES:
            assert figure9.slowdown(family) > 1.0

    def test_separable_wins_on_the_rich_device_only(self, figure9):
        rich, starved = FIGURE9_DEVICES
        assert (figure9.curve(rich, "separable").min_latency_ms
                < figure9.curve(rich, "standard").min_latency_ms)
        assert (figure9.curve(starved, "separable").min_latency_ms
                > figure9.curve(starved, "standard").min_latency_ms)

    def test_slowdown_requires_exactly_two_devices(self):
        result = run_figure9_plan(
            figure9_plan(samples=8, devices=("xc7z020-ddr-wide",)))
        with pytest.raises(ValueError, match="2 devices"):
            result.slowdown("separable")


class TestExecutorDispatch:
    def test_execute_plan_runs_figure9(self):
        events = []
        result = execute_plan(figure9_plan(samples=8, seed=1),
                              emit=events.append)
        assert len(result.curves) == 4
        assert result.devices == FIGURE9_DEVICES
        assert events  # pareto progress events were published

    def test_evaluator_override_rejected(self):
        with pytest.raises(ValueError, match="evaluator"):
            check_evaluator_override(figure9_plan(samples=8),
                                     evaluator=object())

    def test_legacy_entry_point_matches_the_plan_path(self, figure9):
        legacy = run_figure9(samples=SAMPLES, seed=0)
        assert legacy.devices == figure9.devices
        for a, b in zip(legacy.curves, figure9.curves):
            assert (a.device, a.family) == (b.device, b.family)
            assert a.min_latency_ms == b.min_latency_ms
            assert a.best_accuracy == b.best_accuracy
