"""Tests for accuracy evaluators."""

import numpy as np
import pytest

from repro.core.evaluator import (
    SurrogateAccuracyEvaluator,
    TrainedAccuracyEvaluator,
)
from repro.datasets import make_mnist
from repro.nn.trainer import Trainer


class TestSurrogateEvaluator:
    def test_accuracy_in_range(self, mnist_space, rng):
        evaluator = SurrogateAccuracyEvaluator(mnist_space)
        for _ in range(20):
            arch = mnist_space.random_architecture(rng)
            outcome = evaluator.evaluate(arch)
            assert 0.0 <= outcome.accuracy <= 1.0
            assert outcome.train_seconds > 0

    def test_deterministic_per_architecture(self, mnist_space, rng):
        evaluator = SurrogateAccuracyEvaluator(mnist_space)
        arch = mnist_space.random_architecture(rng)
        a = evaluator.evaluate(arch)
        b = evaluator.evaluate(arch)
        assert a.accuracy == b.accuracy
        assert a.train_seconds == b.train_seconds

    def test_seed_changes_noise(self, mnist_space, rng):
        arch = mnist_space.random_architecture(rng)
        a = SurrogateAccuracyEvaluator(mnist_space, seed=0).evaluate(arch)
        b = SurrogateAccuracyEvaluator(mnist_space, seed=1).evaluate(arch)
        assert a.accuracy != b.accuracy

    def test_latency_eval_cost_positive(self, mnist_space):
        evaluator = SurrogateAccuracyEvaluator(mnist_space)
        assert evaluator.latency_eval_seconds() > 0


class TestTrainedEvaluator:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        return make_mnist(train_size=200, val_size=80, seed=0)

    def test_trains_and_scores(self, tiny_dataset, mnist_space, rng):
        evaluator = TrainedAccuracyEvaluator(
            tiny_dataset, trainer=Trainer(epochs=2, lr=0.02, batch_size=32)
        )
        arch = mnist_space.decode([0] * mnist_space.num_decisions)
        outcome = evaluator.evaluate(arch)
        assert 0.0 <= outcome.accuracy <= 1.0
        assert outcome.train_seconds > 0

    def test_rejects_input_size_mismatch(self, tiny_dataset):
        from repro.core.architecture import Architecture
        arch = Architecture.from_choices([3], [4], input_size=16)
        evaluator = TrainedAccuracyEvaluator(tiny_dataset)
        with pytest.raises(ValueError, match="inputs"):
            evaluator.evaluate(arch)

    def test_rejects_channel_mismatch(self, tiny_dataset):
        from repro.core.architecture import Architecture
        arch = Architecture.from_choices([3], [4], input_size=28,
                                         input_channels=3)
        evaluator = TrainedAccuracyEvaluator(tiny_dataset)
        with pytest.raises(ValueError, match="channels"):
            evaluator.evaluate(arch)
