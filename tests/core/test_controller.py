"""Tests for the LSTM and tabular controllers."""

import numpy as np
import pytest

from repro.core.controller import LstmController, TabularController
from repro.core.search_space import SearchSpace

SMALL_SPACE = SearchSpace(
    name="small",
    num_layers=2,
    filter_sizes=(3, 5),
    filter_counts=(4, 8, 16),
    input_size=12,
    input_channels=1,
    num_classes=10,
)


@pytest.fixture(params=["lstm", "tabular"])
def controller(request):
    if request.param == "lstm":
        return LstmController(SMALL_SPACE, seed=0)
    return TabularController(SMALL_SPACE)


def exact_log_prob(controller, tokens):
    """Log-probability of a fixed sequence under the current policy."""
    return controller.sample(
        np.random.default_rng(0), force_tokens=tokens
    ).log_prob


def resample_fixed(controller, tokens):
    """A sample of ``tokens`` with activations from the current params."""
    return controller.sample(np.random.default_rng(0), force_tokens=tokens)


class TestSampling:
    def test_tokens_valid(self, controller, rng):
        for _ in range(20):
            sample = controller.sample(rng)
            assert len(sample.tokens) == SMALL_SPACE.num_decisions
            for step, token in enumerate(sample.tokens):
                assert 0 <= token < len(SMALL_SPACE.choices_at(step))

    def test_log_prob_is_negative(self, controller, rng):
        sample = controller.sample(rng)
        assert sample.log_prob < 0.0

    def test_sampling_is_seed_deterministic(self, controller):
        a = controller.sample(np.random.default_rng(7)).tokens
        b = controller.sample(np.random.default_rng(7)).tokens
        assert a == b

    def test_decoded_architectures_are_valid(self, controller, rng):
        for _ in range(10):
            sample = controller.sample(rng)
            arch = SMALL_SPACE.decode(sample.tokens)
            assert arch.depth == 2


class TestReinforce:
    def test_update_returns_finite_loss(self, controller, rng):
        sample = controller.sample(rng)
        loss = controller.update(sample, advantage=1.0)
        assert np.isfinite(loss)

    def test_positive_advantage_increases_sample_probability(self, controller):
        """Rewarding a sequence must make it more likely (exact log-prob)."""
        rng = np.random.default_rng(3)
        sample = controller.sample(rng)
        tokens = list(sample.tokens)
        before = exact_log_prob(controller, tokens)
        for _ in range(20):
            # Re-sample the cache so LSTM activations match current params.
            fresh = resample_fixed(controller, tokens)
            controller.update(fresh, advantage=1.0)
        after = exact_log_prob(controller, tokens)
        assert after > before

    def test_negative_advantage_decreases_probability(self):
        controller = TabularController(SMALL_SPACE)
        rng = np.random.default_rng(3)
        sample = controller.sample(rng)
        step0_token = sample.tokens[0]
        from repro.core.controller import _softmax
        before = _softmax(controller.logits[0])[step0_token]
        for _ in range(20):
            controller.update(sample, advantage=-1.0)
        after = _softmax(controller.logits[0])[step0_token]
        assert after < before

    def test_zero_advantage_is_a_noop_direction(self):
        controller = TabularController(SMALL_SPACE)
        rng = np.random.default_rng(3)
        sample = controller.sample(rng)
        logits_before = [l.copy() for l in controller.logits]
        controller.update(sample, advantage=0.0)
        # Adam with zero gradient leaves parameters unchanged.
        for before, after in zip(logits_before, controller.logits):
            np.testing.assert_allclose(before, after)

    def test_converges_to_rewarded_arm(self):
        """Bandit check: reward token 0 at step 0, others not."""
        controller = TabularController(SMALL_SPACE, lr=0.3)
        rng = np.random.default_rng(0)
        for _ in range(200):
            sample = controller.sample(rng)
            advantage = 1.0 if sample.tokens[0] == 0 else -1.0
            controller.update(sample, advantage)
        hits = sum(
            controller.sample(rng).tokens[0] == 0 for _ in range(100)
        )
        assert hits > 80

    def test_lstm_update_without_cache_raises(self):
        controller = LstmController(SMALL_SPACE)
        from repro.core.controller import ControllerSample
        bad = ControllerSample(tokens=[0] * SMALL_SPACE.num_decisions,
                               log_prob=-1.0, cache=None)
        with pytest.raises(ValueError, match="cache"):
            controller.update(bad, 1.0)


class TestLstmGradients:
    def test_policy_gradient_matches_finite_differences(self):
        """The hand-written BPTT must match numeric dlogprob/dparam."""
        space = SearchSpace(
            name="g", num_layers=1, filter_sizes=(3, 5),
            filter_counts=(4, 8), input_size=8, input_channels=1,
            num_classes=10,
        )
        controller = LstmController(space, hidden_size=5, embed_size=3,
                                    lr=1e-9, seed=2)
        rng = np.random.default_rng(0)
        sample = controller.sample(rng)
        tokens = sample.tokens

        def log_prob_of(tokens_: list[int]) -> float:
            """Deterministic forward pass scoring a fixed token sequence."""
            h = np.zeros(controller.hidden_size)
            c = np.zeros(controller.hidden_size)
            x = controller.start_embedding
            total = 0.0
            for step, token in enumerate(tokens_):
                kind = space.decision_kind(step)
                concat = np.concatenate([h, x])
                z = concat @ controller.w_lstm + controller.b_lstm
                hs = controller.hidden_size
                i = 1 / (1 + np.exp(-z[:hs]))
                f = 1 / (1 + np.exp(-z[hs:2 * hs]))
                g = np.tanh(z[2 * hs:3 * hs])
                o = 1 / (1 + np.exp(-z[3 * hs:]))
                c = f * c + i * g
                h = o * np.tanh(c)
                w_head, b_head = controller.heads[kind]
                logits = h @ w_head + b_head
                p = np.exp(logits - logits.max())
                p /= p.sum()
                total += np.log(p[token])
                x = controller.embeddings[kind][token]
            return total

        # Analytic gradient of loss = -1 * log_prob (advantage 1).
        params_before = [p.copy() for p in controller._param_list()]
        controller.update(sample, advantage=1.0)
        # Recover gradient from the (tiny-lr) Adam step direction is not
        # exact; instead recompute the gradient via a second controller
        # sharing parameters.  Simpler: finite-difference the w_lstm
        # entry with the largest update and compare signs/magnitude via
        # the adam m estimate.
        adam_m = controller._adam.m
        # Locate w_lstm in the param list.
        idx = [id(p) for p in controller._param_list()].index(
            id(controller.w_lstm))
        grad_est = adam_m[idx] / 0.1  # first step: m = 0.1 * grad
        # Numeric gradient for a handful of entries.
        eps = 1e-5
        errors = []
        for (r, cidx) in [(0, 0), (1, 3), (2, 7)]:
            controller.w_lstm[r, cidx] = params_before[idx][r, cidx] + eps
            lp_plus = log_prob_of(tokens)
            controller.w_lstm[r, cidx] = params_before[idx][r, cidx] - eps
            lp_minus = log_prob_of(tokens)
            controller.w_lstm[r, cidx] = params_before[idx][r, cidx]
            numeric = -(lp_plus - lp_minus) / (2 * eps)  # loss = -logprob
            errors.append(abs(numeric - grad_est[r, cidx]))
        assert max(errors) < 1e-4
