"""Tests for the search space / token encoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.configs import CIFAR_CONFIG, IMAGENET_CONFIG, MNIST_CONFIG
from repro.core.search_space import (
    DECISIONS_PER_LAYER,
    FILTER_COUNT,
    FILTER_SIZE,
    SearchSpace,
)


class TestGeometry:
    def test_mnist_space_size(self, mnist_space):
        assert mnist_space.size == (3 * 3) ** 4 == 6561

    def test_cifar_space_size(self):
        space = SearchSpace.from_config(CIFAR_CONFIG)
        assert space.size == (4 * 4) ** 10

    def test_num_decisions(self, mnist_space):
        assert mnist_space.num_decisions == 4 * DECISIONS_PER_LAYER

    def test_decision_kinds_alternate(self, mnist_space):
        kinds = [mnist_space.decision_kind(s)
                 for s in range(mnist_space.num_decisions)]
        assert kinds[::2] == [FILTER_SIZE] * 4
        assert kinds[1::2] == [FILTER_COUNT] * 4

    def test_choices_at_matches_kind(self, mnist_space):
        assert mnist_space.choices_at(0) == mnist_space.filter_sizes
        assert mnist_space.choices_at(1) == mnist_space.filter_counts

    def test_decision_kind_range_check(self, mnist_space):
        with pytest.raises(ValueError):
            mnist_space.decision_kind(mnist_space.num_decisions)
        with pytest.raises(ValueError):
            mnist_space.decision_kind(-1)

    def test_rejects_duplicate_choices(self):
        with pytest.raises(ValueError, match="duplicates"):
            SearchSpace(name="x", num_layers=2, filter_sizes=(3, 3),
                        filter_counts=(4,), input_size=8,
                        input_channels=1, num_classes=10)

    def test_rejects_empty_choices(self):
        with pytest.raises(ValueError, match="empty"):
            SearchSpace(name="x", num_layers=2, filter_sizes=(),
                        filter_counts=(4,), input_size=8,
                        input_channels=1, num_classes=10)


class TestDecodeEncode:
    def test_decode_first_architecture(self, mnist_space):
        arch = mnist_space.decode([0] * 8)
        assert arch.filter_sizes == (5, 5, 5, 5)
        assert arch.filter_counts == (9, 9, 9, 9)

    def test_decode_last_architecture(self, mnist_space):
        arch = mnist_space.decode([2, 2] * 4)
        assert arch.filter_sizes == (14, 14, 14, 14)
        assert arch.filter_counts == (36, 36, 36, 36)

    def test_decode_rejects_wrong_length(self, mnist_space):
        with pytest.raises(ValueError, match="tokens"):
            mnist_space.decode([0] * 7)

    def test_decode_rejects_out_of_range_token(self, mnist_space):
        with pytest.raises(ValueError, match="out of range"):
            mnist_space.decode([3] + [0] * 7)

    def test_roundtrip_random(self, mnist_space, rng):
        for _ in range(50):
            tokens = mnist_space.random_tokens(rng)
            arch = mnist_space.decode(tokens)
            assert mnist_space.encode(arch) == tokens

    def test_encode_rejects_wrong_depth(self, mnist_space, small_arch):
        with pytest.raises(ValueError, match="depth"):
            mnist_space.encode(small_arch)

    def test_encode_maps_clamped_kernel_up(self):
        # ImageNet space on 32px inputs never clamps; build a space where
        # clamping occurs via strides is not possible through decode, so
        # exercise encode directly with a hand-built architecture.
        space = SearchSpace(name="t", num_layers=1, filter_sizes=(5, 7),
                            filter_counts=(4,), input_size=6,
                            input_channels=1, num_classes=10)
        arch = space.decode([1, 0])  # 7x7 kernel clamped to 6
        assert arch.layers[0].kernel == 6
        assert space.encode(arch) == [1, 0]


class TestSampling:
    def test_random_tokens_in_range(self, mnist_space, rng):
        for _ in range(100):
            tokens = mnist_space.random_tokens(rng)
            assert len(tokens) == mnist_space.num_decisions
            for step, token in enumerate(tokens):
                assert 0 <= token < len(mnist_space.choices_at(step))

    def test_random_architecture_decodable(self, mnist_space, rng):
        arch = mnist_space.random_architecture(rng)
        assert arch.depth == mnist_space.num_layers

    def test_enumerate_covers_space(self):
        space = SearchSpace(name="t", num_layers=2, filter_sizes=(3, 5),
                            filter_counts=(2, 4), input_size=8,
                            input_channels=1, num_classes=10)
        archs = list(space.enumerate_architectures())
        assert len(archs) == space.size == 16
        fingerprints = {a.fingerprint() for a in archs}
        assert len(fingerprints) == 16

    @given(seed=st.integers(0, 2**31))
    def test_random_is_seed_deterministic(self, seed):
        space = SearchSpace.from_config(MNIST_CONFIG)
        a = space.random_tokens(np.random.default_rng(seed))
        b = space.random_tokens(np.random.default_rng(seed))
        assert a == b


class TestFromConfig:
    @pytest.mark.parametrize("config", [MNIST_CONFIG, CIFAR_CONFIG,
                                        IMAGENET_CONFIG])
    def test_space_matches_config(self, config):
        space = SearchSpace.from_config(config)
        assert space.num_layers == config.num_layers
        assert space.filter_sizes == tuple(config.filter_sizes)
        assert space.filter_counts == tuple(config.filter_counts)
        assert space.size == config.space_size
