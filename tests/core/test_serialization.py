"""Tests for JSON serialization of architectures and search ledgers."""

import json

import numpy as np
import pytest

from repro.core.architecture import Architecture
from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.core.search import NasSearch
from repro.core.search_space import SearchSpace
from repro.core.serialization import (
    architecture_from_dict,
    architecture_to_dict,
    load_architecture,
    save_architecture,
    save_search_result,
    search_result_to_dict,
    trial_to_dict,
)
from repro.configs import MNIST_CONFIG


class TestArchitectureRoundtrip:
    def test_roundtrip_identity(self):
        arch = Architecture.from_choices(
            [3, 5, 7], [4, 8, 16], input_size=20, input_channels=3,
            num_classes=12, strides=[1, 2, 1],
        )
        clone = architecture_from_dict(architecture_to_dict(arch))
        assert clone.fingerprint() == arch.fingerprint()

    def test_roundtrip_through_json_text(self):
        arch = Architecture.from_choices([5], [9], input_size=28)
        text = json.dumps(architecture_to_dict(arch))
        clone = architecture_from_dict(json.loads(text))
        assert clone.fingerprint() == arch.fingerprint()

    def test_file_roundtrip(self, tmp_path):
        arch = Architecture.from_choices([3, 3], [8, 8], input_size=14)
        path = tmp_path / "arch.json"
        save_architecture(arch, path)
        assert load_architecture(path).fingerprint() == arch.fingerprint()

    def test_missing_field_raises(self):
        with pytest.raises(ValueError, match="missing"):
            architecture_from_dict({"schema": 1, "layers": []})

    def test_wrong_schema_raises(self):
        data = architecture_to_dict(
            Architecture.from_choices([3], [4], input_size=8))
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            architecture_from_dict(data)


class TestSearchResultSerialization:
    @pytest.fixture(scope="class")
    def result(self):
        space = SearchSpace.from_config(MNIST_CONFIG)
        evaluator = SurrogateAccuracyEvaluator(space)
        return NasSearch(space, evaluator).run(5, np.random.default_rng(0))

    def test_dict_summary_fields(self, result):
        data = search_result_to_dict(result)
        assert data["trained_count"] == 5
        assert data["pruned_count"] == 0
        assert len(data["trials"]) == 5
        assert data["simulated_seconds"] == pytest.approx(
            result.simulated_seconds)

    def test_trials_embed_architectures(self, result):
        data = trial_to_dict(result.trials[0])
        clone = architecture_from_dict(data["architecture"])
        assert clone.fingerprint() == result.trials[0].architecture.fingerprint()

    def test_save_writes_valid_json(self, result, tmp_path):
        path = tmp_path / "search.json"
        save_search_result(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "nas"
        assert len(loaded["trials"]) == 5
