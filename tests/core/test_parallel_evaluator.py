"""ParallelEvaluator: process-pool fan-out must be a pure speed knob."""

import numpy as np
import pytest

from repro.core.evaluator import ParallelEvaluator, SurrogateAccuracyEvaluator
from repro.core.search import FnasSearch
from repro.core.search_space import SearchSpace
from repro.configs import MNIST_CONFIG
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator


class ExplodingEvaluator:
    """Raises for every architecture; must raise through the pool too."""

    def evaluate(self, architecture):
        raise ValueError(f"boom: {architecture.describe()}")

    def latency_eval_seconds(self):
        return 0.0


@pytest.fixture(scope="module")
def space():
    return SearchSpace.from_config(MNIST_CONFIG)


@pytest.fixture(scope="module")
def architectures(space):
    rng = np.random.default_rng(1)
    return [space.random_architecture(rng) for _ in range(6)]


class TestParallelEvaluator:
    def test_batch_matches_serial(self, space, architectures):
        inner = SurrogateAccuracyEvaluator(space)
        serial = [inner.evaluate(a) for a in architectures]
        with ParallelEvaluator(inner, max_workers=2) as parallel:
            fanned = parallel.evaluate_batch(architectures)
        assert [o.accuracy for o in fanned] == [o.accuracy for o in serial]
        assert [o.train_seconds for o in fanned] == [
            o.train_seconds for o in serial
        ]

    def test_single_worker_stays_serial(self, space, architectures):
        evaluator = ParallelEvaluator(
            SurrogateAccuracyEvaluator(space), max_workers=1
        )
        outcomes = evaluator.evaluate_batch(architectures)
        assert len(outcomes) == len(architectures)
        assert evaluator._pool is None  # never spawned a pool

    def test_single_evaluate_delegates(self, space, architectures):
        inner = SurrogateAccuracyEvaluator(space)
        evaluator = ParallelEvaluator(inner, max_workers=2)
        assert (evaluator.evaluate(architectures[0]).accuracy
                == inner.evaluate(architectures[0]).accuracy)
        assert (evaluator.latency_eval_seconds()
                == inner.latency_eval_seconds())
        evaluator.close()

    def test_rejects_bad_worker_count(self, space):
        with pytest.raises(ValueError, match="max_workers"):
            ParallelEvaluator(SurrogateAccuracyEvaluator(space), max_workers=0)

    def test_evaluator_exceptions_propagate(self, architectures):
        """Errors raised by the wrapped evaluator are not swallowed and
        must not permanently mark the pool broken."""
        with ParallelEvaluator(ExplodingEvaluator(), max_workers=2) as ev:
            with pytest.raises(ValueError, match="boom"):
                ev.evaluate_batch(architectures)
            assert not ev._pool_broken

    def test_close_is_idempotent(self, space):
        evaluator = ParallelEvaluator(
            SurrogateAccuracyEvaluator(space), max_workers=2
        )
        evaluator.close()
        evaluator.close()

    def test_paired_runner_wraps_and_closes_pool(self, space):
        """run_paired_search(eval_workers=2) must produce the same
        ledgers as the serial run (evaluators are deterministic)."""
        from repro.experiments.runner import run_paired_search

        def run(workers):
            return run_paired_search(
                dataset="mnist",
                platform=Platform.single(PYNQ_Z1),
                specs_ms=[5.0],
                trials=8,
                seed=0,
                batch_size=4,
                eval_workers=workers,
            )

        serial, pooled = run(1), run(2)
        assert ([t.tokens for t in serial.nas.trials]
                == [t.tokens for t in pooled.nas.trials])
        assert ([t.reward for t in serial.fnas[5.0].trials]
                == [t.reward for t in pooled.fnas[5.0].trials])

    def test_batched_fnas_search_with_pool(self, space):
        """End to end: the batched loop fans survivors across the pool."""
        with ParallelEvaluator(
            SurrogateAccuracyEvaluator(space), max_workers=2
        ) as evaluator:
            search = FnasSearch(
                space,
                evaluator,
                LatencyEstimator(Platform.single(PYNQ_Z1)),
                required_latency_ms=5.0,
            )
            result = search.run(16, np.random.default_rng(0), batch_size=8)
        assert len(result.trials) == 16
        assert result.trained_count > 0
