"""Checkpoint/resume: byte-identical trajectories across interruption.

The contract: a search killed at an arbitrary episode and resumed from
its last snapshot produces a trial ledger *byte-identical* (in
serialized JSON form) to the uninterrupted run's, because the snapshot
captures every trajectory-relevant quantity -- controller weights and
Adam moments, the reward baseline, the RNG stream position, and the
ledger itself.  These tests extend PR 1's golden-ledger pin: the seed
trajectory must survive not just batching but interruption.
"""

import json

import numpy as np
import pytest

from repro.core.controller import (
    LstmController,
    RandomController,
    TabularController,
)
from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.core.search import FnasSearch, NasSearch
from repro.core.search_space import SearchSpace
from repro.core.serialization import (
    load_search_result,
    rng_from_state,
    rng_state_to_dict,
    save_search_result,
    search_result_to_dict,
)
from repro.configs import MNIST_CONFIG
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator

from tests.core.test_batched_search import GOLDEN_FNAS


class _KilledMidRun(Exception):
    """Raised by the kill hook to emulate a crash after a snapshot."""


@pytest.fixture(scope="module")
def setup():
    space = SearchSpace.from_config(MNIST_CONFIG)
    return space, SurrogateAccuracyEvaluator(space)


def make_fnas(space, evaluator, seed=3, spec_ms=5.0, fallback=False):
    return FnasSearch(
        space,
        evaluator,
        LatencyEstimator(Platform.single(PYNQ_Z1)),
        required_latency_ms=spec_ms,
        controller=LstmController(space, seed=seed),
        min_latency_fallback=fallback,
    )


def ledger_bytes(result) -> str:
    """The trial ledger in its serialized form (wall time excluded)."""
    payload = search_result_to_dict(result)
    payload.pop("wall_seconds")
    return json.dumps(payload)


def run_killed_then_resumed(make_search, trials, rng_seed, batch_size,
                            kill_at, every, path, monkeypatch):
    """Run with checkpoints, die right after trial ``kill_at``'s
    snapshot, then resume a *fresh* search object from the file."""
    from repro.core import search as search_mod

    orig_after = search_mod._CheckpointPlan.after

    def dying_after(self, completed, rng, result):
        orig_after(self, completed, rng, result)
        if completed >= kill_at:
            raise _KilledMidRun()

    monkeypatch.setattr(search_mod._CheckpointPlan, "after", dying_after)
    with pytest.raises(_KilledMidRun):
        make_search().run(
            trials, np.random.default_rng(rng_seed), batch_size=batch_size,
            checkpoint_every=every, checkpoint_path=path,
        )
    monkeypatch.setattr(search_mod._CheckpointPlan, "after", orig_after)
    return make_search().resume(path)


class TestRngRoundTrip:
    def test_stream_continues_exactly(self):
        rng = np.random.default_rng(123)
        rng.random(17)  # advance
        clone = rng_from_state(json.loads(json.dumps(rng_state_to_dict(rng))))
        np.testing.assert_array_equal(rng.random(50), clone.random(50))

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(ValueError, match="bit generator"):
            rng_from_state({"bit_generator": "NoSuchGenerator"})


class TestControllerStateDicts:
    @pytest.mark.parametrize("make", [
        lambda space: LstmController(space, seed=3, entropy_weight=0.01),
        lambda space: TabularController(space),
    ])
    def test_round_trip_preserves_future_trajectory(self, setup, make):
        space, _ = setup
        rng = np.random.default_rng(0)
        trained = make(space)
        for step in range(5):
            trained.update(trained.sample(rng), 0.5 - step)
        state = json.loads(json.dumps(trained.state_dict()))
        fresh = make(space)
        fresh.load_state_dict(state)
        # Same future samples *and* same future updates (Adam moments
        # restored, not just weights).
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        for _ in range(3):
            sample_a = trained.sample(rng_a)
            sample_b = fresh.sample(rng_b)
            assert sample_a.tokens == sample_b.tokens
            assert trained.update(sample_a, 0.3) == pytest.approx(
                fresh.update(sample_b, 0.3), abs=0
            )

    def test_random_controller_state_is_type_tag_only(self, setup):
        space, _ = setup
        controller = RandomController(space)
        state = controller.state_dict()
        controller.load_state_dict(state)
        assert state == {"type": "RandomController"}

    def test_cross_type_load_rejected(self, setup):
        space, _ = setup
        state = TabularController(space).state_dict()
        with pytest.raises(ValueError, match="produced by"):
            LstmController(space).load_state_dict(state)

    def test_shape_mismatch_rejected(self, setup):
        space, _ = setup
        state = LstmController(space, hidden_size=16).state_dict()
        with pytest.raises(ValueError, match="shape"):
            LstmController(space, hidden_size=32).load_state_dict(state)

    def test_missing_head_kind_rejected(self, setup):
        """A truncated snapshot must not load silently with a fresh
        (wrong) head left in place."""
        space, _ = setup
        state = LstmController(space, seed=3).state_dict()
        del state["heads"]["filter_size"]
        with pytest.raises(ValueError, match="head kinds"):
            LstmController(space, seed=3).load_state_dict(state)


class TestLedgerRoundTrip:
    def test_save_load_save_is_byte_identical(self, setup, tmp_path):
        space, evaluator = setup
        result = make_fnas(space, evaluator).run(8, np.random.default_rng(1))
        path = tmp_path / "ledger.json"
        save_search_result(result, path)
        reloaded = load_search_result(path)
        assert ledger_bytes(result) == ledger_bytes(reloaded)
        assert reloaded.trained_count == result.trained_count
        assert reloaded.best().tokens == result.best().tokens


class TestResumeDeterminism:
    """The acceptance criterion: interrupt anywhere, resume, get the
    byte-identical ledger."""

    @pytest.mark.parametrize("kill_at", [1, 5, 11])
    def test_sequential_resume_matches_golden_ledger(
        self, setup, tmp_path, monkeypatch, kill_at
    ):
        """Resume must not only match the uninterrupted run -- it must
        match the pre-refactor seed trajectory pinned by PR 1."""
        space, evaluator = setup
        path = tmp_path / "ck.json"
        resumed = run_killed_then_resumed(
            lambda: make_fnas(space, evaluator), len(GOLDEN_FNAS),
            rng_seed=42, batch_size=1, kill_at=kill_at, every=1,
            path=path, monkeypatch=monkeypatch,
        )
        observed = [
            (t.tokens, t.reward, t.trained, t.accuracy)
            for t in resumed.trials
        ]
        for got, want in zip(observed, GOLDEN_FNAS):
            assert got[0] == want[0]
            assert got[1] == pytest.approx(want[1], rel=1e-12)
            assert got[2] == want[2]
            if want[3] is None:
                assert got[3] is None
            else:
                assert got[3] == pytest.approx(want[3], rel=1e-12)

    @pytest.mark.parametrize("batch_size,kill_at,every", [
        (1, 9, 4),    # kill between checkpoint multiples
        (4, 8, 4),    # batched path, kill at a batch boundary
        (8, 16, 8),   # batch == cadence
    ])
    def test_resume_is_byte_identical_to_uninterrupted(
        self, setup, tmp_path, monkeypatch, batch_size, kill_at, every
    ):
        space, evaluator = setup
        trials = 21
        uninterrupted = make_fnas(space, evaluator, fallback=True).run(
            trials, np.random.default_rng(42), batch_size=batch_size
        )
        path = tmp_path / "ck.json"
        resumed = run_killed_then_resumed(
            lambda: make_fnas(space, evaluator, fallback=True), trials,
            rng_seed=42, batch_size=batch_size, kill_at=kill_at,
            every=every, path=path, monkeypatch=monkeypatch,
        )
        assert ledger_bytes(resumed) == ledger_bytes(uninterrupted)

    def test_nas_resume_is_byte_identical(self, setup, tmp_path, monkeypatch):
        space, evaluator = setup

        def make():
            return NasSearch(
                space, evaluator,
                controller=LstmController(space, seed=5),
                latency_estimator=LatencyEstimator(Platform.single(PYNQ_Z1)),
            )

        uninterrupted = make().run(15, np.random.default_rng(9))
        path = tmp_path / "ck.json"
        resumed = run_killed_then_resumed(
            make, 15, rng_seed=9, batch_size=1, kill_at=6, every=3,
            path=path, monkeypatch=monkeypatch,
        )
        assert ledger_bytes(resumed) == ledger_bytes(uninterrupted)

    def test_resume_after_final_checkpoint_only_finalizes(
        self, setup, tmp_path
    ):
        """A snapshot at the last trial resumes to a complete result."""
        space, evaluator = setup
        path = tmp_path / "ck.json"
        full = make_fnas(space, evaluator).run(
            6, np.random.default_rng(2), batch_size=1,
            checkpoint_every=6, checkpoint_path=path,
        )
        resumed = make_fnas(space, evaluator).resume(path)
        assert ledger_bytes(resumed) == ledger_bytes(full)


class TestCheckpointMechanics:
    def test_checkpoint_file_is_written_and_tmp_cleaned(
        self, setup, tmp_path
    ):
        space, evaluator = setup
        path = tmp_path / "ck.json"
        make_fnas(space, evaluator).run(
            10, np.random.default_rng(0), checkpoint_every=5,
            checkpoint_path=path,
        )
        assert path.exists()
        assert not (tmp_path / "ck.json.tmp").exists()
        snapshot = json.loads(path.read_text())
        assert snapshot["kind"] == "fnas"
        assert snapshot["next_index"] == 10
        assert snapshot["controller"]["type"] == "LstmController"
        assert snapshot["cache_stats"]["architecture_tier"]["misses"] > 0

    def test_checkpoint_args_must_come_together(self, setup, tmp_path):
        space, evaluator = setup
        search = make_fnas(space, evaluator)
        with pytest.raises(ValueError, match="together"):
            search.run(5, np.random.default_rng(0), checkpoint_every=2)
        with pytest.raises(ValueError, match="together"):
            search.run(5, np.random.default_rng(0),
                       checkpoint_path=tmp_path / "x.json")

    def test_non_positive_cadence_rejected(self, setup, tmp_path):
        space, evaluator = setup
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_fnas(space, evaluator).run(
                5, np.random.default_rng(0), checkpoint_every=0,
                checkpoint_path=tmp_path / "x.json",
            )

    def test_resume_rejects_wrong_kind(self, setup, tmp_path):
        space, evaluator = setup
        path = tmp_path / "ck.json"
        make_fnas(space, evaluator).run(
            4, np.random.default_rng(0), checkpoint_every=2,
            checkpoint_path=path,
        )
        nas = NasSearch(space, evaluator,
                        controller=LstmController(space, seed=3))
        with pytest.raises(ValueError, match="cannot resume"):
            nas.resume(path)

    def test_resume_rejects_wrong_spec(self, setup, tmp_path):
        space, evaluator = setup
        path = tmp_path / "ck.json"
        make_fnas(space, evaluator, spec_ms=5.0).run(
            4, np.random.default_rng(0), checkpoint_every=2,
            checkpoint_path=path,
        )
        with pytest.raises(ValueError, match="spec"):
            make_fnas(space, evaluator, spec_ms=2.0).resume(path)

    def test_stateless_controller_cannot_checkpoint(self, setup, tmp_path):
        """A controller without state_dict fails fast, not at snapshot
        time half-way through an expensive run."""
        space, evaluator = setup

        class Minimal:
            def sample(self, rng):
                return RandomController(space).sample(rng)

            def update(self, sample, advantage):
                return 0.0

        search = FnasSearch(
            space, evaluator, LatencyEstimator(Platform.single(PYNQ_Z1)),
            required_latency_ms=5.0, controller=Minimal(),
        )
        with pytest.raises(ValueError, match="state_dict"):
            search.run(5, np.random.default_rng(0), checkpoint_every=2,
                       checkpoint_path=tmp_path / "x.json")
