"""Tests for the NAS / FNAS search loops."""

import numpy as np
import pytest

from repro.core.controller import TabularController
from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.core.search import FnasSearch, NasSearch
from repro.core.search_space import SearchSpace
from repro.configs import MNIST_CONFIG
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator


@pytest.fixture(scope="module")
def setup():
    space = SearchSpace.from_config(MNIST_CONFIG)
    estimator = LatencyEstimator(Platform.single(PYNQ_Z1))
    evaluator = SurrogateAccuracyEvaluator(space)
    return space, estimator, evaluator


class TestNasSearch:
    def test_all_children_trained(self, setup):
        space, estimator, evaluator = setup
        result = NasSearch(space, evaluator).run(10, np.random.default_rng(0))
        assert len(result.trials) == 10
        assert result.trained_count == 10
        assert result.pruned_count == 0

    def test_latency_attached_when_estimator_given(self, setup):
        space, estimator, evaluator = setup
        result = NasSearch(
            space, evaluator, latency_estimator=estimator
        ).run(5, np.random.default_rng(0))
        assert all(t.latency_ms is not None for t in result.trials)

    def test_best_is_max_accuracy(self, setup):
        space, estimator, evaluator = setup
        result = NasSearch(space, evaluator).run(15, np.random.default_rng(1))
        best = result.best()
        assert best.accuracy == max(t.accuracy for t in result.trials)

    def test_simulated_seconds_sums_trials(self, setup):
        space, estimator, evaluator = setup
        result = NasSearch(space, evaluator).run(8, np.random.default_rng(2))
        assert result.simulated_seconds == pytest.approx(
            sum(t.sim_seconds for t in result.trials)
        )

    def test_rejects_non_positive_trials(self, setup):
        space, estimator, evaluator = setup
        with pytest.raises(ValueError):
            NasSearch(space, evaluator).run(0, np.random.default_rng(0))

    def test_reproducible_with_seed(self, setup):
        space, estimator, evaluator = setup

        def run(seed):
            return NasSearch(
                space, evaluator,
                controller=TabularController(space),
            ).run(10, np.random.default_rng(seed))

        a, b = run(5), run(5)
        assert [t.tokens for t in a.trials] == [t.tokens for t in b.trials]


class TestFnasSearch:
    def test_violators_are_not_trained(self, setup):
        space, estimator, evaluator = setup
        search = FnasSearch(space, evaluator, estimator,
                            required_latency_ms=5.0)
        result = search.run(30, np.random.default_rng(0))
        for trial in result.trials:
            if trial.latency_ms > 5.0:
                assert not trial.trained
                assert trial.accuracy is None
                assert trial.reward < -1.0
            else:
                assert trial.trained
                assert trial.accuracy is not None

    def test_pruned_plus_trained_is_total(self, setup):
        space, estimator, evaluator = setup
        result = FnasSearch(space, evaluator, estimator, 5.0).run(
            20, np.random.default_rng(1))
        assert result.trained_count + result.pruned_count == 20

    def test_best_valid_meets_spec(self, setup):
        space, estimator, evaluator = setup
        result = FnasSearch(space, evaluator, estimator, 10.0).run(
            40, np.random.default_rng(2))
        best = result.best_valid(10.0)
        assert best.latency_ms <= 10.0

    def test_impossible_spec_trains_nothing(self, setup):
        space, estimator, evaluator = setup
        result = FnasSearch(space, evaluator, estimator, 0.001).run(
            10, np.random.default_rng(3))
        assert result.trained_count == 0
        with pytest.raises(ValueError, match="no child"):
            result.best_valid(0.001)
        with pytest.raises(ValueError, match="trained no children"):
            result.best()

    def test_pruning_saves_simulated_time(self, setup):
        """FNAS under a tight spec must cost less than NAS, same trials."""
        space, estimator, evaluator = setup
        rng_nas = np.random.default_rng(4)
        rng_fnas = np.random.default_rng(4)
        nas = NasSearch(space, evaluator).run(30, rng_nas)
        fnas = FnasSearch(space, evaluator, estimator, 2.0).run(30, rng_fnas)
        assert fnas.simulated_seconds < nas.simulated_seconds

    def test_controller_learns_to_avoid_violations(self, setup):
        """Later trials should violate less often than early ones."""
        space, estimator, evaluator = setup
        search = FnasSearch(
            space, evaluator, estimator, required_latency_ms=5.0,
            controller=TabularController(space, lr=0.3),
        )
        result = search.run(60, np.random.default_rng(5))
        first = result.trials[:20]
        last = result.trials[-20:]
        violations_first = sum(1 for t in first if t.pruned)
        violations_last = sum(1 for t in last if t.pruned)
        assert violations_last <= violations_first

    def test_required_latency_property(self, setup):
        space, estimator, evaluator = setup
        search = FnasSearch(space, evaluator, estimator, 7.5)
        assert search.required_latency_ms == 7.5
