"""Tests for search-ledger diagnostics."""

import math

import numpy as np
import pytest

from repro.core.analysis import (
    best_accuracy_curve,
    reward_curve,
    summarize,
    unique_architecture_count,
    violation_rate_curve,
)
from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.core.search import FnasSearch, NasSearch
from repro.core.search_space import SearchSpace
from repro.configs import MNIST_CONFIG
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator


@pytest.fixture(scope="module")
def fnas_result():
    space = SearchSpace.from_config(MNIST_CONFIG)
    evaluator = SurrogateAccuracyEvaluator(space)
    estimator = LatencyEstimator(Platform.single(PYNQ_Z1))
    return FnasSearch(space, evaluator, estimator, 5.0).run(
        30, np.random.default_rng(0))


@pytest.fixture(scope="module")
def nas_result():
    space = SearchSpace.from_config(MNIST_CONFIG)
    evaluator = SurrogateAccuracyEvaluator(space)
    return NasSearch(space, evaluator).run(10, np.random.default_rng(0))


class TestCurves:
    def test_violation_curve_length_and_range(self, fnas_result):
        curve = violation_rate_curve(fnas_result)
        assert len(curve) == 30
        assert all(0.0 <= v <= 1.0 for v in curve)

    def test_violation_curve_matches_ledger(self, fnas_result):
        curve = violation_rate_curve(fnas_result, window=1)
        for value, trial in zip(curve, fnas_result.trials):
            assert value == (1.0 if trial.pruned else 0.0)

    def test_nas_has_zero_violations(self, nas_result):
        assert all(v == 0.0 for v in violation_rate_curve(nas_result))

    def test_reward_curve_smooths(self, fnas_result):
        raw = reward_curve(fnas_result, window=1)
        smooth = reward_curve(fnas_result, window=10)
        assert np.std(smooth) <= np.std(raw) + 1e-12

    def test_best_accuracy_curve_monotone(self, fnas_result):
        curve = best_accuracy_curve(fnas_result)
        values = [v for v in curve if not math.isnan(v)]
        assert values == sorted(values)

    def test_window_validation(self, fnas_result):
        with pytest.raises(ValueError):
            violation_rate_curve(fnas_result, window=0)
        with pytest.raises(ValueError):
            reward_curve(fnas_result, window=-1)


class TestSummary:
    def test_counts_consistent(self, fnas_result):
        summary = summarize(fnas_result)
        assert summary.trials == 30
        assert summary.trained + summary.pruned == 30
        assert summary.unique_architectures <= 30
        assert summary.unique_architectures == unique_architecture_count(
            fnas_result)

    def test_best_matches_ledger(self, fnas_result):
        summary = summarize(fnas_result)
        assert summary.best_accuracy == fnas_result.best().accuracy

    def test_format_renders(self, fnas_result):
        text = summarize(fnas_result).format()
        assert "trials" in text and "best accuracy" in text
