"""Batched search runtime: equivalence, determinism and ledger semantics.

The contract under test: ``batch_size=1`` reproduces the pre-refactor
sequential trajectories *exactly* (tokens, rewards, pruned/trained
flags -- pinned by a golden ledger captured from the seed code), while
``batch_size > 1`` drives the vectorized path with the same ledger
invariants and seeded determinism.
"""

import numpy as np
import pytest

from repro.core.controller import (
    ControllerSample,
    LstmController,
    RandomController,
    TabularController,
)
from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.core.search import FnasSearch, NasSearch, SearchResult, TrialRecord
from repro.core.search_space import SearchSpace
from repro.configs import MNIST_CONFIG
from repro.fpga.device import PYNQ_Z1
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator

#: FNAS ledger captured from the pre-refactor seed code:
#: MNIST space, PYNQ-Z1, spec 5 ms, LstmController(seed=3), rng seed 42,
#: 12 trials.  (tokens, reward, trained, accuracy) per trial.
GOLDEN_FNAS = [
    ((2, 1, 2, 2, 0, 2, 2, 2), -5.531904, False, None),
    ((0, 1, 1, 2, 1, 2, 1, 0), 1.915310524263901, True, 0.9914125242639009),
    ((1, 0, 2, 1, 2, 1, 2, 2), -1.8477900000000003, False, None),
    ((2, 0, 1, 0, 0, 1, 2, 2), -1.53664, False, None),
    ((0, 1, 1, 0, 0, 1, 0, 1), 0.19315088665734811, True, 0.988217410921249),
    ((1, 2, 2, 0, 2, 2, 1, 0), -1.382976, False, None),
    ((1, 0, 0, 0, 2, 1, 1, 2), 0.691656443248018, True, 0.9912614561776538),
    ((1, 1, 0, 0, 1, 1, 1, 2), 0.3832179988066632, True, 0.9891298560611007),
    ((1, 1, 1, 0, 0, 1, 0, 1), 0.19336756075377373, True, 0.9879854178888776),
    ((2, 0, 0, 0, 0, 1, 1, 2), 0.3520426985586731, True, 0.9890199117691543),
    ((1, 1, 2, 0, 0, 0, 1, 1), 0.3854092774542002, True, 0.9903765605205488),
    ((0, 1, 0, 1, 1, 1, 0, 1), 0.23382396727319626, True, 0.9884309780849648),
]


@pytest.fixture(scope="module")
def setup():
    space = SearchSpace.from_config(MNIST_CONFIG)
    evaluator = SurrogateAccuracyEvaluator(space)
    return space, evaluator


def make_fnas(space, evaluator, controller=None, spec_ms=5.0):
    return FnasSearch(
        space,
        evaluator,
        LatencyEstimator(Platform.single(PYNQ_Z1)),
        required_latency_ms=spec_ms,
        controller=controller,
    )


class TestSeedEquivalence:
    def test_batch_size_one_matches_golden_seed_ledger(self, setup):
        space, evaluator = setup
        search = make_fnas(space, evaluator, LstmController(space, seed=3))
        result = search.run(
            len(GOLDEN_FNAS), np.random.default_rng(42), batch_size=1
        )
        observed = [
            (t.tokens, t.reward, t.trained, t.accuracy) for t in result.trials
        ]
        for got, want in zip(observed, GOLDEN_FNAS):
            assert got[0] == want[0]
            assert got[1] == pytest.approx(want[1], rel=1e-12)
            assert got[2] == want[2]
            if want[3] is None:
                assert got[3] is None
            else:
                assert got[3] == pytest.approx(want[3], rel=1e-12)

    def test_default_run_is_batch_size_one(self, setup):
        space, evaluator = setup
        a = make_fnas(space, evaluator, LstmController(space, seed=3))
        b = make_fnas(space, evaluator, LstmController(space, seed=3))
        ra = a.run(10, np.random.default_rng(7))
        rb = b.run(10, np.random.default_rng(7), batch_size=1)
        assert [t.tokens for t in ra.trials] == [t.tokens for t in rb.trials]
        assert [t.reward for t in ra.trials] == [t.reward for t in rb.trials]


class TestControllerBatchEquivalence:
    @pytest.mark.parametrize("make", [
        lambda space: LstmController(space, seed=3),
        lambda space: TabularController(space),
        lambda space: RandomController(space),
    ])
    def test_sample_batch_of_one_matches_sample(self, setup, make):
        space, _ = setup
        for seed in range(10):
            sequential = make(space).sample(np.random.default_rng(seed))
            batched = make(space).sample_batch(np.random.default_rng(seed), 1)
            assert batched.samples[0].tokens == sequential.tokens
            assert batched.samples[0].log_prob == pytest.approx(
                sequential.log_prob
            )

    def test_lstm_update_batch_of_one_matches_update(self, setup):
        space, _ = setup
        a = LstmController(space, seed=3, entropy_weight=0.01)
        b = LstmController(space, seed=3, entropy_weight=0.01)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        for step in range(4):
            advantage = 0.7 - step
            loss_a = a.update(a.sample(rng_a), advantage)
            loss_b = b.update_batch(b.sample_batch(rng_b, 1), [advantage])
            assert loss_b == pytest.approx(loss_a)
        for pa, pb in zip(a._param_list(), b._param_list()):
            np.testing.assert_allclose(pa, pb, atol=1e-12)

    def test_tabular_update_batch_of_one_matches_update(self, setup):
        space, _ = setup
        a, b = TabularController(space), TabularController(space)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        for step in range(4):
            advantage = -0.3 + step
            loss_a = a.update(a.sample(rng_a), advantage)
            loss_b = b.update_batch(b.sample_batch(rng_b, 1), [advantage])
            assert loss_b == pytest.approx(loss_a)
        for pa, pb in zip(a.logits, b.logits):
            np.testing.assert_allclose(pa, pb, atol=1e-12)

    def test_update_batch_rejects_wrong_advantage_count(self, setup):
        space, _ = setup
        controller = LstmController(space, seed=0)
        batch = controller.sample_batch(np.random.default_rng(0), 3)
        with pytest.raises(ValueError, match="advantages"):
            controller.update_batch(batch, [0.0, 0.0])

    def test_sample_batch_rejects_non_positive(self, setup):
        space, _ = setup
        with pytest.raises(ValueError, match="batch_size"):
            LstmController(space).sample_batch(np.random.default_rng(0), 0)


class TestBatchedSearch:
    def test_fnas_batched_ledger_invariants(self, setup):
        space, evaluator = setup
        search = make_fnas(space, evaluator)
        result = search.run(30, np.random.default_rng(0), batch_size=8)
        assert len(result.trials) == 30
        assert [t.index for t in result.trials] == list(range(30))
        for trial in result.trials:
            if trial.latency_ms > 5.0:
                assert trial.pruned and trial.accuracy is None
                assert trial.reward < -1.0
            else:
                assert trial.trained and trial.accuracy is not None
        assert result.trained_count + result.pruned_count == 30

    def test_fnas_batched_is_deterministic(self, setup):
        space, evaluator = setup

        def run():
            search = make_fnas(space, evaluator, LstmController(space, seed=1))
            return search.run(25, np.random.default_rng(9), batch_size=8)

        a, b = run(), run()
        assert [t.tokens for t in a.trials] == [t.tokens for t in b.trials]
        assert [t.reward for t in a.trials] == [t.reward for t in b.trials]

    def test_nas_batched_trains_everything(self, setup):
        space, evaluator = setup
        estimator = LatencyEstimator(Platform.single(PYNQ_Z1))
        result = NasSearch(
            space, evaluator, latency_estimator=estimator
        ).run(20, np.random.default_rng(0), batch_size=6)
        assert result.trained_count == 20
        assert all(t.latency_ms is not None for t in result.trials)

    def test_batched_controller_learns_to_avoid_violations(self, setup):
        space, evaluator = setup
        search = make_fnas(
            space, evaluator, TabularController(space, lr=0.3)
        )
        result = search.run(64, np.random.default_rng(5), batch_size=8)
        first, last = result.trials[:24], result.trials[-24:]
        assert (sum(t.pruned for t in last)
                <= sum(t.pruned for t in first))

    def test_rejects_non_positive_batch_size(self, setup):
        space, evaluator = setup
        with pytest.raises(ValueError, match="batch_size"):
            make_fnas(space, evaluator).run(
                10, np.random.default_rng(0), batch_size=0
            )

    def test_min_latency_fallback_still_fires(self, setup):
        space, evaluator = setup
        search = FnasSearch(
            space,
            evaluator,
            LatencyEstimator(Platform.single(PYNQ_Z1)),
            required_latency_ms=1.2,
            min_latency_fallback=True,
        )
        result = search.run(8, np.random.default_rng(3), batch_size=4)
        assert result.best_valid(1.2) is not None

    def test_batch_fallback_for_sequential_only_controller(self, setup):
        """A controller implementing only sample/update still batches."""
        space, evaluator = setup

        class MinimalController:
            def __init__(self, space):
                self.inner = RandomController(space)
                self.updates = 0

            def sample(self, rng) -> ControllerSample:
                return self.inner.sample(rng)

            def update(self, sample, advantage) -> float:
                self.updates += 1
                return 0.0

        controller = MinimalController(space)
        result = make_fnas(space, evaluator, controller).run(
            12, np.random.default_rng(0), batch_size=4
        )
        assert len(result.trials) == 12
        assert controller.updates == 12


class TestSearchResultAggregates:
    def _record(self, index, trained, sim_seconds):
        space = SearchSpace.from_config(MNIST_CONFIG)
        arch = space.decode([0] * space.num_decisions)
        return TrialRecord(
            index=index, tokens=(0,), architecture=arch, latency_ms=None,
            accuracy=0.9 if trained else None, reward=0.0, trained=trained,
            sim_seconds=sim_seconds,
        )

    def test_aggregates_fold_incrementally(self):
        result = SearchResult(name="t")
        result.trials.append(self._record(0, True, 2.0))
        assert result.simulated_seconds == pytest.approx(2.0)
        assert result.trained_count == 1
        # Appending after a read must be picked up by the next read.
        result.trials.append(self._record(1, False, 3.5))
        assert result.simulated_seconds == pytest.approx(5.5)
        assert result.trained_count == 1
        assert result.pruned_count == 1

    def test_aggregates_survive_truncation(self):
        result = SearchResult(name="t")
        for i in range(4):
            result.trials.append(self._record(i, True, 1.0))
        assert result.simulated_seconds == pytest.approx(4.0)
        del result.trials[2:]
        assert result.simulated_seconds == pytest.approx(2.0)
        assert result.trained_count == 2

    def test_aggregates_survive_truncate_then_extend_without_read(self):
        """Rebuilding the ledger back to (or past) its old length between
        aggregate reads must not leave the fold stale."""
        result = SearchResult(name="t")
        for i in range(10):
            result.trials.append(self._record(i, True, 1.0))
        assert result.simulated_seconds == pytest.approx(10.0)
        del result.trials[2:]
        result.trials.extend(self._record(i, False, 5.0) for i in range(8))
        assert result.simulated_seconds == pytest.approx(2.0 + 8 * 5.0)
        assert result.trained_count == 2
        assert result.pruned_count == 8
