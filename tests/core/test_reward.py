"""Tests for the equation (1) reward and the EMA baseline."""

import pytest
from hypothesis import given, strategies as st

from repro.core.reward import AccuracyBaseline, FnasReward


class TestFnasReward:
    def test_violation_formula(self):
        reward = FnasReward(required_latency_ms=10.0)
        signal = reward.violation(25.0)
        # (rL - L)/rL - 1 = (10-25)/10 - 1 = -2.5
        assert signal.value == pytest.approx(-2.5)
        assert signal.violated
        assert signal.accuracy is None

    def test_violation_reward_is_always_below_minus_one(self):
        reward = FnasReward(10.0)
        for latency in (10.01, 15.0, 100.0):
            assert reward.violation(latency).value < -1.0

    def test_satisfaction_formula(self):
        reward = FnasReward(10.0)
        signal = reward.satisfaction(accuracy=0.95, latency_ms=8.0,
                                     baseline=0.90)
        # (A - b) + L/rL = 0.05 + 0.8
        assert signal.value == pytest.approx(0.85)
        assert not signal.violated
        assert signal.accuracy == 0.95

    def test_boundary_latency_is_satisfaction(self):
        reward = FnasReward(10.0)
        assert not reward.violates(10.0)
        signal = reward.satisfaction(0.9, 10.0, 0.9)
        assert signal.value == pytest.approx(1.0)

    def test_latency_term_rewards_approaching_spec(self):
        reward = FnasReward(10.0)
        slow = reward.satisfaction(0.9, 9.0, 0.9).value
        fast = reward.satisfaction(0.9, 1.0, 0.9).value
        assert slow > fast

    def test_violation_on_satisfying_latency_raises(self):
        with pytest.raises(ValueError, match="satisfies"):
            FnasReward(10.0).violation(5.0)

    def test_satisfaction_on_violating_latency_raises(self):
        with pytest.raises(ValueError, match="violates"):
            FnasReward(10.0).satisfaction(0.9, 15.0, 0.5)

    def test_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            FnasReward(0.0)
        with pytest.raises(ValueError):
            FnasReward(-1.0)

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ValueError, match="accuracy"):
            FnasReward(10.0).satisfaction(1.5, 5.0, 0.0)

    @given(
        rl=st.floats(0.1, 100.0),
        latency=st.floats(0.01, 1000.0),
    )
    def test_violation_branch_never_crosses_satisfaction(self, rl, latency):
        """Violating rewards are always below any satisfying reward."""
        reward = FnasReward(rl)
        if reward.violates(latency):
            value = reward.violation(latency).value
            # Satisfaction minimum: (0 - 1) + ~0 = -1.
            assert value < -1.0
        else:
            value = reward.satisfaction(0.0, latency, 1.0).value
            assert value >= -1.0


class TestAccuracyBaseline:
    def test_starts_at_zero(self):
        assert AccuracyBaseline().value == 0.0
        assert not AccuracyBaseline().initialized

    def test_first_update_sets_value(self):
        baseline = AccuracyBaseline(decay=0.9)
        assert baseline.update(0.8) == pytest.approx(0.8)
        assert baseline.initialized

    def test_ema_recursion(self):
        baseline = AccuracyBaseline(decay=0.5)
        baseline.update(0.8)
        assert baseline.update(0.4) == pytest.approx(0.6)
        assert baseline.update(0.6) == pytest.approx(0.6)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            AccuracyBaseline(decay=1.0)
        with pytest.raises(ValueError):
            AccuracyBaseline(decay=-0.1)

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ValueError):
            AccuracyBaseline().update(1.2)

    @given(values=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50),
           decay=st.floats(0.0, 0.99))
    def test_baseline_stays_within_observed_range(self, values, decay):
        baseline = AccuracyBaseline(decay=decay)
        for v in values:
            baseline.update(v)
        assert min(values) - 1e-9 <= baseline.value <= max(values) + 1e-9
