"""Tests for the architecture model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.architecture import Architecture, ConvLayerSpec


class TestConvLayerSpec:
    def test_basic_shapes_stride1(self):
        spec = ConvLayerSpec(in_channels=3, out_channels=8, kernel=3,
                             in_rows=28, in_cols=28)
        assert spec.out_rows == 28
        assert spec.out_cols == 28

    def test_strided_output_is_ceil(self):
        spec = ConvLayerSpec(in_channels=3, out_channels=8, kernel=3,
                             in_rows=9, in_cols=9, stride=2)
        assert spec.out_rows == 5
        assert spec.out_cols == 5

    def test_macs_formula(self):
        spec = ConvLayerSpec(in_channels=2, out_channels=4, kernel=3,
                             in_rows=8, in_cols=8)
        assert spec.macs == 3 * 3 * 2 * 4 * 8 * 8

    def test_weight_count(self):
        spec = ConvLayerSpec(in_channels=2, out_channels=4, kernel=5,
                             in_rows=10, in_cols=10)
        assert spec.weight_count == 5 * 5 * 2 * 4

    def test_ifm_ofm_sizes(self):
        spec = ConvLayerSpec(in_channels=2, out_channels=4, kernel=3,
                             in_rows=8, in_cols=6)
        assert spec.ifm_size == 2 * 8 * 6
        assert spec.ofm_size == 4 * 8 * 6

    @pytest.mark.parametrize("field,value", [
        ("in_channels", 0), ("out_channels", -1), ("kernel", 0),
        ("in_rows", 0), ("in_cols", -3), ("stride", 0),
    ])
    def test_rejects_non_positive(self, field, value):
        kwargs = dict(in_channels=2, out_channels=4, kernel=3,
                      in_rows=8, in_cols=8, stride=1)
        kwargs[field] = value
        with pytest.raises(ValueError):
            ConvLayerSpec(**kwargs)

    def test_rejects_kernel_larger_than_input(self):
        with pytest.raises(ValueError, match="kernel"):
            ConvLayerSpec(in_channels=1, out_channels=1, kernel=9,
                          in_rows=8, in_cols=8)

    @given(
        n=st.integers(1, 16),
        m=st.integers(1, 16),
        k=st.integers(1, 5),
        size=st.integers(5, 32),
        stride=st.integers(1, 3),
    )
    def test_macs_match_output_geometry(self, n, m, k, size, stride):
        spec = ConvLayerSpec(in_channels=n, out_channels=m, kernel=k,
                             in_rows=size, in_cols=size, stride=stride)
        assert spec.macs == k * k * n * m * spec.out_rows * spec.out_cols
        assert spec.out_rows == math.ceil(size / stride)


class TestArchitecture:
    def test_from_choices_chains_shapes(self):
        arch = Architecture.from_choices(
            [3, 5], [4, 8], input_size=16, input_channels=3
        )
        assert arch.layers[0].in_channels == 3
        assert arch.layers[1].in_channels == 4
        assert arch.layers[1].out_channels == 8
        assert arch.depth == 2

    def test_from_choices_clamps_oversized_kernels(self):
        arch = Architecture.from_choices(
            [14, 14], [4, 4], input_size=28, input_channels=1,
            strides=[4, 1],
        )
        # After the stride-4 layer the map is 7x7; the 14x14 kernel
        # must have been clamped to 7.
        assert arch.layers[1].kernel == 7

    def test_total_macs_is_sum(self):
        arch = Architecture.from_choices(
            [3, 3, 3], [4, 8, 4], input_size=10, input_channels=1
        )
        assert arch.total_macs == sum(l.macs for l in arch.layers)

    def test_total_weights_is_sum(self):
        arch = Architecture.from_choices(
            [3, 5], [4, 8], input_size=10, input_channels=2
        )
        assert arch.total_weights == sum(l.weight_count for l in arch.layers)

    def test_filter_accessors(self):
        arch = Architecture.from_choices(
            [3, 5], [4, 8], input_size=16, input_channels=1
        )
        assert arch.filter_sizes == (3, 5)
        assert arch.filter_counts == (4, 8)

    def test_describe_format(self):
        arch = Architecture.from_choices(
            [3, 5], [4, 8], input_size=16, input_channels=1
        )
        assert arch.describe() == "3x3/4 -> 5x5/8"

    def test_fingerprint_distinguishes_architectures(self):
        a = Architecture.from_choices([3, 5], [4, 8], input_size=16)
        b = Architecture.from_choices([5, 3], [4, 8], input_size=16)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_stable(self):
        a = Architecture.from_choices([3, 5], [4, 8], input_size=16)
        b = Architecture.from_choices([3, 5], [4, 8], input_size=16)
        assert a.fingerprint() == b.fingerprint()

    def test_rejects_empty_layers(self):
        with pytest.raises(ValueError, match="at least one"):
            Architecture(layers=(), num_classes=10, input_channels=1,
                         input_size=28)

    def test_rejects_mismatched_channel_chain(self):
        layers = (
            ConvLayerSpec(1, 4, 3, 8, 8),
            ConvLayerSpec(8, 4, 3, 8, 8),  # expects 4 in, says 8
        )
        with pytest.raises(ValueError, match="in_channels"):
            Architecture(layers=layers, num_classes=10, input_channels=1,
                         input_size=8)

    def test_rejects_mismatched_spatial_chain(self):
        layers = (
            ConvLayerSpec(1, 4, 3, 8, 8, stride=2),
            ConvLayerSpec(4, 4, 3, 8, 8),  # upstream emits 4x4
        )
        with pytest.raises(ValueError, match="input size"):
            Architecture(layers=layers, num_classes=10, input_channels=1,
                         input_size=8)

    def test_rejects_bad_num_classes(self):
        with pytest.raises(ValueError, match="num_classes"):
            Architecture.from_choices([3], [4], input_size=8, num_classes=1)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="same length"):
            Architecture.from_choices([3, 3], [4], input_size=8)

    def test_strides_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="strides"):
            Architecture.from_choices([3], [4], input_size=8, strides=[1, 2])

    @given(
        depth=st.integers(1, 6),
        data=st.data(),
    )
    def test_random_spaces_build_consistently(self, depth, data):
        sizes = data.draw(st.lists(
            st.sampled_from([1, 3, 5, 7]), min_size=depth, max_size=depth))
        counts = data.draw(st.lists(
            st.integers(1, 32), min_size=depth, max_size=depth))
        arch = Architecture.from_choices(
            sizes, counts, input_size=16, input_channels=3
        )
        assert arch.depth == depth
        assert arch.total_macs > 0
        # Channel chain is consistent by construction.
        for prev, cur in zip(arch.layers, arch.layers[1:]):
            assert cur.in_channels == prev.out_channels
