"""Docstring-coverage gate over the public API of ``src/repro``.

CI additionally runs ``interrogate --fail-under`` (see
``.github/workflows/ci.yml``); this AST-based check enforces the same
bar inside tier-1 with zero extra dependencies, so coverage cannot rot
between CI configurations.  Scope mirrors interrogate's settings:
private names (single leading underscore), dunders and nested
functions are exempt; every public module, class, function and method
must carry a docstring.
"""

import ast
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Coverage floor (percent).  Keep in sync with the interrogate
#: ``--fail-under`` value in .github/workflows/ci.yml.
FAIL_UNDER = 100.0


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _collect(tree: ast.Module, path: Path):
    """Yield (location, documented) for every public definition."""
    yield f"{path}:1 <module>", ast.get_docstring(tree) is not None

    def walk(node, qualifier, inside_function):
        for child in ast.iter_child_nodes(node):
            is_def = isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            if not is_def:
                continue
            is_function = not isinstance(child, ast.ClassDef)
            if _is_public(child.name) and not (is_function and inside_function):
                yield (
                    f"{path}:{child.lineno} {qualifier}{child.name}",
                    ast.get_docstring(child) is not None,
                )
            yield from walk(
                child, f"{qualifier}{child.name}.",
                inside_function or is_function,
            )

    yield from walk(tree, "", inside_function=False)


def test_public_api_is_documented():
    entries = []
    for source in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(source.read_text())
        entries.extend(_collect(tree, source.relative_to(SRC_ROOT.parent)))
    assert entries, "no sources found -- is the tree layout intact?"
    documented = sum(1 for _, ok in entries if ok)
    coverage = 100.0 * documented / len(entries)
    missing = [location for location, ok in entries if not ok]
    assert coverage >= FAIL_UNDER, (
        f"public docstring coverage {coverage:.1f}% is below "
        f"{FAIL_UNDER:.0f}%; missing:\n  " + "\n  ".join(missing)
    )
