"""Tile-based task graph generator (FNAS-GG)."""

from repro.taskgraph.graph import TaskGraph, TaskGraphGenerator
from repro.taskgraph.tiles import (
    IfmTile,
    OfmTile,
    Task,
    channel_range,
    ranges_overlap,
)

__all__ = [
    "TaskGraph",
    "TaskGraphGenerator",
    "IfmTile",
    "OfmTile",
    "Task",
    "channel_range",
    "ranges_overlap",
]
