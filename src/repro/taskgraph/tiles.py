"""Tile and task identities for the tile-based task graph (FNAS-GG).

The paper's notation (Section 3.4):

* ``T^ifm_{i,j,m}`` -- the ``j``-th IFM channel tile at row/col tile
  ``m`` consumed by layer ``i``;
* ``T^ofm_{i+1,k,m}`` -- the ``k``-th OFM channel tile at row/col tile
  ``m`` produced by layer ``i`` (the paper indexes it by the *consuming*
  layer ``i+1``; here an :class:`OfmTile` carries the *producing* layer
  index, which avoids off-by-one bookkeeping -- ``OfmTile(layer=i, ...)``
  is exactly the paper's ``T^ofm_{i+1, ...}``);
* ``v_{i,j,k,m}`` -- the task on layer ``i``'s PE that reads
  ``T^ifm_{i,j,m}`` and accumulates into the OFM tile ``(k, m)``.

All indices are 0-based.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class IfmTile:
    """An input feature-map data tile consumed by ``layer``'s PE."""

    layer: int
    channel_tile: int
    rc_tile: int

    def __post_init__(self) -> None:
        if self.layer < 0 or self.channel_tile < 0 or self.rc_tile < 0:
            raise ValueError(f"tile indices must be non-negative: {self}")

    def __str__(self) -> str:
        return f"T_ifm[{self.layer},{self.channel_tile},{self.rc_tile}]"


@dataclass(frozen=True, order=True)
class OfmTile:
    """An output feature-map data tile produced by ``layer``'s PE.

    Equals the paper's ``T^ofm_{layer+1, channel_tile, rc_tile}``.
    """

    layer: int
    channel_tile: int
    rc_tile: int

    def __post_init__(self) -> None:
        if self.layer < 0 or self.channel_tile < 0 or self.rc_tile < 0:
            raise ValueError(f"tile indices must be non-negative: {self}")

    def __str__(self) -> str:
        return f"T_ofm[{self.layer}->{self.layer + 1},{self.channel_tile},{self.rc_tile}]"


@dataclass(frozen=True, order=True)
class Task:
    """One convolutional task ``v_{layer, ifm_tile, ofm_tile, rc_tile}``.

    Runs on layer ``layer``'s PE; consumes
    ``IfmTile(layer, ifm_tile, rc_tile)`` and contributes one partial sum
    to ``OfmTile(layer, ofm_tile, rc_tile)``.
    """

    layer: int
    ifm_tile: int
    ofm_tile: int
    rc_tile: int

    def __post_init__(self) -> None:
        if (self.layer < 0 or self.ifm_tile < 0 or self.ofm_tile < 0
                or self.rc_tile < 0):
            raise ValueError(f"task indices must be non-negative: {self}")

    @property
    def input_tile(self) -> IfmTile:
        """The IFM data tile this task reads."""
        return IfmTile(self.layer, self.ifm_tile, self.rc_tile)

    @property
    def output_tile(self) -> OfmTile:
        """The OFM data tile this task accumulates into."""
        return OfmTile(self.layer, self.ofm_tile, self.rc_tile)

    def __str__(self) -> str:
        return f"v[{self.layer},{self.ifm_tile},{self.ofm_tile},{self.rc_tile}]"


def channel_range(tile_index: int, tile_size: int, total: int) -> tuple[int, int]:
    """Half-open channel interval ``[lo, hi)`` covered by a channel tile."""
    if tile_index < 0:
        raise ValueError(f"tile_index must be non-negative, got {tile_index}")
    lo = tile_index * tile_size
    hi = min(total, lo + tile_size)
    if lo >= total:
        raise ValueError(
            f"tile_index {tile_index} out of range for {total} channels "
            f"with tile size {tile_size}"
        )
    return lo, hi


def ranges_overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
    """Whether two half-open intervals intersect."""
    return a[0] < b[1] and b[0] < a[1]
