"""Tile-based task graph generation (FNAS-GG, paper Section 3.4).

Given a :class:`~repro.fpga.tiling.PipelineDesign`, FNAS-GG materialises

* every task ``v_{i,j,k,m}`` of every layer,
* the *inter-layer* dependencies -- which IFM data tile each task reads
  and which OFM data tile it accumulates into, and
* the *intra-layer* dependencies -- which of layer ``i``'s OFM tiles a
  given IFM tile of layer ``i+1`` is assembled from.

Channel mapping follows the paper's rule generalised to arbitrary tile
sizes: IFM tile ``j`` of layer ``i+1`` depends on OFM tile ``k`` of
layer ``i`` iff their channel intervals overlap (the paper's
``(j-1) * Tn/Tm + 1 <= k <= j * Tn/Tm`` is the special case where
``Tn_{i+1}`` is a multiple of ``Tm_i``).

Row/col mapping supports two modes:

* ``"identity"`` (paper semantics): row/col tile ``m`` of the consumer
  maps to tile ``m`` of the producer; requires equal row/col tile grids.
* ``"overlap"``: a consumer tile depends on every producer tile whose
  spatial region intersects the consumer tile's input window (including
  the convolution halo).  This is exact for mismatched grids and strided
  layers.

``"auto"`` (the default) picks identity when the grids agree and the
stride is 1, and overlap otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.tiling import LayerDesign, PipelineDesign
from repro.taskgraph.tiles import IfmTile, OfmTile, Task, channel_range, ranges_overlap


@dataclass
class TaskGraph:
    """The full tile-based task graph of one pipeline design.

    Attributes:
        design: the pipeline design the graph was generated from.
        tasks_by_layer: per layer, the list of that PE's tasks in
            canonical ``(rc, ifm, ofm)`` index order (schedulers reorder).
        ofm_producers: for each OFM data tile, the tasks that must all
            finish before the tile is complete.
        ifm_sources: for each non-input IFM data tile, the upstream OFM
            tiles it is assembled from.
    """

    design: PipelineDesign
    tasks_by_layer: list[list[Task]]
    ofm_producers: dict[OfmTile, list[Task]]
    ifm_sources: dict[IfmTile, list[OfmTile]]
    rc_mapping: str = "auto"

    @property
    def n_layers(self) -> int:
        """Number of PEs / layers."""
        return len(self.tasks_by_layer)

    @property
    def total_tasks(self) -> int:
        """Task count over all layers."""
        return sum(len(tasks) for tasks in self.tasks_by_layer)

    def tasks(self) -> list[Task]:
        """All tasks in layer order."""
        return [t for layer in self.tasks_by_layer for t in layer]

    def input_tiles(self) -> list[IfmTile]:
        """Layer-0 IFM tiles (available at time zero)."""
        first = self.design.layers[0]
        return [
            IfmTile(0, j, m)
            for m in range(first.n_rc_tiles)
            for j in range(first.n_ifm_channel_tiles)
        ]

    def validate(self) -> None:
        """Internal consistency checks; raises ``ValueError`` on corruption.

        Checks that every task's output tile has a producer entry, every
        non-input IFM tile has at least one source, and per-layer task
        counts match the design's tile arithmetic.
        """
        for layer_idx, tasks in enumerate(self.tasks_by_layer):
            design = self.design.layers[layer_idx]
            if len(tasks) != design.task_count:
                raise ValueError(
                    f"layer {layer_idx}: {len(tasks)} tasks generated but "
                    f"design implies {design.task_count}"
                )
            for task in tasks:
                if task.output_tile not in self.ofm_producers:
                    raise ValueError(f"missing producer record for {task}")
        for layer_idx in range(1, self.n_layers):
            design = self.design.layers[layer_idx]
            for j in range(design.n_ifm_channel_tiles):
                for m in range(design.n_rc_tiles):
                    tile = IfmTile(layer_idx, j, m)
                    if not self.ifm_sources.get(tile):
                        raise ValueError(f"IFM tile {tile} has no sources")

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` of tasks and data tiles.

        Nodes are :class:`Task`, :class:`IfmTile` and :class:`OfmTile`
        objects; edges follow data flow (tile -> task -> tile and
        OFM tile -> downstream IFM tile).  Intended for visualisation
        and ad-hoc analysis, not for the hot scheduling path.
        """
        import networkx as nx

        graph = nx.DiGraph()
        for tasks in self.tasks_by_layer:
            for task in tasks:
                graph.add_edge(task.input_tile, task)
                graph.add_edge(task, task.output_tile)
        for ifm, sources in self.ifm_sources.items():
            for ofm in sources:
                graph.add_edge(ofm, ifm)
        return graph


class TaskGraphGenerator:
    """Generates :class:`TaskGraph` objects from pipeline designs."""

    def __init__(self, rc_mapping: str = "auto"):
        if rc_mapping not in ("auto", "identity", "overlap"):
            raise ValueError(
                f"unknown rc_mapping {rc_mapping!r}; expected 'auto', "
                "'identity' or 'overlap'"
            )
        self.rc_mapping = rc_mapping

    def generate(self, design: PipelineDesign) -> TaskGraph:
        """Build the tile-based task graph for ``design``."""
        tasks_by_layer: list[list[Task]] = []
        ofm_producers: dict[OfmTile, list[Task]] = {}
        for layer_idx, layer in enumerate(design.layers):
            tasks = self._layer_tasks(layer_idx, layer)
            tasks_by_layer.append(tasks)
            for task in tasks:
                ofm_producers.setdefault(task.output_tile, []).append(task)
        ifm_sources: dict[IfmTile, list[OfmTile]] = {}
        for layer_idx in range(1, len(design.layers)):
            upstream = design.layers[layer_idx - 1]
            downstream = design.layers[layer_idx]
            self._link_layers(layer_idx, upstream, downstream, ifm_sources)
        graph = TaskGraph(
            design=design,
            tasks_by_layer=tasks_by_layer,
            ofm_producers=ofm_producers,
            ifm_sources=ifm_sources,
            rc_mapping=self.rc_mapping,
        )
        graph.validate()
        return graph

    @staticmethod
    def _layer_tasks(layer_idx: int, layer: LayerDesign) -> list[Task]:
        """All ``v_{i,j,k,m}`` of one layer in canonical index order.

        Depthwise layers have no channel reduction: channel tile ``j``
        produces channel tile ``j`` directly, so only the diagonal
        ``(j, j)`` tasks exist.
        """
        if layer.spec.is_depthwise:
            return [
                Task(layer=layer_idx, ifm_tile=j, ofm_tile=j, rc_tile=m)
                for m in range(layer.n_rc_tiles)
                for j in range(layer.n_ifm_channel_tiles)
            ]
        return [
            Task(layer=layer_idx, ifm_tile=j, ofm_tile=k, rc_tile=m)
            for m in range(layer.n_rc_tiles)
            for j in range(layer.n_ifm_channel_tiles)
            for k in range(layer.n_ofm_channel_tiles)
        ]

    def _link_layers(
        self,
        consumer_idx: int,
        upstream: LayerDesign,
        downstream: LayerDesign,
        ifm_sources: dict[IfmTile, list[OfmTile]],
    ) -> None:
        """Record intra-layer dependencies across one layer boundary."""
        mode = resolve_rc_mapping(upstream, downstream, self.rc_mapping)
        if mode == "identity" and upstream.n_rc_tiles != downstream.n_rc_tiles:
            raise ValueError(
                f"identity rc mapping needs equal tile grids at layer "
                f"boundary {consumer_idx - 1}->{consumer_idx}: "
                f"{upstream.n_rc_tiles} vs {downstream.n_rc_tiles} tiles"
            )
        channel_map = channel_dependencies(upstream, downstream)
        for j, upstream_ks in enumerate(channel_map):
            for m in range(downstream.n_rc_tiles):
                if mode == "identity":
                    rc_sources = [m]
                else:
                    rc_sources = rc_dependencies(upstream, downstream, m)
                tile = IfmTile(consumer_idx, j, m)
                ifm_sources[tile] = [
                    OfmTile(consumer_idx - 1, k, src_m)
                    for src_m in rc_sources
                    for k in upstream_ks
                ]

def resolve_rc_mapping(
    upstream: LayerDesign, downstream: LayerDesign, rc_mapping: str = "auto"
) -> str:
    """Concrete row/col mapping mode for one layer boundary.

    ``"auto"`` resolves to ``"identity"`` when the two layers' tile
    grids agree and the downstream layer has stride 1 (the paper's
    matched-grid assumption), and to ``"overlap"`` otherwise.  Shared by
    FNAS-GG and the closed-form analyzer so both model the same
    dependency structure.
    """
    if rc_mapping != "auto":
        return rc_mapping
    grids_match = (
        upstream.n_rc_tiles == downstream.n_rc_tiles
        and upstream.n_row_tiles == downstream.n_row_tiles
        and downstream.spec.stride == 1
    )
    return "identity" if grids_match else "overlap"


def channel_dependencies(
    upstream: LayerDesign, downstream: LayerDesign
) -> list[list[int]]:
    """For each downstream IFM channel tile, the upstream OFM tiles.

    The channel axis is shared (layer ``i``'s output channels are
    layer ``i+1``'s input channels); a dependency exists iff the two
    tiles' channel intervals overlap.
    """
    total = upstream.spec.out_channels
    if downstream.spec.in_channels != total:
        raise ValueError(
            f"channel mismatch across layer boundary: upstream produces "
            f"{total}, downstream consumes {downstream.spec.in_channels}"
        )
    result: list[list[int]] = []
    for j in range(downstream.n_ifm_channel_tiles):
        ifm_span = channel_range(j, downstream.tiling.tn, total)
        ks = [
            k
            for k in range(upstream.n_ofm_channel_tiles)
            if ranges_overlap(
                ifm_span, channel_range(k, upstream.tiling.tm, total)
            )
        ]
        result.append(ks)
    return result


def rc_dependencies(
    upstream: LayerDesign, downstream: LayerDesign, rc_tile: int
) -> list[int]:
    """Upstream row/col tiles feeding one downstream row/col tile.

    The downstream tile covers an output region; its input window
    (after stride and kernel halo) is intersected with the upstream
    tile grid over the shared feature map (upstream's OFM == the
    downstream layer's IFM).
    """
    d_spec, d_til = downstream.spec, downstream.tiling
    row_tile = rc_tile // downstream.n_col_tiles
    col_tile = rc_tile % downstream.n_col_tiles
    out_r0 = row_tile * d_til.tr
    out_r1 = min(d_spec.out_rows, out_r0 + d_til.tr)
    out_c0 = col_tile * d_til.tc
    out_c1 = min(d_spec.out_cols, out_c0 + d_til.tc)
    # Input window with same-padding halo, clamped to the map.
    pad = (d_spec.kernel - 1) // 2
    in_r0 = max(0, out_r0 * d_spec.stride - pad)
    in_r1 = min(d_spec.in_rows, (out_r1 - 1) * d_spec.stride - pad
                + d_spec.kernel)
    in_c0 = max(0, out_c0 * d_spec.stride - pad)
    in_c1 = min(d_spec.in_cols, (out_c1 - 1) * d_spec.stride - pad
                + d_spec.kernel)
    u_til = upstream.tiling
    sources = []
    for ur in range(upstream.n_row_tiles):
        r0, r1 = ur * u_til.tr, min(upstream.spec.out_rows,
                                    (ur + 1) * u_til.tr)
        if not (r0 < in_r1 and in_r0 < r1):
            continue
        for uc in range(upstream.n_col_tiles):
            c0, c1 = uc * u_til.tc, min(upstream.spec.out_cols,
                                        (uc + 1) * u_til.tc)
            if c0 < in_c1 and in_c0 < c1:
                sources.append(ur * upstream.n_col_tiles + uc)
    return sources
