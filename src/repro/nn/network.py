"""Sequential network container."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import cross_entropy


class Sequential:
    """A plain feed-forward stack of :class:`~repro.nn.layers.Layer`."""

    def __init__(self, layers: list[Layer]):
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the stack; returns the final activations (logits)."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the stack (after a paired forward)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> list[np.ndarray]:
        """All trainable arrays in layer order."""
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        """All gradients aligned with :meth:`params`."""
        return [g for layer in self.layers for g in layer.grads()]

    @property
    def parameter_count(self) -> int:
        """Total trainable scalars."""
        return sum(p.size for p in self.params())

    def train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Forward + loss + backward; returns the batch loss.

        Leaves fresh gradients in :meth:`grads` for the optimizer.
        """
        logits = self.forward(x, training=True)
        loss, d_logits = cross_entropy(logits, labels)
        self.backward(d_logits)
        return loss

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted class ids, evaluated in batches."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start:start + batch_size], training=False)
            outputs.append(np.argmax(logits, axis=1))
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=int)

    def accuracy(self, x: np.ndarray, labels: np.ndarray,
                 batch_size: int = 256) -> float:
        """Top-1 accuracy on ``(x, labels)``."""
        if x.shape[0] == 0:
            raise ValueError("cannot evaluate accuracy on an empty set")
        preds = self.predict(x, batch_size=batch_size)
        return float((preds == labels).mean())
