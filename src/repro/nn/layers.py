"""Layers of the NumPy CNN substrate.

Everything the FNAS child networks need, implemented with explicit
forward/backward passes over NCHW tensors:

* :class:`Conv2D` -- same-padding convolution via im2col (the layout the
  FPGA tiling model assumes);
* :class:`MaxPool2D` / :class:`GlobalAvgPool` -- spatial reduction;
* :class:`ReLU`, :class:`Flatten`, :class:`Dense` -- the classifier head.

Each layer exposes ``forward(x)``, ``backward(grad)`` (returning the
gradient w.r.t. the input and stashing parameter gradients), and
``params()`` / ``grads()`` pairs consumed by the optimizers.  Layers
cache what they need between forward and backward; callers must pair the
two calls (the :class:`~repro.nn.network.Sequential` driver does).

Compute dtype is ``float32`` by default (the training hot path);
gradient-check tests pass ``dtype=np.float64``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, xavier_uniform, zeros


class Layer:
    """Base class: a differentiable, possibly parameterised module."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad`` (dL/d output), return dL/d input."""
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        """Trainable arrays, updated in place by the optimizer."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradients aligned with :meth:`params`."""
        return []


def _im2col(
    xp: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int
) -> np.ndarray:
    """Extract convolution patches: (N, C, H, W) -> (N, C*K*K, out_h*out_w).

    One strided slice per kernel offset (K*K slices total) -- each is a
    plain vectorised copy, which beats fancy-index gathers by a wide
    margin on CPython/NumPy.
    """
    n, c = xp.shape[0], xp.shape[1]
    patches = np.empty(
        (n, c, kernel * kernel, out_h * out_w), dtype=xp.dtype
    )
    for ki in range(kernel):
        for kj in range(kernel):
            block = xp[
                :, :,
                ki:ki + stride * out_h:stride,
                kj:kj + stride * out_w:stride,
            ]
            patches[:, :, ki * kernel + kj, :] = block.reshape(n, c, -1)
    return patches.reshape(n, c * kernel * kernel, -1)


def _col2im(
    d_patches: np.ndarray,
    xp_shape: tuple[int, ...],
    kernel: int,
    stride: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add column gradients back onto the padded input.

    Inverse of :func:`_im2col`: one strided slice-add per kernel offset.
    """
    n, c = d_patches.shape[0], d_patches.shape[1]
    d_xp = np.zeros(xp_shape, dtype=d_patches.dtype)
    for ki in range(kernel):
        for kj in range(kernel):
            d_xp[
                :, :,
                ki:ki + stride * out_h:stride,
                kj:kj + stride * out_w:stride,
            ] += d_patches[:, :, ki * kernel + kj, :].reshape(
                n, c, out_h, out_w
            )
    return d_xp


#: im2col buffer budget in elements (~128 MB float32).  Larger batches
#: are processed in sub-batches, recomputing the column matrix in the
#: backward pass instead of caching it -- large-kernel layers (e.g. the
#: MNIST space's 14x14 option) would otherwise allocate gigabytes.
MAX_COL_ELEMENTS = 32 * 1024 * 1024


class Conv2D(Layer):
    """Same-padding 2-D convolution (NCHW), im2col implementation.

    Output spatial size is ``ceil(in / stride)``, matching
    :class:`~repro.core.architecture.ConvLayerSpec` so that the trained
    network and the FPGA latency model describe the same computation.

    Memory: the column matrix is capped at :data:`MAX_COL_ELEMENTS`;
    bigger workloads fall back to sub-batch processing with
    recompute-in-backward (slower by one extra im2col, bounded memory).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
        dtype: np.dtype = np.float32,
    ):
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel <= 0 or stride <= 0:
            raise ValueError("kernel and stride must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.dtype = np.dtype(dtype)
        rng = rng if rng is not None else np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        self.weight = he_normal(
            rng, (out_channels, in_channels, kernel, kernel), fan_in
        ).astype(self.dtype)
        self.bias = zeros((out_channels,)).astype(self.dtype)
        self.d_weight = np.zeros_like(self.weight)
        self.d_bias = np.zeros_like(self.bias)
        self._cache: tuple | None = None

    def _padding(self, in_h: int, in_w: int) -> tuple[int, int, int, int]:
        """TensorFlow-style SAME padding amounts (top, bottom, left, right)."""
        out_h = -(-in_h // self.stride)
        out_w = -(-in_w // self.stride)
        pad_h = max(0, (out_h - 1) * self.stride + self.kernel - in_h)
        pad_w = max(0, (out_w - 1) * self.stride + self.kernel - in_w)
        return pad_h // 2, pad_h - pad_h // 2, pad_w // 2, pad_w - pad_w // 2

    def _chunk_size(self, out_h: int, out_w: int) -> int:
        """Largest sub-batch whose column matrix fits the buffer budget."""
        per_example = (self.in_channels * self.kernel * self.kernel
                       * out_h * out_w)
        return max(1, MAX_COL_ELEMENTS // max(per_example, 1))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """SAME-padded strided convolution via im2col + one BLAS matmul."""
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        x = x.astype(self.dtype, copy=False)
        top, bottom, left, right = self._padding(h, w)
        xp = np.pad(x, ((0, 0), (0, 0), (top, bottom), (left, right)))
        out_h = -(-h // self.stride)
        out_w = -(-w // self.stride)
        w_mat = self.weight.reshape(self.out_channels, -1)
        chunk = self._chunk_size(out_h, out_w)
        if chunk >= n:
            col = _im2col(xp, self.kernel, self.stride, out_h, out_w)
            out = np.matmul(w_mat, col) + self.bias[None, :, None]
            cache_col: np.ndarray | None = col
        else:
            out = np.empty((n, self.out_channels, out_h * out_w),
                           dtype=self.dtype)
            for start in range(0, n, chunk):
                col = _im2col(xp[start:start + chunk], self.kernel,
                              self.stride, out_h, out_w)
                out[start:start + chunk] = (
                    np.matmul(w_mat, col) + self.bias[None, :, None]
                )
            cache_col = None  # recomputed per chunk in backward
        self._cache = (x.shape, xp, (top, left), (out_h, out_w), cache_col)
        return out.reshape(n, self.out_channels, out_h, out_w)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Accumulate weight/bias grads and return the input grad."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, xp, (top, left), (out_h, out_w), col = self._cache
        n = grad.shape[0]
        grad = grad.astype(self.dtype, copy=False)
        grad_mat = grad.reshape(n, self.out_channels, -1)
        w_mat = self.weight.reshape(self.out_channels, -1)
        self.d_bias[...] = grad_mat.sum(axis=(0, 2))
        if col is not None:
            # dW: sum over batch of grad @ col^T (one BLAS call via reshape).
            gm = grad_mat.transpose(1, 0, 2).reshape(self.out_channels, -1)
            cm = col.transpose(1, 0, 2).reshape(col.shape[1], -1)
            self.d_weight[...] = (gm @ cm.T).reshape(self.weight.shape)
            d_col = np.matmul(w_mat.T, grad_mat)  # (N, C*K*K, P)
            d_xp = _col2im(
                d_col.reshape(n, self.in_channels,
                              self.kernel * self.kernel, -1),
                xp.shape, self.kernel, self.stride, out_h, out_w,
            )
        else:
            # Sub-batch path: recompute each chunk's columns.
            chunk = self._chunk_size(out_h, out_w)
            self.d_weight[...] = 0.0
            d_xp = np.zeros(xp.shape, dtype=self.dtype)
            for start in range(0, n, chunk):
                sl = slice(start, start + chunk)
                col_chunk = _im2col(xp[sl], self.kernel, self.stride,
                                    out_h, out_w)
                gm = grad_mat[sl].transpose(1, 0, 2).reshape(
                    self.out_channels, -1)
                cm = col_chunk.transpose(1, 0, 2).reshape(
                    col_chunk.shape[1], -1)
                self.d_weight += (gm @ cm.T).reshape(self.weight.shape)
                d_col = np.matmul(w_mat.T, grad_mat[sl])
                d_xp[sl] = _col2im(
                    d_col.reshape(d_col.shape[0], self.in_channels,
                                  self.kernel * self.kernel, -1),
                    (d_col.shape[0],) + xp.shape[1:], self.kernel,
                    self.stride, out_h, out_w,
                )
        h, w = x_shape[2], x_shape[3]
        return d_xp[:, :, top:top + h, left:left + w]

    def params(self) -> list[np.ndarray]:
        """Learnable tensors: kernel weights and per-channel bias."""
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        """Gradients aligned with :meth:`params`."""
        return [self.d_weight, self.d_bias]


class DepthwiseConv2D(Layer):
    """Same-padding depthwise convolution (NCHW): one KxK filter per channel.

    The MobileNet building block's first half (the 1x1 pointwise half is
    a plain :class:`Conv2D`).  Channel count is preserved, matching the
    ``depthwise`` :class:`~repro.core.architecture.ConvLayerSpec` kind.

    Implementation: one strided slice-multiply-accumulate per kernel
    offset (K*K passes).  There is no cross-channel contraction to hand
    to BLAS, so the im2col detour would only cost memory; the slice loop
    keeps the working set at one feature map.
    """

    def __init__(
        self,
        channels: int,
        kernel: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
        dtype: np.dtype = np.float32,
    ):
        if channels <= 0:
            raise ValueError("channels must be positive")
        if kernel <= 0 or stride <= 0:
            raise ValueError("kernel and stride must be positive")
        self.channels = channels
        self.kernel = kernel
        self.stride = stride
        self.dtype = np.dtype(dtype)
        rng = rng if rng is not None else np.random.default_rng(0)
        fan_in = kernel * kernel
        self.weight = he_normal(
            rng, (channels, kernel, kernel), fan_in
        ).astype(self.dtype)
        self.bias = zeros((channels,)).astype(self.dtype)
        self.d_weight = np.zeros_like(self.weight)
        self.d_bias = np.zeros_like(self.bias)
        self._cache: tuple | None = None

    def _padding(self, in_h: int, in_w: int) -> tuple[int, int, int, int]:
        """TensorFlow-style SAME padding amounts (top, bottom, left, right)."""
        out_h = -(-in_h // self.stride)
        out_w = -(-in_w // self.stride)
        pad_h = max(0, (out_h - 1) * self.stride + self.kernel - in_h)
        pad_w = max(0, (out_w - 1) * self.stride + self.kernel - in_w)
        return pad_h // 2, pad_h - pad_h // 2, pad_w // 2, pad_w - pad_w // 2

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Per-channel SAME-padded strided convolution."""
        n, c, h, w = x.shape
        if c != self.channels:
            raise ValueError(f"expected {self.channels} input channels, got {c}")
        x = x.astype(self.dtype, copy=False)
        top, bottom, left, right = self._padding(h, w)
        xp = np.pad(x, ((0, 0), (0, 0), (top, bottom), (left, right)))
        out_h = -(-h // self.stride)
        out_w = -(-w // self.stride)
        out = np.broadcast_to(
            self.bias[None, :, None, None], (n, c, out_h, out_w)
        ).astype(self.dtype, copy=True)
        for ki in range(self.kernel):
            for kj in range(self.kernel):
                block = xp[
                    :, :,
                    ki:ki + self.stride * out_h:self.stride,
                    kj:kj + self.stride * out_w:self.stride,
                ]
                out += block * self.weight[None, :, ki, kj, None, None]
        self._cache = (x.shape, xp, (top, left), (out_h, out_w))
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Accumulate weight/bias grads and return the input grad."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, xp, (top, left), (out_h, out_w) = self._cache
        grad = grad.astype(self.dtype, copy=False)
        self.d_bias[...] = grad.sum(axis=(0, 2, 3))
        d_xp = np.zeros_like(xp)
        for ki in range(self.kernel):
            for kj in range(self.kernel):
                sl = (
                    slice(None), slice(None),
                    slice(ki, ki + self.stride * out_h, self.stride),
                    slice(kj, kj + self.stride * out_w, self.stride),
                )
                self.d_weight[:, ki, kj] = (grad * xp[sl]).sum(axis=(0, 2, 3))
                d_xp[sl] += grad * self.weight[None, :, ki, kj, None, None]
        h, w = x_shape[2], x_shape[3]
        return d_xp[:, :, top:top + h, left:left + w]

    def params(self) -> list[np.ndarray]:
        """Learnable tensors: per-channel kernels and bias."""
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        """Gradients aligned with :meth:`params`."""
        return [self.d_weight, self.d_bias]


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """``max(x, 0)``, caching the activation mask for backward."""
        self._mask = x > 0
        return np.where(self._mask, x, x.dtype.type(0))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Pass gradient through where the input was positive."""
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask


class MaxPool2D(Layer):
    """Non-overlapping max pooling (NCHW); pads with -inf if ragged."""

    def __init__(self, pool: int = 2):
        if pool <= 0:
            raise ValueError(f"pool must be positive, got {pool}")
        self.pool = pool
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Windowed max over ``pool x pool`` blocks (argmax cached)."""
        n, c, h, w = x.shape
        p = self.pool
        out_h, out_w = -(-h // p), -(-w // p)
        pad_h, pad_w = out_h * p - h, out_w * p - w
        xp = np.pad(
            x, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)),
            constant_values=-np.inf,
        )
        windows = xp.reshape(n, c, out_h, p, out_w, p)
        out = windows.max(axis=(3, 5))
        mask = windows == out[:, :, :, None, :, None]
        self._cache = (x.shape, xp.shape, mask)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Route gradient back to the max positions of each window."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, xp_shape, mask = self._cache
        # Route gradient to (all) argmax positions; ties split the credit.
        counts = mask.sum(axis=(3, 5), keepdims=True)
        d_windows = mask * (grad[:, :, :, None, :, None] / counts)
        d_xp = d_windows.reshape(xp_shape)
        return d_xp[:, :, : x_shape[2], : x_shape[3]]


class GlobalAvgPool(Layer):
    """Average over the spatial dims: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Mean over H and W."""
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Spread each channel's gradient uniformly over its pixels."""
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._shape
        return np.broadcast_to(
            grad[:, :, None, None] / (h * w), self._shape
        ).astype(grad.dtype, copy=True)


class Flatten(Layer):
    """(N, ...) -> (N, prod(...))."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Collapse all non-batch dims."""
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Restore the cached input shape."""
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._shape)


class BatchNorm2D(Layer):
    """Per-channel batch normalisation over NCHW tensors.

    Standard training-mode statistics with running-mean/var tracking
    for inference.  Child networks in the paper's spaces are shallow
    enough to train bare, but deeper spaces (CIFAR's 10 / ImageNet's 15
    layers) converge noticeably better with normalisation -- exposed as
    an opt-in through ``build_network(..., batch_norm=True)``.
    """

    def __init__(self, channels: int, momentum: float = 0.9,
                 eps: float = 1e-5, dtype: np.dtype = np.float32):
        if channels <= 0:
            raise ValueError(f"channels must be positive, got {channels}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.dtype = np.dtype(dtype)
        self.gamma = np.ones(channels, dtype=self.dtype)
        self.beta = np.zeros(channels, dtype=self.dtype)
        self.d_gamma = np.zeros_like(self.gamma)
        self.d_beta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(channels, dtype=self.dtype)
        self.running_var = np.ones(channels, dtype=self.dtype)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Normalise per channel; batch stats when training, running
        statistics at inference."""
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"expected (N, {self.channels}, H, W) input, got {x.shape}"
            )
        x = x.astype(self.dtype, copy=False)
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean *= self.momentum
            self.running_mean += (1 - self.momentum) * mean
            self.running_var *= self.momentum
            self.running_var += (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (self.gamma[None, :, None, None] * x_hat
               + self.beta[None, :, None, None])
        self._cache = (x_hat, inv_std, training, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Standard batch-norm backward (full batch-statistics terms
        in training mode, affine-only at inference)."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, training, shape = self._cache
        grad = grad.astype(self.dtype, copy=False)
        self.d_gamma[...] = (grad * x_hat).sum(axis=(0, 2, 3))
        self.d_beta[...] = grad.sum(axis=(0, 2, 3))
        g = self.gamma[None, :, None, None]
        if not training:
            return grad * g * inv_std[None, :, None, None]
        n = shape[0] * shape[2] * shape[3]
        d_xhat = grad * g
        mean_d = d_xhat.mean(axis=(0, 2, 3), keepdims=True)
        mean_dx = (d_xhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        del n  # folded into the means above
        return (d_xhat - mean_d - x_hat * mean_dx) * inv_std[None, :, None, None]

    def params(self) -> list[np.ndarray]:
        """Learnable tensors: per-channel scale and shift."""
        return [self.gamma, self.beta]

    def grads(self) -> list[np.ndarray]:
        """Gradients aligned with :meth:`params`."""
        return [self.d_gamma, self.d_beta]


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, seed: int = 0):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Zero a random ``rate`` fraction, scaling survivors up."""
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (
            self._rng.random(x.shape) < keep
        ).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Apply the cached keep mask (identity at inference)."""
        if self._mask is None:
            return grad
        return grad * self._mask


class Dense(Layer):
    """Fully connected layer: (N, F_in) -> (N, F_out)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        dtype: np.dtype = np.float32,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.dtype = np.dtype(dtype)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = xavier_uniform(
            rng, (in_features, out_features), in_features, out_features
        ).astype(self.dtype)
        self.bias = zeros((out_features,)).astype(self.dtype)
        self.d_weight = np.zeros_like(self.weight)
        self.d_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Affine map ``x @ W + b``."""
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected (N, {self.in_features}) input, got {x.shape}"
            )
        self._x = x.astype(self.dtype, copy=False)
        return self._x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Accumulate weight/bias grads and return the input grad."""
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad = grad.astype(self.dtype, copy=False)
        self.d_weight[...] = self._x.T @ grad
        self.d_bias[...] = grad.sum(axis=0)
        return grad @ self.weight.T

    def params(self) -> list[np.ndarray]:
        """Learnable tensors: weight matrix and bias."""
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        """Gradients aligned with :meth:`params`."""
        return [self.d_weight, self.d_bias]
