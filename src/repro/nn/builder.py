"""Architecture -> trainable network.

Bridges the search side (:class:`~repro.core.architecture.Architecture`)
and the training side (:class:`~repro.nn.network.Sequential`): each conv
layer of the architecture becomes Conv2D + ReLU, and a global-average-
pool + dense head produces the class logits.  The conv geometry (same
padding, ``ceil(in/stride)`` outputs) matches the FPGA model exactly, so
latency and accuracy are measured on the same computation.
"""

from __future__ import annotations

import numpy as np

from repro.core.architecture import Architecture
from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    ReLU,
)
from repro.nn.network import Sequential


def build_network(
    architecture: Architecture,
    rng: np.random.Generator | None = None,
    head: str = "flatten",
    batch_norm: bool = False,
    dropout: float = 0.0,
) -> Sequential:
    """Instantiate a trainable network for ``architecture``.

    ``rng`` seeds the weight init; pass a seeded generator for
    reproducible training runs.  ``head`` selects the classifier:

    * ``"flatten"`` -- flatten + dense over all final activations
      (default; learns quickly at the small training budgets the paper's
      25-epoch protocol implies);
    * ``"gap"``     -- global average pool + dense (fewer parameters,
      closer to modern conv-net heads).

    ``batch_norm`` inserts a :class:`BatchNorm2D` after every conv
    (helps the deeper CIFAR/ImageNet spaces converge); ``dropout``
    adds inverted dropout before the classifier.
    """
    if head not in ("flatten", "gap"):
        raise ValueError(f"unknown head {head!r}; expected 'flatten' or 'gap'")
    if not 0.0 <= dropout < 1.0:
        raise ValueError(f"dropout must be in [0, 1), got {dropout}")
    rng = rng if rng is not None else np.random.default_rng(0)
    layers: list = []
    for spec in architecture.layers:
        if spec.is_depthwise:
            layers.append(
                DepthwiseConv2D(
                    channels=spec.in_channels,
                    kernel=spec.kernel,
                    stride=spec.stride,
                    rng=rng,
                )
            )
        else:
            layers.append(
                Conv2D(
                    in_channels=spec.in_channels,
                    out_channels=spec.out_channels,
                    kernel=spec.kernel,
                    stride=spec.stride,
                    rng=rng,
                )
            )
        if batch_norm:
            layers.append(BatchNorm2D(spec.out_channels))
        layers.append(ReLU())
    last = architecture.layers[-1]
    if head == "gap":
        layers.append(GlobalAvgPool())
        features = last.out_channels
    else:
        layers.append(Flatten())
        features = last.out_channels * last.out_rows * last.out_cols
    if dropout > 0.0:
        layers.append(Dropout(rate=dropout))
    layers.append(Dense(features, architecture.num_classes, rng=rng))
    return Sequential(layers)
