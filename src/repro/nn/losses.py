"""Loss functions."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the max-subtraction stability trick."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. the logits.

    Args:
        logits: (N, K) raw scores.
        labels: (N,) integer class ids.

    Returns:
        (loss, d_logits) where ``d_logits`` already includes the 1/N
        factor, ready to feed ``Sequential.backward``.
    """
    n, k = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} != ({n},)")
    if labels.min() < 0 or labels.max() >= k:
        raise ValueError(f"labels out of range [0, {k})")
    probs = softmax(logits)
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n
