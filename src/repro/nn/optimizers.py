"""Optimizers for the NumPy NN substrate."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Updates a fixed set of parameter arrays in place."""

    def __init__(self, params: list[np.ndarray], grads: list[np.ndarray]):
        if len(params) != len(grads):
            raise ValueError(
                f"{len(params)} params but {len(grads)} grads"
            )
        for p, g in zip(params, grads):
            if p.shape != g.shape:
                raise ValueError(
                    f"param/grad shape mismatch: {p.shape} vs {g.shape}"
                )
        self.params = params
        self.grads = grads

    def step(self) -> None:
        """Apply one update using the current gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, grads)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.velocity = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        """One momentum-SGD update over all registered parameters."""
        for p, g, v in zip(self.params, self.grads, self.velocity):
            update = g + self.weight_decay * p
            v *= self.momentum
            v += update
            p -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, grads)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        """One bias-corrected Adam update over all registered parameters."""
        self.t += 1
        bias1 = 1.0 - self.beta1**self.t
        bias2 = 1.0 - self.beta2**self.t
        for p, g, m, v in zip(self.params, self.grads, self.m, self.v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
