"""From-scratch NumPy CNN substrate (layers, losses, optimizers, trainer)."""

from repro.nn.builder import build_network
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    Layer,
    MaxPool2D,
    ReLU,
)
from repro.nn.losses import cross_entropy, softmax
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.trainer import Trainer, TrainingResult

__all__ = [
    "build_network",
    "Conv2D",
    "Dense",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "MaxPool2D",
    "ReLU",
    "cross_entropy",
    "softmax",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "Trainer",
    "TrainingResult",
]
