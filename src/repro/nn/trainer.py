"""Training loop for child networks.

Implements the paper's evaluation protocol: train for ``E`` epochs and
report the **maximum validation accuracy over the last 5 epochs** as the
accuracy signal fed to the reward (Section 4.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Optimizer


@dataclass
class TrainingResult:
    """Outcome of training one child network."""

    train_losses: list[float]
    val_accuracies: list[float]
    best_accuracy: float
    wall_seconds: float

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.val_accuracies)


@dataclass
class Trainer:
    """Mini-batch trainer with the paper's last-5-epochs accuracy rule.

    Attributes:
        epochs: training epochs (paper: 25).
        batch_size: mini-batch size.
        lr / momentum / weight_decay: SGD hyperparameters.
        accuracy_window: the reward accuracy is the max validation
            accuracy over this many final epochs (paper: 5).
        seed: shuffling seed.
    """

    epochs: int = 25
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    accuracy_window: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        if self.accuracy_window <= 0:
            raise ValueError(
                f"accuracy_window must be positive, got {self.accuracy_window}"
            )

    def make_optimizer(self, network: Sequential) -> Optimizer:
        """SGD bound to the network's parameters (override point)."""
        return SGD(
            network.params(),
            network.grads(),
            lr=self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )

    def train(
        self,
        network: Sequential,
        train_x: np.ndarray,
        train_y: np.ndarray,
        val_x: np.ndarray,
        val_y: np.ndarray,
    ) -> TrainingResult:
        """Train ``network`` and return losses + the reward accuracy."""
        if train_x.shape[0] != train_y.shape[0]:
            raise ValueError("train_x and train_y lengths differ")
        if val_x.shape[0] != val_y.shape[0]:
            raise ValueError("val_x and val_y lengths differ")
        rng = np.random.default_rng(self.seed)
        optimizer = self.make_optimizer(network)
        train_losses: list[float] = []
        val_accuracies: list[float] = []
        started = time.perf_counter()
        n = train_x.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                loss = network.train_step(train_x[idx], train_y[idx])
                optimizer.step()
                epoch_loss += loss
                batches += 1
            train_losses.append(epoch_loss / max(batches, 1))
            val_accuracies.append(network.accuracy(val_x, val_y))
        window = val_accuracies[-self.accuracy_window:]
        return TrainingResult(
            train_losses=train_losses,
            val_accuracies=val_accuracies,
            best_accuracy=max(window),
            wall_seconds=time.perf_counter() - started,
        )
