"""Weight initializers for the NumPy NN substrate."""

from __future__ import annotations

import numpy as np


def he_normal(rng: np.random.Generator, shape: tuple[int, ...],
              fan_in: int) -> np.ndarray:
    """He (Kaiming) normal init -- the right scale for ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                   fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot uniform init for linear/softmax layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(
            f"fan_in/fan_out must be positive, got {fan_in}/{fan_out}"
        )
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(shape, dtype=np.float64)
