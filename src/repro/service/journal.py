"""Crash-consistent job journal: the service's durable queue memory.

A :class:`JobJournal` is an append-only JSONL file recording every job
lifecycle transition a :class:`~repro.service.SearchService` performs:

* ``queued`` -- carries the full canonical plan document and priority,
  so the journal alone can rebuild the submission;
* ``leased`` -- a remote agent claimed the job; carries the agent id
  and lease term, so leases survive a coordinator restart (the
  restarted service restores the lease instead of re-queueing, and the
  still-running agent keeps its claim);
* ``running`` / ``lease-expired`` / ``done`` / ``failed`` /
  ``cancelled`` -- state-only markers keyed by the job's plan hash.

Appends are flushed line-by-line, so a SIGKILLed service loses at most
the entry it was writing -- and JSONL tolerates exactly that failure
mode: :func:`JobJournal.replay` simply ignores a torn trailing line.
Combined with the service's per-hash checkpoint fallback and the
content-addressed :class:`~repro.service.store.ResultStore`, the
journal makes ``repro serve`` restart-safe: on startup the service
replays the journal, re-queues every job whose last recorded state is
``queued`` or ``running``, and those jobs then *resume* from their
checkpoints instead of restarting (see
:meth:`~repro.service.SearchService` ``recover`` and the
``service-smoke`` CI job, which SIGKILLs a live server mid-job and
asserts the restarted one finishes the work byte-identically).

Only hash-addressable jobs are journaled: a job submitted with a live
evaluator override cannot be rebuilt from its plan document, so it is
deliberately left out (exactly as it is left out of the result store).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Journal line schema tag (bumped on incompatible layout changes).
JOURNAL_SCHEMA = 1

#: Default journal filename, conventionally inside the result store's
#: directory (one directory = one durable service state: results +
#: journal, which is also what lets ``repro store gc`` find the
#: journal from ``--store-dir`` alone).
JOURNAL_FILENAME = "journal.jsonl"

#: Ops a journal line may carry, in rough lifecycle order.  ``leased``
#: marks a remote agent claiming the job (the entry carries the agent id
#: and lease term, so a restarted coordinator can restore the lease);
#: ``lease-expired`` marks the coordinator reclaiming it.  Both are
#: additive: readers predating them simply skip the ops and still treat
#: the job as non-terminal, so the schema tag stays at 1.
JOURNAL_OPS = ("queued", "running", "leased", "lease-expired", "done",
               "failed", "cancelled")

#: Last-recorded states that make a job recoverable after a crash.
#: ``leased`` and ``lease-expired`` are non-terminal: the coordinator
#: died while an agent held (or had just lost) the job.
_RECOVERABLE_STATES = ("queued", "running", "leased", "lease-expired")


@dataclass(frozen=True)
class PendingJob:
    """One journal-recovered submission awaiting re-queueing.

    Attributes:
        plan_doc: the canonical plan document recorded at submit time
            (parse with :meth:`repro.plans.RunPlan.from_dict`).
        plan_hash: the job's canonical plan hash.
        priority: the priority of the *latest* recorded submission.
        last_state: the last journaled state (``queued``, ``running``,
            ``leased`` or ``lease-expired``) -- non-``queued`` jobs
            resume from their per-hash checkpoints when the service has
            a checkpoint root.
        agent: for ``last_state == "leased"``, the id of the agent that
            held the lease when the coordinator died; the restarted
            coordinator restores the lease to it (with a fresh grace
            deadline) instead of re-queueing, so a still-running agent
            keeps its claim.
        lease_seconds: the lease term recorded at claim time (``None``
            when the journal predates leases).
        tenant: the tenant recorded on the latest submission (``None``
            for anonymous submissions or pre-tenancy journals); a
            recovering service re-queues the job under the same
            tenant, so per-tenant accounting and quotas survive
            restarts.
    """

    plan_doc: dict[str, Any]
    plan_hash: str
    priority: int
    last_state: str
    agent: str | None = None
    lease_seconds: float | None = None
    tenant: str | None = None


class JobJournal:
    """Append-only JSONL log of service job transitions.

    Parameters:
        path: the journal file; created (with parents) on first append.

    Appends are serialized by an internal lock and flushed to the OS
    immediately, so a process crash (the SIGKILL case the journal
    exists for) never loses an acknowledged entry.  :meth:`close` turns
    further appends into no-ops rather than errors -- teardown paths
    and crash-simulation tests can drop the journal without racing
    in-flight workers.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._file = None
        self._closed = False

    def record(
        self,
        op: str,
        plan_hash: str,
        job_id: str,
        priority: int | None = None,
        plan_doc: dict[str, Any] | None = None,
        note: str | None = None,
        agent: str | None = None,
        lease_seconds: float | None = None,
        tenant: str | None = None,
    ) -> None:
        """Append one transition line (no-op after :meth:`close`).

        ``queued`` entries must carry ``plan_doc`` and ``priority`` --
        they are what replay rebuilds submissions from (and may carry
        the admitting ``tenant``, which is what makes per-tenant
        accounting crash-durable); ``leased`` entries must carry
        ``agent`` (and should carry ``lease_seconds``) so a restarted
        coordinator can restore the lease; the other ops are state
        markers.
        """
        if op not in JOURNAL_OPS:
            raise ValueError(
                f"unknown journal op {op!r}; expected one of "
                + ", ".join(JOURNAL_OPS)
            )
        if op == "queued" and plan_doc is None:
            raise ValueError("'queued' journal entries must carry the plan")
        if op == "leased" and agent is None:
            raise ValueError("'leased' journal entries must carry the agent")
        entry: dict[str, Any] = {
            "schema": JOURNAL_SCHEMA,
            "op": op,
            "hash": plan_hash,
            "job": job_id,
        }
        if priority is not None:
            entry["priority"] = priority
        if plan_doc is not None:
            entry["plan"] = plan_doc
        if note is not None:
            entry["note"] = note
        if agent is not None:
            entry["agent"] = agent
        if lease_seconds is not None:
            entry["lease_seconds"] = float(lease_seconds)
        if tenant is not None:
            entry["tenant"] = tenant
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            if self._closed:
                return
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._repair_torn_tail()
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(line + "\n")
            self._file.flush()

    def _repair_torn_tail(self) -> None:
        """Drop a torn trailing line before the first append.

        A SIGKILL can leave the file ending mid-line; replay tolerates
        that, but appending straight after the partial text would glue
        the new entry onto it -- *mid-file* corruption that replay
        rightly refuses, permanently bricking restarts.  The torn
        fragment was never durably acknowledged (that is the journal's
        documented loss bound), so truncating it restores an all-valid
        file before new entries land.
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 when no complete line exists
        with open(self.path, "rb+") as repair:
            repair.truncate(keep)

    def close(self) -> None:
        """Close the file; later :meth:`record` calls become no-ops."""
        with self._lock:
            self._closed = True
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JobJournal":
        """Context-manager entry: the journal itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit closes the journal."""
        self.close()

    # -- replay ---------------------------------------------------------------

    @staticmethod
    def replay(path: str | Path) -> list[dict[str, Any]]:
        """Parse a journal file into its entry list.

        Tolerates the one corruption a crash can cause -- a torn final
        line -- by ignoring any line that fails to parse as a JSON
        object; a malformed line *followed by* well-formed ones would
        mean outside interference and raises instead.
        """
        entries: list[dict[str, Any]] = []
        bad_at: int | None = None
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict):
                    raise ValueError("journal lines must be JSON objects")
            except ValueError:
                bad_at = number
                continue
            if bad_at is not None:
                raise ValueError(
                    f"{path}: line {bad_at} is corrupt but line {number} "
                    "parses; only a torn *trailing* line is recoverable"
                )
            if entry.get("schema") != JOURNAL_SCHEMA:
                raise ValueError(
                    f"{path}: unsupported journal schema "
                    f"{entry.get('schema')!r} on line {number}"
                )
            entries.append(entry)
        return entries

    @staticmethod
    def pending_jobs(entries: list[dict[str, Any]]) -> list[PendingJob]:
        """Reduce replayed entries to the jobs a restart must re-queue.

        A job is pending when its *last* recorded transition is
        non-terminal (``queued``, ``running``, ``leased`` or
        ``lease-expired``) -- i.e. the service died before the job
        reached a terminal state.  Results come back in first-seen
        order (the original submission order), each carrying the most
        recent plan document and priority recorded for its hash, plus
        the lease holder when the last transition was a claim.

        Defensive by design: the journal is replayed after crashes, so
        entries missing expected keys (a ``queued`` without a plan, a
        ``leased`` without an agent) are skipped or degraded, never
        raised on.
        """
        last_state: dict[str, str] = {}
        plans: dict[str, dict[str, Any]] = {}
        priorities: dict[str, int] = {}
        agents: dict[str, str | None] = {}
        leases: dict[str, float | None] = {}
        tenants: dict[str, str | None] = {}
        order: list[str] = []
        for entry in entries:
            digest = entry.get("hash")
            op = entry.get("op")
            if digest is None or op not in JOURNAL_OPS:
                continue
            if op == "queued" and not isinstance(entry.get("plan"), dict):
                continue  # a submission without a plan cannot be rebuilt
            if digest not in last_state:
                order.append(digest)
            last_state[digest] = op
            if op == "queued":
                plans[digest] = entry["plan"]
                tenant = entry.get("tenant")
                tenants[digest] = (
                    tenant if isinstance(tenant, str) and tenant else None
                )
                try:
                    priorities[digest] = int(entry.get("priority", 0))
                except (TypeError, ValueError):
                    priorities[digest] = 0
            agent = entry.get("agent")
            agents[digest] = agent if op == "leased" else None
            lease = entry.get("lease_seconds")
            leases[digest] = (
                float(lease) if op == "leased"
                and isinstance(lease, (int, float)) else None
            )
        pending: list[PendingJob] = []
        for digest in order:
            if last_state[digest] not in _RECOVERABLE_STATES:
                continue
            if digest not in plans:
                continue  # state marker without a recorded submission
            agent = agents.get(digest)
            pending.append(PendingJob(
                plan_doc=plans[digest],
                plan_hash=digest,
                priority=priorities[digest],
                last_state=last_state[digest],
                agent=agent if isinstance(agent, str) and agent else None,
                lease_seconds=leases.get(digest),
                tenant=tenants.get(digest),
            ))
        return pending

    @staticmethod
    def live_jobs(
        entries: list[dict[str, Any]],
    ) -> list[tuple[str, dict[str, Any] | None]]:
        """``(plan_hash, plan_doc)`` for every non-terminal job.

        The store-GC liveness reduction: a job whose *last* recorded
        transition is non-terminal may still complete (a recovering
        coordinator will re-queue it; a leased agent may upload its
        result), so every store entry its plan references must
        survive collection.  Unlike :meth:`pending_jobs` this keeps
        jobs whose journal never captured a parseable plan document
        (``plan_doc`` is then ``None``): their whole-plan hash is
        still live even though their shards cannot be enumerated --
        GC must err toward keeping.  Order is first-seen submission
        order.
        """
        last_state: dict[str, str] = {}
        plans: dict[str, dict[str, Any] | None] = {}
        order: list[str] = []
        for entry in entries:
            digest = entry.get("hash")
            op = entry.get("op")
            if not isinstance(digest, str) or op not in JOURNAL_OPS:
                continue
            if digest not in last_state:
                order.append(digest)
            last_state[digest] = op
            if op == "queued":
                plan = entry.get("plan")
                plans[digest] = plan if isinstance(plan, dict) else None
        return [
            (digest, plans.get(digest))
            for digest in order
            if last_state[digest] in _RECOVERABLE_STATES
        ]
