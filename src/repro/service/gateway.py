"""Asyncio HTTP/1.1 gateway: streaming, multi-tenant service front end.

The sync :mod:`repro.service.http` server spends one thread per
connection, which caps it at a few dozen clients and makes "wait for
the next event" mean client-side polling.  This gateway serves the
same JSON wire surface from a single ``asyncio`` event loop (stdlib
only -- no third-party dependency), so hundreds of concurrent clients
can hold connections open while events are *pushed* to them:

=========  =====================================  ======================
Method     Path                                   Meaning
=========  =====================================  ======================
GET        ``/health``                            liveness + job counts
GET        ``/metrics``                           JSON counters/gauges
POST       ``/jobs``                              submit (tenant-gated)
GET        ``/jobs``                              list job summaries
GET        ``/jobs/<id>``                         one job summary
POST       ``/jobs/<id>/cancel``                  checkpointing cancel
GET        ``/jobs/<id>/events``                  event page; add
                                                  ``?since=N&wait=S``
                                                  to long-poll
GET        ``/jobs/<id>/events/stream``           Server-Sent Events
GET        ``/jobs/<id>/result``                  canonical result bytes
POST       ``/shutdown``                          graceful drain
POST       ``/agents`` (+ the whole family)       federation protocol,
                                                  identical to the sync
                                                  server
=========  =====================================  ======================

Event delivery is push-based end to end: the service's
:meth:`~repro.service.SearchService.add_job_listener` hook fires on
every append to a job's event log, an :class:`_EventFanout` relays the
wakeup onto the event loop (``call_soon_threadsafe``), and each SSE or
long-poll connection sleeps on its own ``asyncio.Event`` until *its*
job moves -- no busy polling anywhere.  The per-job event log stays
the single source of truth: a wakeup only means "re-read the log from
your cursor", so a lost or coalesced wakeup can delay but never drop
or duplicate an event.

SSE frames carry the event cursor as the SSE ``id:`` field::

    id: 7
    event: search-finished
    data: {"event": "search-finished", ...}

so ``GET /jobs/<id>/events?since=7`` resumes exactly after the last
frame a client saw.  Comment heartbeats (``: ping``) flow during quiet
stretches; a terminal job ends the stream with an ``event: end`` frame
carrying the final state.

Admission is shared with the sync server
(:func:`repro.service.http.admit_submission`): API-key tenancy, quotas
(429 + ``Retry-After``), fair-share priority weighting, and bounded
accept-queue backpressure (503).  ``max_connections`` additionally
caps open sockets (503 at accept).  On SIGTERM or ``POST /shutdown``
the gateway *drains*: the listener closes, streams end with a final
frame, running jobs finish (or are checkpoint-cancelled after
``drain_grace`` seconds), and the service shuts down -- flushing the
job journal -- before the process exits.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
from http import HTTPStatus
from typing import Any, Iterator
from urllib.parse import parse_qs, unquote, urlparse

from repro.events import event_from_dict
from repro.plans import RunPlan
from repro.service.http import (
    MAX_BODY_BYTES,
    REQUEST_TIMEOUT_SECONDS,
    BackpressureError,
    BodyTooLargeError,
    admit_submission,
    events_payload,
    health_payload,
    require_tenant,
    validate_content_length,
)
from repro.service.metrics import MetricsRegistry
from repro.service.service import (
    SearchService,
    StaleLeaseError,
    UnknownAgentError,
    UnknownJobError,
)
from repro.service.tenants import (
    QuotaExceededError,
    TenantAuthError,
    TenantRegistry,
)

#: Seconds of stream silence before an SSE comment heartbeat is sent
#: (keeps proxies from timing the connection out and detects dead
#: peers, since the write fails fast on a reset socket).
SSE_HEARTBEAT_SECONDS = 15.0

#: Upper bound on the ``wait=`` a long-poll may request, seconds.
#: Clients re-issue the poll; the bound keeps a forgotten connection
#: from parking forever.
LONG_POLL_MAX_WAIT = 30.0

#: Job states after which a job's event log can no longer grow
#: (until an explicit resubmission, which opens a new stream).
_TERMINAL_STATES = ("done", "failed", "cancelled")

#: Cap on request head (request line + headers) size, bytes.
_MAX_HEADER_BYTES = 32 * 1024


class _HttpError(Exception):
    """Internal control flow: respond ``status`` with a JSON error."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None,
                 close: bool = False, **extra: Any):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}
        self.headers = headers or {}
        self.close = close


class _EventFanout:
    """Relays service-thread event appends onto per-connection wakeups.

    One service job listener feeds every SSE/long-poll connection: a
    connection registers an ``asyncio.Event`` under its job id, the
    listener (running on a service worker thread) sets it via
    ``loop.call_soon_threadsafe``, and the connection re-reads the
    job's event log from its cursor.  Setting an already-set event is
    a no-op, so bursts coalesce instead of queueing.
    """

    def __init__(self, service: SearchService,
                 loop: asyncio.AbstractEventLoop):
        self._service = service
        self._loop = loop
        self._lock = threading.Lock()
        self._watchers: dict[str, set[asyncio.Event]] = {}
        self._listener = service.add_job_listener(self._notify)

    def _notify(self, job_id: str) -> None:
        # Runs on a service worker thread, possibly under the service
        # lock: copy the watcher set and hand the set() to the loop.
        with self._lock:
            watchers = self._watchers.get(job_id)
            if not watchers:
                return
            targets = list(watchers)
        for event in targets:
            try:
                self._loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # loop already closed (teardown race)
                return

    @contextlib.contextmanager
    def watcher(self, job_id: str) -> Iterator[asyncio.Event]:
        """Register a wakeup event for ``job_id`` for a ``with`` block."""
        event = asyncio.Event()
        with self._lock:
            self._watchers.setdefault(job_id, set()).add(event)
        try:
            yield event
        finally:
            with self._lock:
                group = self._watchers.get(job_id)
                if group is not None:
                    group.discard(event)
                    if not group:
                        del self._watchers[job_id]

    def watching(self) -> int:
        """How many connections currently wait on job events."""
        with self._lock:
            return sum(len(group) for group in self._watchers.values())

    def wake_all(self) -> None:
        """Wake every watcher (drain: streams re-check and wind down)."""
        with self._lock:
            targets = [e for group in self._watchers.values()
                       for e in group]
        for event in targets:
            event.set()

    def close(self) -> None:
        """Detach from the service's listener hook."""
        self._service.remove_job_listener(self._listener)


class Gateway:
    """The asyncio front end over one :class:`SearchService`.

    Build it, ``await`` :meth:`start`, and the gateway serves until
    :meth:`request_drain` (wired to SIGTERM and ``POST /shutdown`` by
    :func:`run_gateway`); :meth:`wait_drained` completes once the
    drain has finished and the service is shut down.

    Parameters:
        service: the service to front.
        tenants: optional :class:`TenantRegistry`; with one bound, job
            routes require API keys and submissions pass quota +
            fair-share admission.
        max_pending: bound on service-wide queued jobs (503 beyond).
        max_connections: bound on concurrently open sockets (503 at
            accept beyond it).
        drain_grace: seconds a drain waits for running jobs before
            checkpoint-cancelling them (``None`` = wait indefinitely).
    """

    def __init__(self, service: SearchService,
                 tenants: TenantRegistry | None = None,
                 max_pending: int | None = None,
                 max_connections: int | None = None,
                 drain_grace: float | None = None):
        self.service = service
        self.tenants = tenants
        self.max_pending = max_pending
        self.max_connections = max_connections
        self.drain_grace = drain_grace
        self.metrics = MetricsRegistry(service)
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._fanout: _EventFanout | None = None
        self._connections = 0
        self._streams = 0
        self._draining = False
        self._drained: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8765) -> None:
        """Bind and start serving (non-blocking; returns once bound)."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._fanout = _EventFanout(self.service, self._loop)
        self.metrics.gauge("open_connections", lambda: self._connections)
        self.metrics.gauge("active_streams", lambda: self._streams)
        self.metrics.gauge("event_watchers", self._fanout.watching)
        self._server = await asyncio.start_server(
            self._on_connection, host, port, limit=_MAX_HEADER_BYTES)

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        assert self._server is not None, "gateway not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """Whether a drain has begun (new work is being refused)."""
        return self._draining

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; event-loop thread only).

        Stops accepting connections, ends open event streams with a
        final frame, lets running jobs finish (checkpoint-cancelling
        them after ``drain_grace`` seconds, if set), shuts the service
        down -- flushing its job journal -- and finally releases
        :meth:`wait_drained`.
        """
        if self._draining:
            return
        self._draining = True
        assert self._loop is not None
        self._loop.create_task(self._drain())

    async def wait_drained(self) -> None:
        """Block until a requested drain has fully completed."""
        assert self._drained is not None, "gateway not started"
        await self._drained.wait()

    async def _drain(self) -> None:
        assert self._server is not None and self._fanout is not None
        self._server.close()
        self._fanout.wake_all()
        grace_timer: threading.Timer | None = None
        if self.drain_grace is not None:
            grace_timer = threading.Timer(
                self.drain_grace, self._cancel_running)
            grace_timer.daemon = True
            grace_timer.start()
        # shutdown() joins worker threads; keep the loop free so open
        # streams can deliver their final frames meanwhile.
        await asyncio.to_thread(self.service.shutdown, True, False)
        if grace_timer is not None:
            grace_timer.cancel()
        self._fanout.wake_all()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        self._fanout.close()
        await self._server.wait_closed()
        assert self._drained is not None
        self._drained.set()

    def _cancel_running(self) -> None:
        """Drain-grace expiry: checkpoint-cancel still-running jobs."""
        for handle in self.service.jobs():
            if handle.state == "running":
                try:
                    self.service.cancel(handle.job_id)
                except UnknownJobError:
                    pass

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        if (self.max_connections is not None
                and self._connections >= self.max_connections):
            self.metrics.inc("connection_rejections")
            with contextlib.suppress(Exception):
                writer.write(_render(
                    503,
                    json.dumps({"error": "connection limit reached"})
                    .encode(),
                    headers={"Retry-After": "1"}, close=True))
                await writer.drain()
            writer.close()
            return
        self._connections += 1
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # peer went away mid-exchange; nothing to clean up
        finally:
            self._connections -= 1
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while not self._draining:
            request = await self._read_request(reader, writer)
            if request is None:
                return
            method, path, query, headers, body = request
            self.metrics.inc("requests")
            try:
                close = await self._dispatch(
                    method, path, query, headers, body, writer)
            except _HttpError as exc:
                self._send_json(writer, exc.status, exc.payload,
                                headers=exc.headers, close=exc.close)
                close = exc.close
            await writer.drain()
            if close or headers.get("connection", "").lower() == "close":
                return

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> tuple[str, str, str, dict[str, str], bytes] | None:
        """Read one request; None closes the connection silently."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), REQUEST_TIMEOUT_SECONDS)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None  # clean close (or half a request, equally dead)
        except asyncio.TimeoutError:
            return None  # idle keep-alive connection: just close
        except asyncio.LimitOverrunError:
            self._send_json(writer, 431,
                            {"error": "request headers too large"},
                            close=True)
            return None
        try:
            request_line, header_lines = self._split_head(head)
            method, target = self._parse_request_line(request_line)
            headers = self._parse_headers(header_lines)
        except ValueError as exc:
            self._send_json(writer, 400, {"error": str(exc)}, close=True)
            return None
        try:
            length = validate_content_length(headers.get("content-length"))
        except BodyTooLargeError as exc:
            # The body was never read: refuse and close, like the sync
            # front end.
            self._send_json(writer, 413, {"error": str(exc)}, close=True)
            return None
        except ValueError as exc:
            self._send_json(writer, 400, {"error": str(exc)}, close=True)
            return None
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), REQUEST_TIMEOUT_SECONDS)
            except asyncio.TimeoutError:
                self._send_json(
                    writer, 408,
                    {"error": "client stalled mid-body; connection closed"},
                    close=True)
                return None
            except (asyncio.IncompleteReadError, ConnectionError):
                return None
        url = urlparse(target)
        return method, unquote(url.path), url.query, headers, body

    @staticmethod
    def _split_head(head: bytes) -> tuple[str, list[str]]:
        text = head.decode("latin-1")
        lines = text.split("\r\n")
        if not lines or not lines[0]:
            raise ValueError("empty request line")
        return lines[0], [line for line in lines[1:] if line]

    @staticmethod
    def _parse_request_line(line: str) -> tuple[str, str]:
        parts = line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError(f"malformed request line {line!r}")
        return parts[0].upper(), parts[1]

    @staticmethod
    def _parse_headers(lines: list[str]) -> dict[str, str]:
        headers: dict[str, str] = {}
        for line in lines:
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return headers

    # -- routing -------------------------------------------------------------

    async def _dispatch(self, method: str, path: str, query: str,
                        headers: dict[str, str], body: bytes,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns True when the connection must close."""
        parts = [p for p in path.split("/") if p]
        try:
            if method == "GET":
                return await self._dispatch_get(
                    parts, path, query, headers, writer)
            if method == "POST":
                return await self._dispatch_post(
                    parts, path, headers, body, writer)
            raise _HttpError(405, f"method {method} not allowed")
        except (UnknownJobError, UnknownAgentError) as exc:
            raise _HttpError(404, str(exc)) from None
        except StaleLeaseError as exc:
            raise _HttpError(409, str(exc)) from None
        except TenantAuthError as exc:
            raise _HttpError(exc.status, str(exc)) from None
        except QuotaExceededError as exc:
            self.metrics.inc("quota_rejections")
            raise _HttpError(
                429, str(exc), tenant=exc.tenant, limit=exc.limit,
                headers={"Retry-After": f"{exc.retry_after:g}"}) from None
        except BackpressureError as exc:
            self.metrics.inc("backpressure_rejections")
            raise _HttpError(
                503, str(exc),
                headers={"Retry-After": f"{exc.retry_after:g}"}) from None

    async def _dispatch_get(self, parts: list[str], path: str, query: str,
                            headers: dict[str, str],
                            writer: asyncio.StreamWriter) -> bool:
        service = self.service
        if parts == ["health"]:
            self._send_json(writer, 200, health_payload(service))
        elif parts == ["metrics"]:
            self._send_json(writer, 200, self.metrics.snapshot())
        elif parts == ["jobs"]:
            require_tenant(self.tenants, headers)
            self._send_json(
                writer, 200, {"jobs": [h.info() for h in service.jobs()]})
        elif len(parts) == 2 and parts[0] == "jobs":
            require_tenant(self.tenants, headers)
            self._send_json(writer, 200, service.job(parts[1]).info())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            require_tenant(self.tenants, headers)
            await self._get_events(writer, parts[1], query)
        elif (len(parts) == 4 and parts[0] == "jobs"
                and parts[2] == "events" and parts[3] == "stream"):
            require_tenant(self.tenants, headers)
            await self._stream_events(writer, parts[1], query)
            return True  # the stream consumed the connection
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            require_tenant(self.tenants, headers)
            await self._get_result(writer, parts[1])
        elif parts == ["agents"]:
            self._send_json(writer, 200, {"agents": service.agents()})
        else:
            raise _HttpError(404, f"unknown path {path!r}")
        return False

    async def _dispatch_post(self, parts: list[str], path: str,
                             headers: dict[str, str], body: bytes,
                             writer: asyncio.StreamWriter) -> bool:
        service = self.service
        if parts == ["jobs"]:
            await self._post_job(writer, headers, body)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            require_tenant(self.tenants, headers)
            job_id = parts[1]
            state = await asyncio.to_thread(service.cancel, job_id)
            self._send_json(
                writer, 200, service.job(job_id).info() | {"state": state})
        elif parts == ["agents"]:
            self._post_register(writer, body)
        elif (len(parts) == 3 and parts[0] == "agents"
                and parts[2] in ("heartbeat", "claim", "leave")):
            await self._post_agent_verb(writer, parts[1], parts[2], body)
        elif (len(parts) == 5 and parts[0] == "agents"
                and parts[2] == "jobs"
                and parts[4] in ("events", "complete")):
            await self._post_agent_job(
                writer, parts[1], parts[3], parts[4], body)
        elif parts == ["shutdown"]:
            require_tenant(self.tenants, headers)
            # Reply first, then drain: the flush must win the race
            # against the listener closing.
            self._send_json(writer, 200, {"status": "shutting down"},
                            close=True)
            await writer.drain()
            self.request_drain()
            return True
        else:
            raise _HttpError(404, f"unknown path {path!r}")
        return False

    # -- route bodies --------------------------------------------------------

    async def _post_job(self, writer: asyncio.StreamWriter,
                        headers: dict[str, str], body: bytes) -> None:
        try:
            doc = _parse_json_object(body)
            plan = RunPlan.from_dict(doc["plan"])
            priority = int(doc.get("priority", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad submission: {exc}") from None
        if self._draining:
            raise _HttpError(
                503, "gateway is draining; resubmit elsewhere",
                headers={"Retry-After": "1"})
        # submit touches the journal and the result store (disk):
        # off the loop it goes.
        handle, deduped = await asyncio.to_thread(
            admit_submission, self.service, self.tenants, headers,
            plan, priority, self.max_pending)
        self.metrics.inc("submissions")
        self._send_json(writer, 200, handle.info() | {"deduped": deduped})

    def _post_register(self, writer: asyncio.StreamWriter,
                       body: bytes) -> None:
        try:
            doc = _parse_json_object(body)
            name = doc.get("name")
            agent_id = doc.get("agent_id")
            for value in (name, agent_id):
                if value is not None and not isinstance(value, str):
                    raise ValueError("name/agent_id must be strings")
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad registration: {exc}") from None
        self._send_json(
            writer, 200,
            self.service.register_agent(name=name, agent_id=agent_id))

    async def _post_agent_verb(self, writer: asyncio.StreamWriter,
                               agent_id: str, verb: str,
                               body: bytes) -> None:
        service = self.service
        if verb == "claim":
            claim = await asyncio.to_thread(service.claim_job, agent_id)
            self._send_json(writer, 200, {"job": claim})
            return
        if verb == "leave":
            service.deregister_agent(agent_id)
            self._send_json(writer, 200, {"status": "left"})
            return
        try:
            doc = _parse_json_object(body)
            jobs = doc.get("jobs", [])
            if not isinstance(jobs, list):
                raise ValueError("'jobs' must be a list of job ids")
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad heartbeat: {exc}") from None
        self._send_json(
            writer, 200,
            service.heartbeat(agent_id, [str(j) for j in jobs]))

    async def _post_agent_job(self, writer: asyncio.StreamWriter,
                              agent_id: str, job_id: str, verb: str,
                              body: bytes) -> None:
        service = self.service
        try:
            doc = _parse_json_object(body)
            if verb == "events":
                events = [event_from_dict(item) for item in doc["events"]]
            else:
                outcome = doc["outcome"]
                if outcome not in ("done", "failed", "cancelled"):
                    raise ValueError(f"unknown outcome {outcome!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad upload: {exc}") from None
        if verb == "events":
            recorded = service.record_agent_events(agent_id, job_id, events)
            self._send_json(writer, 200, {"recorded": recorded})
            return
        info = await asyncio.to_thread(
            service.complete_job, agent_id, job_id, outcome,
            doc.get("payload"), doc.get("message"),
            int(doc.get("completed", 0)))
        self._send_json(writer, 200, info)

    async def _get_result(self, writer: asyncio.StreamWriter,
                          job_id: str) -> None:
        handle = self.service.job(job_id)
        state = handle.state
        if state != "done":
            raise _HttpError(409, f"job {job_id} is {state}, not done",
                             state=state)
        blob = await asyncio.to_thread(handle.stored_result_bytes)
        if blob is None:
            raise _HttpError(
                406, f"workload {handle.plan.workload!r} has no result "
                "codec; inspect the job in-process instead")
        writer.write(_render(200, blob))

    # -- event delivery ------------------------------------------------------

    async def _get_events(self, writer: asyncio.StreamWriter,
                          job_id: str, query: str) -> None:
        """``/jobs/<id>/events``: immediate page, or long-poll with
        ``wait=S``."""
        handle = self.service.job(job_id)
        params = parse_qs(query)
        try:
            since = int(params.get("since", ["0"])[0])
            wait = float(params.get("wait", ["0"])[0])
        except ValueError as exc:
            raise _HttpError(400, f"bad query parameter: {exc}") from None
        wait = max(0.0, min(wait, LONG_POLL_MAX_WAIT))
        if wait:
            self.metrics.inc("long_polls")
        assert self._loop is not None and self._fanout is not None
        deadline = self._loop.time() + wait
        with self._fanout.watcher(job_id) as wakeup:
            while True:
                wakeup.clear()
                payload = events_payload(handle, since)
                remaining = deadline - self._loop.time()
                if (payload["events"] or remaining <= 0 or self._draining
                        or payload["state"] in _TERMINAL_STATES):
                    self._send_json(writer, 200, payload)
                    return
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(wakeup.wait(), remaining)

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job_id: str, query: str) -> None:
        """``/jobs/<id>/events/stream``: Server-Sent Events until the
        job is terminal (or the gateway drains)."""
        handle = self.service.job(job_id)  # 404 before headers go out
        params = parse_qs(query)
        try:
            cursor = int(params.get("since", ["0"])[0])
        except ValueError as exc:
            raise _HttpError(400, f"bad query parameter: {exc}") from None
        self.metrics.inc("sse_streams")
        self._streams += 1
        assert self._fanout is not None
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n")
            with self._fanout.watcher(job_id) as wakeup:
                while True:
                    wakeup.clear()
                    # State *before* events: the service appends the
                    # final events and flips to a terminal state under
                    # one lock hold, so a terminal state observed here
                    # guarantees the read below returns the full log.
                    # The opposite order can end the stream with the
                    # tail events unsent.
                    state = handle.state
                    draining = self._draining
                    events = handle.events(since=cursor)
                    for event in events:
                        cursor += 1
                        writer.write(_sse_frame(cursor, event.type_tag,
                                                event.to_dict()))
                    if events:
                        self.metrics.inc("sse_events", len(events))
                        await writer.drain()
                    if state in _TERMINAL_STATES or draining:
                        reason = ("draining"
                                  if state not in _TERMINAL_STATES
                                  else "terminal")
                        writer.write(_sse_frame(
                            cursor, "end",
                            {"state": state, "next": cursor,
                             "reason": reason}))
                        await writer.drain()
                        return
                    try:
                        await asyncio.wait_for(
                            wakeup.wait(), SSE_HEARTBEAT_SECONDS)
                    except asyncio.TimeoutError:
                        writer.write(b": ping\n\n")
                        await writer.drain()
        finally:
            self._streams -= 1

    # -- plumbing ------------------------------------------------------------

    def _send_json(self, writer: asyncio.StreamWriter, status: int,
                   payload: dict[str, Any],
                   headers: dict[str, str] | None = None,
                   close: bool = False) -> None:
        writer.write(_render(status, json.dumps(payload).encode(),
                             headers=headers, close=close))


def _render(status: int, blob: bytes,
            headers: dict[str, str] | None = None,
            close: bool = False) -> bytes:
    """Serialize one HTTP/1.1 response with a JSON body."""
    reason = HTTPStatus(status).phrase
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(blob)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + blob


def _sse_frame(cursor: int, tag: str, data: dict[str, Any]) -> bytes:
    """One SSE frame: ``id``/``event``/``data`` lines + blank line."""
    return (f"id: {cursor}\nevent: {tag}\n"
            f"data: {json.dumps(data)}\n\n").encode()


def _parse_json_object(body: bytes) -> dict[str, Any]:
    """Parse a request body as a JSON object (ValueError otherwise)."""
    data = json.loads(body or b"{}")
    if not isinstance(data, dict):
        raise ValueError("request body must be a JSON object")
    return data


class GatewayRunner:
    """Host a :class:`Gateway` on a background thread (tests, benches).

    The asyncio loop lives on a daemon thread; :meth:`start` (or the
    ``with`` statement) returns once the port is bound, and
    :meth:`stop` requests a drain and joins the thread.  When built
    without an explicit ``service``, one is created from
    ``service_kwargs`` and shut down with the gateway.
    """

    def __init__(self, service: SearchService | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 tenants: TenantRegistry | None = None,
                 max_pending: int | None = None,
                 max_connections: int | None = None,
                 drain_grace: float | None = None,
                 **service_kwargs: Any):
        self.host = host
        self._port_requested = port
        self.service = (service if service is not None
                        else SearchService(**service_kwargs))
        self._options = dict(
            tenants=tenants, max_pending=max_pending,
            max_connections=max_connections, drain_grace=drain_grace)
        self.gateway: Gateway | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def base_url(self) -> str:
        """The served endpoint, e.g. ``http://127.0.0.1:43521``."""
        assert self.port is not None, "gateway not started"
        return f"http://{self.host}:{self.port}"

    def start(self) -> "GatewayRunner":
        """Launch the loop thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="gateway-runner", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("gateway failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") \
                from self._startup_error
        return self

    async def _main(self) -> None:
        gateway = Gateway(self.service, **self._options)
        try:
            await gateway.start(self.host, self._port_requested)
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._ready.set()
            return
        self.gateway = gateway
        self.port = gateway.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await gateway.wait_drained()

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the gateway and join the loop thread (idempotent)."""
        if self._thread is None:
            return
        if self._thread.is_alive() and self._loop is not None \
                and self.gateway is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.gateway.request_drain)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("gateway thread did not stop in time")
        self._thread = None

    def __enter__(self) -> "GatewayRunner":
        """Context-manager entry: start and return the runner."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: drain and join."""
        self.stop()


def run_gateway(
    host: str = "127.0.0.1",
    port: int = 8765,
    service: SearchService | None = None,
    tenants: TenantRegistry | None = None,
    max_pending: int | None = None,
    max_connections: int | None = None,
    drain_grace: float | None = None,
    **service_kwargs: Any,
) -> None:
    """Serve the async gateway until SIGTERM/SIGINT or ``/shutdown``.

    The blocking entry point behind ``repro serve --async``: builds a
    :class:`SearchService` from ``service_kwargs`` when none is
    passed, installs signal handlers that trigger a graceful drain,
    and returns only after the drain has flushed the journal and shut
    the service down.
    """
    if service is None:
        service = SearchService(**service_kwargs)

    async def main() -> None:
        gateway = Gateway(
            service, tenants=tenants, max_pending=max_pending,
            max_connections=max_connections, drain_grace=drain_grace)
        await gateway.start(host, port)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(sig, gateway.request_drain)
        await gateway.wait_drained()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        # No signal-handler support (or a second Ctrl-C): stop hard
        # but cooperatively -- checkpoints make the next run a resume.
        service.shutdown(wait=True, cancel_running=True)
