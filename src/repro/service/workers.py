"""The process execution backend: one subprocess per running job.

The thread backend runs :func:`~repro.service.executor.execute_plan`
directly on a service worker thread, which is exact but GIL-bound --
4 serve workers buy almost no throughput on the pure-python searches
the paper's experiments run.  :func:`run_job_in_process` is the
alternative the ``--backend process`` knob selects: the worker thread
spawns a subprocess, hands it the **canonical plan JSON** (the only
thing that crosses the boundary downward), and the child executes the
plan through the very same ``execute_plan`` dispatcher while streaming
typed events back over a pipe, framed one JSON line per event via
:func:`repro.events.event_to_json`.  The parent republishes each event
as it arrives, so :class:`~repro.events.EventBus` subscribers, the
HTTP ``/jobs/<id>/events`` endpoint and the golden event-stream tests
observe the identical sequence whichever backend ran the job.

Cancellation stays cooperative: the parent forwards the job's cancel
flag through a :class:`multiprocessing.Event`, the child's
``should_stop`` polls it between trials, and checkpoints are written
before :class:`~repro.core.search.SearchCancelled` propagates -- the
exception then crosses the pipe as a typed terminal message, so
cancel/resubmit/resume semantics are backend-independent.  The child
also watches its parent pid: a SIGKILLed service orphans the child,
whose next ``should_stop`` poll then snapshots and exits instead of
computing into the void (the crash-recovery path picks the checkpoint
up on restart).

Result transport preserves the store's byte-identity guarantee:
cacheable workloads are encoded to their canonical payload *in the
child* and cross the pipe as plain JSON; only workloads without a
result codec fall back to pickling the result object.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable

from repro.events import Event, event_from_json, event_to_json
from repro.plans import RunPlan, canonical_plan_json

#: Seconds between parent-side polls of the pipe and the cancel flag.
_POLL_SECONDS = 0.05


class ProcessWorkerError(RuntimeError):
    """A job's subprocess failed in a way the plan's code didn't raise.

    Covers two cases: the child died without a terminal message (OOM
    kill, hard crash -- ``exitcode`` then says how), and a child-side
    exception whose object could not be pickled back (the original
    type and message are preserved in the error text).
    """

    def __init__(self, message: str, exitcode: int | None = None):
        super().__init__(message)
        self.exitcode = exitcode


def _context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context jobs spawn under.

    ``fork`` keeps the parent's registry state (third-party controllers
    or evaluators registered in-process stay resolvable in the child);
    platforms without it fall back to the default start method, where
    only entry-point-importable components survive the boundary.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def _child_main(
    conn,
    cancel_event,
    plan_json: str,
    fallback_checkpoint_dir: str | None,
    parent_pid: int,
    store_dir: str | None,
) -> None:
    """Subprocess body: execute the plan, stream events, report once.

    Every message through ``conn`` is a ``(tag, payload)`` tuple with a
    JSON-compatible payload, except the ``done-object`` fallback for
    codec-less workloads (which must pickle).  Exactly one terminal
    message (``done-payload`` / ``done-object`` / ``cancelled`` /
    ``failed``) is sent.
    """
    from repro.core.search import SearchCancelled
    from repro.service import store as store_mod
    from repro.service.executor import execute_plan

    plan = RunPlan.from_json(plan_json)
    # The parent's in-memory store cannot cross the process boundary;
    # a *persistent* store can -- the child rebuilds it on the shared
    # directory, so shard read/write-through memoization works (and is
    # crash-safe: entries land via atomic renames).
    store = None if store_dir is None else store_mod.ResultStore(store_dir)

    def emit(event: Event) -> None:
        conn.send(("event", event_to_json(event)))

    def should_stop() -> bool:
        # A changed parent pid means the service died: stop (and
        # checkpoint) instead of computing for a reader that is gone.
        return cancel_event.is_set() or os.getppid() != parent_pid

    try:
        try:
            result = execute_plan(
                plan,
                emit=emit,
                should_stop=should_stop,
                fallback_checkpoint_dir=fallback_checkpoint_dir,
                store=store,
            )
        except SearchCancelled as exc:
            conn.send(("cancelled", exc.completed))
        except BaseException as exc:  # noqa: BLE001 - must cross the pipe
            conn.send(("failed", _exception_message(exc), _picklable(exc)))
        else:
            if store_mod.is_cacheable(plan):
                conn.send(("done-payload",
                           store_mod.encode_result(plan, result)))
            else:
                try:
                    conn.send(("done-object", result))
                except Exception as exc:  # unpicklable result object
                    conn.send(("failed",
                               f"result of workload {plan.workload!r} "
                               f"could not cross the process boundary: "
                               f"{_exception_message(exc)}", None))
    finally:
        conn.close()


def _exception_message(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _picklable(exc: BaseException) -> BaseException | None:
    """The exception itself when it survives pickling, else None."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return None


def run_job_in_process(
    plan: RunPlan,
    emit: Callable[[Event], None],
    cancel_requested: Callable[[], bool],
    fallback_checkpoint_dir: str | None = None,
    store_dir: str | None = None,
) -> tuple[Any, dict[str, Any] | None]:
    """Execute one plan in a dedicated subprocess (blocking).

    Streams every child event through ``emit`` in order, forwards a
    pending cancel request (``cancel_requested`` polled alongside the
    pipe) to the child exactly once, and returns
    ``(result_obj, payload)`` where exactly one side is set: cacheable
    workloads come back as their canonical store payload (decode
    lazily or :func:`repro.service.store.decode_result` eagerly),
    codec-less workloads as the live result object.

    ``store_dir`` names a *persistent*
    :class:`~repro.service.store.ResultStore` directory the child
    rebuilds and memoizes campaign shards through (read-through before
    running each shard, write-through after) -- the process-backend
    spelling of the thread backend's live store handle, and a
    shared-filesystem contract exactly like the checkpoint directory.

    Raises whatever the plan's execution raised --
    :class:`~repro.core.search.SearchCancelled` included -- or
    :class:`ProcessWorkerError` when the child died without reporting.
    """
    ctx = _context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    cancel_event = ctx.Event()
    # Not a daemon: sweep plans may fan out shard process pools of
    # their own, which daemonic processes are forbidden to do.
    process = ctx.Process(
        target=_child_main,
        args=(child_conn, cancel_event, canonical_plan_json(plan),
              fallback_checkpoint_dir, os.getpid(), store_dir),
        name="search-service-job",
    )
    process.start()
    child_conn.close()
    outcome: tuple | None = None
    try:
        while outcome is None:
            if cancel_requested() and not cancel_event.is_set():
                cancel_event.set()
            if parent_conn.poll(_POLL_SECONDS):
                try:
                    message = parent_conn.recv()
                except EOFError:
                    break  # child died mid-stream
                if message[0] == "event":
                    emit(event_from_json(message[1]))
                else:
                    outcome = message
            elif not process.is_alive() and not parent_conn.poll():
                break  # child died between polls without a message
        process.join()
    finally:
        parent_conn.close()
        if process.is_alive():  # pragma: no cover - defensive teardown
            process.terminate()
            process.join()
    if outcome is None:
        raise ProcessWorkerError(
            f"job subprocess died without reporting a result "
            f"(exit code {process.exitcode})",
            exitcode=process.exitcode,
        )
    tag = outcome[0]
    if tag == "done-payload":
        return None, outcome[1]
    if tag == "done-object":
        return outcome[1], None
    if tag == "cancelled":
        from repro.core.search import SearchCancelled

        raise SearchCancelled(outcome[1])
    assert tag == "failed", f"unknown pipe message {tag!r}"
    message, original = outcome[1], outcome[2]
    if original is not None:
        raise original
    raise ProcessWorkerError(message)
