"""The process execution backend, now a thin shim over the WorkerPool.

Historically this module owned its own subprocess runtime: one spawn
per job, a typed event pipe, cooperative cancellation, orphan
detection.  That machinery now lives in
:class:`repro.service.pool.WorkerPool` -- a pool of **long-lived**
worker processes shared by the campaign's shard dispatch, the
service's ``--backend process`` jobs and the federation agent -- and
this module keeps only the job-level vocabulary on top of it:
:func:`run_job_in_process` (the call the service and agent make per
job) and :class:`ProcessWorkerError` (how a dead or unpicklably-failed
job surfaces to callers).

The observable contract is unchanged from the spawn-per-job days: the
child executes the plan through the same
:func:`~repro.service.executor.execute_plan` dispatcher while
streaming typed events back over a pipe, the parent republishes each
event in order (so :class:`~repro.events.EventBus` subscribers, the
HTTP ``/jobs/<id>/events`` endpoint and the golden event-stream tests
observe the identical sequence whichever backend ran the job),
cancellation stays cooperative with checkpoints written before
:class:`~repro.core.search.SearchCancelled` propagates, and cacheable
results cross the pipe as their canonical store payload so the
store's byte-identity guarantee holds.  What changed is the cost
model: with a persistent ``pool``, the 40th job runs on a worker
whose imports and tiling memo are already warm instead of paying a
fresh spawn.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.events import Event
from repro.plans import RunPlan
from repro.service.pool import WorkerDied, WorkerPool, WorkerTaskError


class ProcessWorkerError(RuntimeError):
    """A job's subprocess failed in a way the plan's code didn't raise.

    Covers two cases: the worker died without a terminal message (OOM
    kill, hard crash -- ``exitcode`` then says how), and a child-side
    exception whose object could not be pickled back (the original
    type and message are preserved in the error text).
    """

    def __init__(self, message: str, exitcode: int | None = None):
        super().__init__(message)
        self.exitcode = exitcode


def run_job_in_process(
    plan: RunPlan,
    emit: Callable[[Event], None],
    cancel_requested: Callable[[], bool],
    fallback_checkpoint_dir: str | None = None,
    store_dir: str | None = None,
    pool: WorkerPool | None = None,
    tiling_dir: str | None = None,
) -> tuple[Any, dict[str, Any] | None]:
    """Execute one plan on a pool worker process (blocking).

    Streams every child event through ``emit`` in order, forwards a
    pending cancel request (``cancel_requested`` polled alongside the
    pipe) to the child exactly once, and returns
    ``(result_obj, payload)`` where exactly one side is set: cacheable
    workloads come back as their canonical store payload (decode
    lazily or :func:`repro.service.store.decode_result` eagerly),
    codec-less workloads as the live result object.

    ``pool`` is the :class:`~repro.service.pool.WorkerPool` to run on;
    passing a persistent pool (the service and agent both keep one) is
    what makes worker reuse happen.  When None, a transient one-worker
    pool is stood up and torn down around the job -- the old
    spawn-per-job behavior, kept for direct callers.

    ``store_dir`` names a *persistent*
    :class:`~repro.service.store.ResultStore` directory the child
    rebuilds and memoizes campaign shards through (read-through before
    running each shard, write-through after) -- the process-backend
    spelling of the thread backend's live store handle, and a
    shared-filesystem contract exactly like the checkpoint directory.
    It also anchors the cross-process tiling memo: workers point their
    disk tier at ``<store_dir>/tiling`` (or an explicit ``tiling_dir``
    when given), so one job's layer designs warm every later job on
    the same store.

    Raises whatever the plan's execution raised --
    :class:`~repro.core.search.SearchCancelled` included -- or
    :class:`ProcessWorkerError` when the child died without reporting
    (or failed with an exception that could not be pickled back).
    """
    transient = pool is None
    if transient:
        pool = WorkerPool(1, name="repro-job")
    try:
        return pool.run_plan(
            plan,
            emit=emit,
            cancel_requested=cancel_requested,
            fallback_checkpoint_dir=fallback_checkpoint_dir,
            store_dir=store_dir,
            tiling_dir=tiling_dir,
        )
    except WorkerDied as exc:
        raise ProcessWorkerError(
            f"job subprocess died without reporting a result "
            f"(exit code {exc.exitcode})",
            exitcode=exc.exitcode,
        ) from exc
    except WorkerTaskError as exc:
        raise ProcessWorkerError(str(exc)) from exc
    finally:
        if transient:
            pool.close()
