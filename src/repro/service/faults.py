"""Deterministic fault injection for federation chaos testing.

Production code sprinkles named :func:`crash_point` calls at the
moments a process is most interesting to kill -- an agent right after
claiming a job, mid event upload, between heartbeats.  In normal
operation every call is a no-op costing one dict lookup.  Under test,
the ``REPRO_CRASH_POINTS`` environment variable arms specific points,
and a triggered point SIGKILLs its own process -- not ``sys.exit``,
not an exception: the genuine no-cleanup, no-flush death that
crash-consistency claims must survive.

Two arming grammars, comma-separated in ``REPRO_CRASH_POINTS``:

* ``name=N`` -- deterministic count: the N-th *hit* of ``name`` kills
  the process (``agent.claimed=1`` dies on the first claim,
  ``agent.event=5`` on the fifth event upload);
* ``name~p@seed`` -- seeded probability: each hit of ``name`` dies
  with probability ``p`` drawn from a :class:`random.Random` seeded
  with ``seed``, so a chaos matrix can explore many kill timings while
  every individual run stays exactly reproducible.

The module-level :class:`FaultInjector` is configured once from the
environment on first use (subprocesses inherit the variable, which is
precisely how agent processes get armed by the test harness);
:func:`reset` re-reads it for in-process tests.
"""

from __future__ import annotations

import os
import random
import signal

#: Environment variable naming the armed crash points.
CRASH_POINTS_ENV = "REPRO_CRASH_POINTS"


class FaultInjector:
    """Parsed, stateful crash-point table for one process.

    Parameters:
        spec: the arming string (``REPRO_CRASH_POINTS`` grammar);
            ``None`` or empty arms nothing.

    Malformed clauses raise :class:`ValueError` immediately -- a chaos
    harness that silently arms nothing would report green runs that
    tested nothing.
    """

    def __init__(self, spec: str | None = None):
        self._counts: dict[str, int] = {}
        self._hits: dict[str, int] = {}
        self._probs: dict[str, tuple[float, random.Random]] = {}
        for clause in (spec or "").split(","):
            clause = clause.strip()
            if not clause:
                continue
            if "=" in clause:
                name, _, count = clause.partition("=")
                self._counts[name.strip()] = int(count)
            elif "~" in clause:
                name, _, rest = clause.partition("~")
                prob, _, seed = rest.partition("@")
                if not seed:
                    raise ValueError(
                        f"probabilistic crash point {clause!r} needs a "
                        "seed: use 'name~p@seed'"
                    )
                p = float(prob)
                if not 0.0 <= p <= 1.0:
                    raise ValueError(
                        f"crash probability must be in [0, 1], got {p}")
                self._probs[name.strip()] = (p, random.Random(int(seed)))
            else:
                raise ValueError(
                    f"malformed crash point {clause!r}; expected 'name=N' "
                    "or 'name~p@seed'"
                )

    def armed(self, name: str) -> bool:
        """Whether ``name`` has any arming clause at all."""
        return name in self._counts or name in self._probs

    def should_crash(self, name: str) -> bool:
        """Record one hit of ``name``; True when the process must die."""
        hit = self._hits.get(name, 0) + 1
        self._hits[name] = hit
        if name in self._counts and hit == self._counts[name]:
            return True
        if name in self._probs:
            p, rng = self._probs[name]
            return rng.random() < p
        return False

    def crash_point(self, name: str) -> None:
        """Die (SIGKILL, no cleanup) if this hit of ``name`` triggers.

        SIGKILL cannot be caught, so nothing after this line runs: no
        ``finally`` blocks, no flushes, no atexit -- the exact failure
        mode lease recovery and the journal are designed around.
        """
        if self.should_crash(name):
            os.kill(os.getpid(), signal.SIGKILL)


_injector: FaultInjector | None = None


def _current() -> FaultInjector:
    global _injector
    if _injector is None:
        _injector = FaultInjector(os.environ.get(CRASH_POINTS_ENV))
    return _injector


def crash_point(name: str) -> None:
    """Module-level kill point (see :class:`FaultInjector`).

    Reads ``REPRO_CRASH_POINTS`` once, lazily, so importing this module
    costs nothing and agent subprocesses spawned with the variable set
    arm themselves without plumbing.
    """
    _current().crash_point(name)


def reset(spec: str | None = None) -> None:
    """Re-arm the module injector (tests); ``None`` re-reads the env."""
    global _injector
    _injector = FaultInjector(
        spec if spec is not None else os.environ.get(CRASH_POINTS_ENV)
    )
