"""Multi-tenant admission control: API keys, quotas, fair-share priority.

Both HTTP front ends can bind a :class:`TenantRegistry` (built from a
``tenants.json`` config via :meth:`TenantRegistry.load`); with one
bound, every job route requires an API key (``X-API-Key`` header or
``Authorization: Bearer``), and submissions are admitted through three
gates:

* **authentication** -- a missing key is :class:`MissingApiKeyError`
  (HTTP 401), an unrecognised one :class:`UnknownApiKeyError`
  (HTTP 403);
* **quotas** -- each tenant caps its concurrently *running* jobs and
  its *queued* backlog; a breach raises :class:`QuotaExceededError`
  (HTTP 429 with ``Retry-After``), and -- crucially -- never touches
  jobs already admitted: quota enforcement happens strictly before
  :meth:`~repro.service.SearchService.submit`;
* **fair share** -- admitted jobs are priority-weighted so that
  tenants saturating the queue interleave proportionally to their
  configured ``weight`` (see :func:`fair_share_priority`): a tenant's
  n-th outstanding job is penalised by ``n // weight``, so a weight-2
  tenant drains two jobs for every one of a weight-1 tenant while
  neither can starve the other.  The caller's own ``priority`` stays
  the dominant band -- fairness only reorders within one priority
  level.

Accounting is durable: the job journal records the admitting tenant on
every ``queued`` entry, so :func:`tenant_accounting` can rebuild
per-tenant submission/outcome counters from the journal alone --
including after a crash, on a recovered service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

#: Multiplier separating caller-priority bands from fairness penalties:
#: fairness can only reorder submissions *within* one caller priority.
PRIORITY_BAND = 1_000_000

#: Headers a front end accepts API keys from, in precedence order.
API_KEY_HEADER = "x-api-key"
AUTHORIZATION_HEADER = "authorization"


class TenantAuthError(PermissionError):
    """Base class of tenant authentication failures."""

    #: HTTP status the front ends map this error onto.
    status = 403


class MissingApiKeyError(TenantAuthError):
    """No API key was presented on a route that requires one (401)."""

    status = 401


class UnknownApiKeyError(TenantAuthError):
    """The presented API key matches no configured tenant (403)."""

    status = 403


class QuotaExceededError(RuntimeError):
    """A tenant submit would exceed its quota (HTTP 429).

    Attributes:
        tenant: the tenant name.
        limit: which quota tripped (``"running"`` or ``"queued"``).
        retry_after: suggested client wait, in seconds (the
            ``Retry-After`` header value).
    """

    def __init__(self, tenant: str, limit: str, message: str,
                 retry_after: float = 1.0):
        super().__init__(message)
        self.tenant = tenant
        self.limit = limit
        self.retry_after = retry_after


@dataclass(frozen=True)
class Tenant:
    """One tenant's identity, share and quotas.

    Attributes:
        name: stable tenant name (the journal/accounting key).
        api_key: the secret presented on every request.
        weight: fair-share weight (>= 1); a weight-2 tenant drains
            twice the jobs of a weight-1 tenant under contention.
        max_running: cap on concurrently running jobs (``None`` =
            unlimited).
        max_queued: cap on the queued backlog (``None`` = unlimited).
    """

    name: str
    api_key: str
    weight: int = 1
    max_running: int | None = None
    max_queued: int | None = None

    def __post_init__(self) -> None:
        """Validate identity, weight and quota bounds."""
        if not self.name or not isinstance(self.name, str):
            raise ValueError("tenant name must be a non-empty string")
        if not self.api_key or not isinstance(self.api_key, str):
            raise ValueError(
                f"tenant {self.name!r}: api_key must be a non-empty string"
            )
        if not isinstance(self.weight, int) or self.weight < 1:
            raise ValueError(
                f"tenant {self.name!r}: weight must be an int >= 1, got "
                f"{self.weight!r}"
            )
        for label, value in (("max_running", self.max_running),
                             ("max_queued", self.max_queued)):
            if value is not None and (not isinstance(value, int)
                                      or value < 1):
                raise ValueError(
                    f"tenant {self.name!r}: {label} must be an int >= 1 "
                    f"or null, got {value!r}"
                )


class TenantRegistry:
    """The set of configured tenants, addressable by name and API key."""

    def __init__(self, tenants: Iterable[Tenant]):
        self._by_name: dict[str, Tenant] = {}
        self._by_key: dict[str, Tenant] = {}
        for tenant in tenants:
            if tenant.name in self._by_name:
                raise ValueError(f"duplicate tenant name {tenant.name!r}")
            if tenant.api_key in self._by_key:
                raise ValueError(
                    f"tenant {tenant.name!r} reuses another tenant's api_key"
                )
            self._by_name[tenant.name] = tenant
            self._by_key[tenant.api_key] = tenant
        if not self._by_name:
            raise ValueError("a tenant registry needs at least one tenant")

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TenantRegistry":
        """Build a registry from the ``tenants.json`` document shape.

        The document is ``{"tenants": [{"name", "api_key", "weight"?,
        "max_running"?, "max_queued"?}, ...]}``; unknown per-tenant
        keys are rejected by name so config typos fail loudly.
        """
        if not isinstance(doc, dict) or not isinstance(
                doc.get("tenants"), list):
            raise ValueError(
                'tenant config must be {"tenants": [...]}; see docs/api.md'
            )
        allowed = {"name", "api_key", "weight", "max_running", "max_queued"}
        tenants = []
        for entry in doc["tenants"]:
            if not isinstance(entry, dict):
                raise ValueError("each tenant entry must be a JSON object")
            unknown = set(entry) - allowed
            if unknown:
                raise ValueError(
                    f"unknown tenant config key(s) {sorted(unknown)}; "
                    f"valid keys: {sorted(allowed)}"
                )
            tenants.append(Tenant(**entry))
        return cls(tenants)

    @classmethod
    def load(cls, path: str | Path) -> "TenantRegistry":
        """Parse a ``tenants.json`` file into a registry."""
        return cls.from_dict(json.loads(Path(path).read_text(
            encoding="utf-8")))

    def __len__(self) -> int:
        """Number of configured tenants."""
        return len(self._by_name)

    def tenants(self) -> list[Tenant]:
        """Every configured tenant, in configuration order."""
        return list(self._by_name.values())

    def get(self, name: str) -> Tenant | None:
        """The tenant named ``name``, or ``None``."""
        return self._by_name.get(name)

    def authenticate(self, api_key: str | None) -> Tenant:
        """Resolve an API key to its tenant.

        Raises :class:`MissingApiKeyError` for ``None``/empty keys and
        :class:`UnknownApiKeyError` for unrecognised ones -- the front
        ends map these to 401 and 403.
        """
        if not api_key:
            raise MissingApiKeyError(
                "missing API key; send X-API-Key: <key> or "
                "Authorization: Bearer <key>"
            )
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise UnknownApiKeyError("unrecognised API key")
        return tenant


def api_key_from_headers(headers: dict[str, str]) -> str | None:
    """Extract the API key from lower-cased header mapping.

    ``X-API-Key`` wins; otherwise a ``Bearer`` authorization value is
    used.  Returns ``None`` when neither is present.
    """
    key = headers.get(API_KEY_HEADER)
    if key:
        return key.strip()
    auth = headers.get(AUTHORIZATION_HEADER, "")
    scheme, _, value = auth.partition(" ")
    if scheme.lower() == "bearer" and value.strip():
        return value.strip()
    return None


def fair_share_priority(base_priority: int, weight: int,
                        outstanding: int) -> int:
    """The service priority for a tenant's next admitted job.

    Stateless weighted fairness: the job's penalty is the tenant's
    current ``outstanding`` (queued + running) job count divided by its
    ``weight``, so a tenant's backlog self-throttles proportionally to
    its share while a light user's first job always lands at the top of
    its band.  ``base_priority`` stays dominant (band width
    :data:`PRIORITY_BAND`): fairness never promotes a low-priority
    submission over a high-priority one.
    """
    penalty = min(max(0, outstanding) // max(1, weight), PRIORITY_BAND - 1)
    return base_priority * PRIORITY_BAND - penalty


def check_quota(tenant: Tenant, queued: int, running: int) -> None:
    """Raise :class:`QuotaExceededError` when a submit would breach.

    ``queued``/``running`` are the tenant's *current* counts (the job
    being submitted excluded).  Enforcement is strictly pre-admission,
    so a breach can never evict or stall a job already accepted.
    """
    if tenant.max_running is not None and running >= tenant.max_running:
        raise QuotaExceededError(
            tenant.name, "running",
            f"tenant {tenant.name!r} already has {running} running job(s) "
            f"(max_running={tenant.max_running}); retry once one finishes",
            retry_after=2.0,
        )
    if tenant.max_queued is not None and queued >= tenant.max_queued:
        raise QuotaExceededError(
            tenant.name, "queued",
            f"tenant {tenant.name!r} already has {queued} queued job(s) "
            f"(max_queued={tenant.max_queued}); retry once the queue drains",
            retry_after=1.0,
        )


def tenant_accounting(
    entries: Iterable[dict[str, Any]],
) -> dict[str, dict[str, int]]:
    """Per-tenant counters reduced from replayed journal entries.

    The journal records the admitting tenant on every ``queued`` line;
    later state markers are attributed through their plan hash.  For
    each tenant the reduction counts ``submitted`` (queued
    transitions, resubmissions included) and terminal outcomes
    (``done`` / ``failed`` / ``cancelled``).  Jobs with no recorded
    tenant land under :data:`~repro.service.metrics.ANONYMOUS_TENANT`.
    Survives crashes by construction: it reads the same journal the
    service recovers from.
    """
    from repro.service.metrics import ANONYMOUS_TENANT

    owner: dict[str, str] = {}
    counts: dict[str, dict[str, int]] = {}

    def bucket(tenant: str) -> dict[str, int]:
        return counts.setdefault(tenant, {
            "submitted": 0, "done": 0, "failed": 0, "cancelled": 0,
        })

    for entry in entries:
        op = entry.get("op")
        digest = entry.get("hash")
        if not isinstance(digest, str):
            continue
        if op == "queued":
            tenant = entry.get("tenant")
            owner[digest] = (
                tenant if isinstance(tenant, str) and tenant
                else ANONYMOUS_TENANT
            )
            bucket(owner[digest])["submitted"] += 1
        elif op in ("done", "failed", "cancelled"):
            bucket(owner.get(digest, ANONYMOUS_TENANT))[op] += 1
    return counts
