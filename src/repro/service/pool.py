"""One worker-pool runtime for every parallel execution surface.

Before this module existed the repo ran *two* process runtimes side by
side: ``Campaign._run_pooled`` stood up a throwaway
``ProcessPoolExecutor`` per run (every shard paying process spawn,
module import and a cold tiling memo), while
:mod:`repro.service.workers` owned a separately-hardened
one-subprocess-per-job backend.  :class:`WorkerPool` collapses both
into a single pool of **long-lived** worker processes that

* are spawned lazily (first checkout) under the fork-preferring
  context, so registry state survives the boundary and a warm tiling
  memo is inherited;
* stay alive across tasks -- a campaign's 40th shard and a service's
  40th job run on a worker whose imports, caches and allocator are
  already hot (``worker.reuse`` in :meth:`stats` counts exactly this);
* keep the event-pipe framing, cooperative cancellation and
  parent-death semantics of the old process backend: every
  child->parent message is a ``(tag, seq, ...)`` tuple, cancellation
  is a per-worker *generation* value the child polls between trials
  (and between batch items), and a worker orphaned by a SIGKILLed
  parent notices the changed ppid and exits at its next poll;
* report worker death explicitly: a handle whose worker died carries
  a :class:`WorkerDied` error plus the set of batch items that already
  landed, so the caller can re-queue exactly the lost items
  (campaigns re-queue them *individually* and their checkpoints
  resume).

Tasks come in two kinds.  :meth:`WorkerPool.submit` runs a batch of
calls ``fn(*call)`` -- the campaign's shard dispatch, one
``item-done`` frame per call so results stream back as they finish.
:meth:`WorkerPool.run_plan` runs one full
:class:`~repro.plans.RunPlan` through
:func:`~repro.service.executor.execute_plan` with typed events
streamed back -- the service's process backend and the federation
agent's job execution, both now free of their one-spawn-per-job tax.

Thread safety is by *checkout*: a worker belongs to exactly one
handle (hence one calling thread) from dispatch until its terminal
frame is processed, so pipes never interleave across threads.  The
pool object itself (checkout, release, stats) is lock-protected and
shared freely across threads -- the service's worker threads all draw
from one pool.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Sequence

from repro.events import Event, event_from_json, event_to_json
from repro.plans import RunPlan, canonical_plan_json

#: Seconds between parent-side polls of a pipe and the cancel flag.
_POLL_SECONDS = 0.05

#: Seconds an idle child waits on its task pipe before re-checking
#: whether its parent is still alive.
_IDLE_POLL_SECONDS = 0.2


class WorkerDied(RuntimeError):
    """A pool worker died mid-task without a terminal frame.

    Carries the worker's ``exitcode`` (None when it could not be
    reaped).  Callers translate this into their own vocabulary: the
    campaign re-queues the lost shards, the process backend raises
    :class:`~repro.service.workers.ProcessWorkerError`.
    """

    def __init__(self, message: str, exitcode: int | None = None):
        super().__init__(message)
        self.exitcode = exitcode


class WorkerTaskError(RuntimeError):
    """A task failed in the child with an unpicklable exception.

    The original type and message survive in the error text; the
    worker itself is healthy and returns to the pool.
    """


# -- child side ---------------------------------------------------------------


def _exception_message(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _picklable(exc: BaseException) -> BaseException | None:
    """The exception itself when it survives pickling, else None."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return None


def _worker_main(conn, cancel_seq, parent_pid: int) -> None:
    """Long-lived worker body: loop over tasks until exit or orphaned.

    Parent->child frames: ``("task", seq, kind, payload)`` and
    ``("exit",)``.  Child->parent frames all carry the task's ``seq``
    so stale frames are impossible to misattribute:
    ``("event", seq, event_json)``, ``("item-done", seq, index,
    value)``, and exactly one terminal per task -- ``("done", seq,
    value)`` / ``("cancelled", seq, completed)`` / ``("failed", seq,
    message, picklable_exc_or_None)``.

    ``cancel_seq`` is a shared integer holding the *generation to
    cancel*: the parent sets it to a task's ``seq`` to cancel that
    task; earlier or later tasks are unaffected (no event-clearing
    races across task boundaries).
    """
    try:
        while True:
            if not conn.poll(_IDLE_POLL_SECONDS):
                if os.getppid() != parent_pid:
                    return  # orphaned while idle: parent is gone
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent closed the pipe (pool shutdown)
            if message[0] == "exit":
                return
            _, seq, kind, payload = message
            try:
                if kind == "plan":
                    _child_run_plan(conn, seq, cancel_seq, parent_pid,
                                    payload)
                else:
                    _child_run_batch(conn, seq, cancel_seq, parent_pid,
                                     payload)
            except (BrokenPipeError, OSError):
                return  # parent vanished mid-report
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown
            pass


def _child_run_batch(conn, seq: int, cancel_seq, parent_pid: int,
                     payload) -> None:
    """Run a batch of calls, streaming one ``item-done`` per call.

    Cancellation (and parent death) is checked *between* items: the
    in-flight call finishes -- its own checkpoint cadence preserves
    progress -- and the remaining items never start.
    """
    setup, fn, calls = payload
    if setup is not None:
        setup()
    for index, call in enumerate(calls):
        if cancel_seq.value == seq or os.getppid() != parent_pid:
            conn.send(("cancelled", seq, index))
            return
        try:
            value = fn(*call)
        except BaseException as exc:  # noqa: BLE001 - must cross the pipe
            conn.send(("failed", seq, _exception_message(exc),
                       _picklable(exc)))
            return
        conn.send(("item-done", seq, index, value))
    conn.send(("done", seq, None))


def _child_run_plan(conn, seq: int, cancel_seq, parent_pid: int,
                    payload) -> None:
    """Execute one plan, streaming typed events; exactly one terminal.

    Mirrors the old per-job child of :mod:`repro.service.workers`:
    the plan crosses as canonical JSON, a persistent store directory
    is rebuilt child-side (a live store handle cannot cross), and
    cacheable results come back as their canonical payload so the
    store's byte-identity guarantee holds whichever backend ran the
    job.  ``tiling_dir`` additionally points the child's tiling memo
    at the shared on-disk tier, so one worker's layer designs warm
    every other worker on the same store.
    """
    from repro.core.search import SearchCancelled
    from repro.fpga.tiling import configure_disk_cache
    from repro.service import store as store_mod
    from repro.service.executor import execute_plan

    plan_json, fallback_checkpoint_dir, store_dir, tiling_dir = payload
    if tiling_dir is not None:
        configure_disk_cache(tiling_dir)
    plan = RunPlan.from_json(plan_json)
    store = None if store_dir is None else store_mod.ResultStore(store_dir)

    def emit(event: Event) -> None:
        conn.send(("event", seq, event_to_json(event)))

    def should_stop() -> bool:
        # A changed parent pid means the pool's owner died: stop (and
        # checkpoint) instead of computing for a reader that is gone.
        return cancel_seq.value == seq or os.getppid() != parent_pid

    try:
        result = execute_plan(
            plan,
            emit=emit,
            should_stop=should_stop,
            fallback_checkpoint_dir=fallback_checkpoint_dir,
            store=store,
        )
    except SearchCancelled as exc:
        conn.send(("cancelled", seq, exc.completed))
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        conn.send(("failed", seq, _exception_message(exc), _picklable(exc)))
    else:
        if store_mod.is_cacheable(plan):
            conn.send(("done", seq,
                       ("payload", store_mod.encode_result(plan, result))))
        else:
            try:
                conn.send(("done", seq, ("object", result)))
            except Exception as exc:  # unpicklable result object
                conn.send(("failed", seq,
                           f"result of workload {plan.workload!r} could "
                           f"not cross the process boundary: "
                           f"{_exception_message(exc)}", None))


# -- parent side --------------------------------------------------------------


def _context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context workers spawn under.

    ``fork`` keeps the parent's registry state (third-party controllers
    or evaluators registered in-process stay resolvable in the child)
    and its warm in-memory tiling memo; platforms without it fall back
    to the default start method, where only entry-point-importable
    components survive the boundary.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class _Worker:
    """One long-lived worker process plus its parent-side plumbing."""

    __slots__ = ("process", "conn", "cancel_seq", "tasks_run")

    def __init__(self, process, conn, cancel_seq):
        self.process = process
        self.conn = conn
        self.cancel_seq = cancel_seq
        #: Tasks this worker has completed (reuse accounting).
        self.tasks_run = 0


class TaskHandle:
    """One dispatched task: its worker, streamed results, terminal state.

    A handle is owned by the thread that submitted it; only that
    thread may :meth:`WorkerPool.wait` on it or read its fields.

    Attributes:
        seq: the task's generation number (unique per pool).
        item_count: how many batch items the task carries (1 for plan
            tasks).
        delivered: indices whose ``item-done`` frames have arrived.
        outcome: the terminal frame, once processed (``("done", seq,
            value)`` / ``("cancelled", seq, n)`` / ``("failed", seq,
            message, exc)``); None while running.
        error: a :class:`WorkerDied` when the worker died mid-task.
    """

    __slots__ = ("seq", "item_count", "worker", "on_item", "on_event",
                 "delivered", "outcome", "error")

    def __init__(self, seq: int, item_count: int, worker: _Worker,
                 on_item=None, on_event=None):
        self.seq = seq
        self.item_count = item_count
        self.worker = worker
        self.on_item = on_item
        self.on_event = on_event
        self.delivered: set[int] = set()
        self.outcome: tuple | None = None
        self.error: WorkerDied | None = None

    @property
    def finished(self) -> bool:
        """Whether a terminal frame (or the worker's death) landed."""
        return self.outcome is not None or self.error is not None

    @property
    def lost_indices(self) -> list[int]:
        """Batch items with no result when the task ended (in order)."""
        return [i for i in range(self.item_count) if i not in self.delivered]


class WorkerPool:
    """A pool of long-lived worker processes shared across dispatchers.

    Parameters:
        max_workers: concurrent worker processes (spawned lazily as
            tasks arrive, replaced lazily after deaths).
        name: prefix for worker process names (debugging/ps).
    """

    def __init__(self, max_workers: int, name: str = "repro-pool"):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.name = name
        self._ctx = _context()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._idle: list[_Worker] = []
        self._checked_out: set[_Worker] = set()
        self._next_seq = 1
        self._closed = False
        # stats counters (guarded by self._lock)
        self._dispatched = 0
        self._reused = 0
        self._spawned = 0
        self._deaths = 0
        # Workers are non-daemon (they may fan out pools of their
        # own), so a pool abandoned without close() -- say a service
        # dropped without shutdown() -- would block interpreter exit
        # on multiprocessing's child joins.  Registered *after*
        # multiprocessing imported, this runs before those joins.
        atexit.register(self.close)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down (idempotent).

        Callers drain their in-flight handles first (the campaign's
        cancel path, the service's thread join), so by the time close
        runs every worker is idle and exits on the ``exit`` frame;
        any still-checked-out worker (a crashed dispatcher) is
        terminated defensively.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            abandoned = list(self._checked_out)
            self._checked_out.clear()
            self._cond.notify_all()
        atexit.unregister(self.close)
        for worker in idle:
            try:
                worker.conn.send(("exit",))
            except OSError:
                pass
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in abandoned:  # pragma: no cover - defensive teardown
            worker.process.terminate()
            worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass

    # -- introspection ------------------------------------------------------

    def available(self) -> int:
        """Workers a submit could use right now without blocking."""
        with self._lock:
            return self.max_workers - len(self._checked_out)

    def stats(self) -> dict[str, int]:
        """Pool counters, in the spelling ``/metrics`` reports.

        ``pool.dispatch`` counts tasks handed to workers;
        ``worker.reuse`` counts dispatches that found a warm worker
        (one that had already run at least one task) -- the number
        the old spawn-per-task runtimes held at zero.
        """
        with self._lock:
            return {
                "pool.dispatch": self._dispatched,
                "worker.reuse": self._reused,
                "worker.spawn": self._spawned,
                "worker.death": self._deaths,
                "workers.alive": len(self._idle) + len(self._checked_out),
            }

    # -- dispatch -----------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        calls: Sequence[tuple],
        on_item: Callable[[int, Any], None] | None = None,
        setup: Callable[[], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> TaskHandle | None:
        """Dispatch a batch of ``fn(*call)`` calls to one worker.

        Blocks until a worker is free (``should_stop`` polled while
        waiting; a stop returns None with nothing dispatched).  The
        worker runs the calls in order, streaming one result frame per
        call; ``on_item(index, value)`` fires from the waiting
        thread's :meth:`wait` as each frame is processed.  ``setup``
        (when given) runs once in the child before the first call --
        e.g. pointing the worker's tiling memo at a shared disk tier.
        Both ``fn`` and ``setup`` cross the pipe by reference
        (module-level callables), so monkeypatched module globals
        resolve in forked workers exactly as they do in-process.
        """
        if not calls:
            raise ValueError("submit needs at least one call")
        worker = self._checkout(should_stop)
        if worker is None:
            return None
        handle = self._dispatch(worker, "batch", (setup, fn, list(calls)),
                                item_count=len(calls), on_item=on_item)
        return handle

    def run_plan(
        self,
        plan: RunPlan,
        emit: Callable[[Event], None],
        cancel_requested: Callable[[], bool],
        fallback_checkpoint_dir: str | None = None,
        store_dir: str | None = None,
        tiling_dir: str | None = None,
    ) -> tuple[Any, dict[str, Any] | None]:
        """Execute one plan on a pool worker (blocking).

        The persistent-worker spelling of the old per-job subprocess:
        events stream through ``emit`` in order, a pending cancel
        request is forwarded exactly once, and the return is
        ``(result_obj, payload)`` with exactly one side set (cacheable
        workloads come back as their canonical store payload).

        Raises whatever the plan's execution raised --
        :class:`~repro.core.search.SearchCancelled` included --
        :class:`WorkerTaskError` for a child exception that could not
        be pickled back, or :class:`WorkerDied` when the worker died
        without reporting.
        """
        if tiling_dir is None and store_dir is not None:
            tiling_dir = os.path.join(store_dir, "tiling")
        worker = self._checkout(None)
        handle = self._dispatch(
            worker, "plan",
            (canonical_plan_json(plan), fallback_checkpoint_dir, store_dir,
             tiling_dir),
            item_count=1, on_event=emit,
        )
        cancelled = False
        while not handle.finished:
            if cancel_requested() and not cancelled:
                self.cancel(handle)
                cancelled = True
            self.wait([handle], timeout=_POLL_SECONDS)
        if handle.error is not None:
            raise handle.error
        tag = handle.outcome[0]
        if tag == "done":
            kind, value = handle.outcome[2]
            return (value, None) if kind == "object" else (None, value)
        if tag == "cancelled":
            from repro.core.search import SearchCancelled

            raise SearchCancelled(handle.outcome[2])
        assert tag == "failed", f"unknown terminal frame {tag!r}"
        message, original = handle.outcome[2], handle.outcome[3]
        if original is not None:
            raise original
        raise WorkerTaskError(message)

    def cancel(self, handle: TaskHandle) -> None:
        """Request cooperative cancellation of one in-flight task.

        Sets the worker's cancel generation to the task's ``seq``;
        the child stops at its next poll boundary (between batch
        items, between trials inside a plan).  A no-op on finished
        handles -- the worker may already be running someone else's
        task under a newer generation.
        """
        if not handle.finished:
            handle.worker.cancel_seq.value = handle.seq

    def wait(self, handles: Sequence[TaskHandle],
             timeout: float = 0.5) -> list[TaskHandle]:
        """Process pipe frames for ``handles``; return the newly finished.

        Invokes each handle's ``on_item``/``on_event`` callbacks on
        the calling thread as frames are processed.  Returns as soon
        as at least one handle finishes (terminal frame or worker
        death) or the timeout elapses, whichever is first.
        """
        pending = [h for h in handles if not h.finished]
        finished = [h for h in handles if h.finished]
        if finished or not pending:
            return finished
        deadline = time.monotonic() + timeout
        while True:
            by_conn = {h.worker.conn: h for h in pending if not h.finished}
            remaining = deadline - time.monotonic()
            if not by_conn or remaining <= 0:
                break
            ready = mp_connection.wait(list(by_conn), timeout=remaining)
            for conn in ready:
                self._pump(by_conn[conn])
            finished = [h for h in pending if h.finished]
            if finished:
                return finished
        return [h for h in pending if h.finished]

    # -- internals ----------------------------------------------------------

    def _dispatch(self, worker: _Worker, kind: str, payload,
                  item_count: int, on_item=None, on_event=None) -> TaskHandle:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._dispatched += 1
            if worker.tasks_run > 0:
                self._reused += 1
        handle = TaskHandle(seq, item_count, worker,
                            on_item=on_item, on_event=on_event)
        try:
            worker.conn.send(("task", seq, kind, payload))
        except (OSError, BrokenPipeError):
            # The idle worker died before the task reached it.
            self._mark_dead(handle)
        return handle

    def _checkout(self, should_stop) -> _Worker | None:
        """Claim an idle worker, spawning up to ``max_workers`` lazily."""
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("WorkerPool is closed")
                if self._idle:
                    worker = self._idle.pop()
                    self._checked_out.add(worker)
                    return worker
                if len(self._checked_out) < self.max_workers:
                    worker = self._spawn_locked()
                    self._checked_out.add(worker)
                    return worker
                if should_stop is not None and should_stop():
                    return None
                self._cond.wait(timeout=_POLL_SECONDS)

    def _spawn_locked(self) -> _Worker:
        """Start one worker (caller holds the lock; spawning is fast
        under fork and workers idle until their first task)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        cancel_seq = self._ctx.Value("q", 0, lock=False)
        # Not daemons: plan tasks may be sweeps that fan out worker
        # pools of their own, which daemonic processes may not do.  An
        # abandoned worker (parent SIGKILLed) exits on its own via the
        # ppid check in its idle/trial polls.
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, cancel_seq, os.getpid()),
            name=f"{self.name}-worker-{self._spawned}",
        )
        process.start()
        child_conn.close()
        self._spawned += 1
        return _Worker(process, parent_conn, cancel_seq)

    def _pump(self, handle: TaskHandle) -> None:
        """Drain one worker's pipe into its handle (terminal included)."""
        worker = handle.worker
        while not handle.finished:
            try:
                if not worker.conn.poll(0):
                    if not worker.process.is_alive():
                        # Dead without EOF (e.g. inherited descriptors
                        # holding the pipe open): reap it.
                        self._mark_dead(handle)
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._mark_dead(handle)
                return
            self._apply(handle, message)

    def _apply(self, handle: TaskHandle, message: tuple) -> None:
        tag = message[0]
        if message[1] != handle.seq:
            return  # stale frame from an earlier generation (defensive)
        if tag == "event":
            if handle.on_event is not None:
                handle.on_event(event_from_json(message[2]))
        elif tag == "item-done":
            index, value = message[2], message[3]
            handle.delivered.add(index)
            if handle.on_item is not None:
                handle.on_item(index, value)
        else:  # terminal: done / cancelled / failed
            handle.outcome = message
            self._release(handle.worker)

    def _release(self, worker: _Worker) -> None:
        """Return a worker to the idle set after its terminal frame."""
        worker.tasks_run += 1
        with self._cond:
            self._checked_out.discard(worker)
            if self._closed:
                shut_down = True
            else:
                shut_down = False
                self._idle.append(worker)
                self._cond.notify()
        if shut_down:  # pragma: no cover - close raced a release
            try:
                worker.conn.send(("exit",))
            except OSError:
                pass
            worker.process.join(timeout=5.0)

    def _mark_dead(self, handle: TaskHandle) -> None:
        """Record a worker death against its in-flight handle."""
        worker = handle.worker
        worker.process.join(timeout=5.0)
        exitcode = worker.process.exitcode
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
            worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass
        handle.error = WorkerDied(
            f"pool worker died without reporting a result "
            f"(exit code {exitcode})",
            exitcode=exitcode,
        )
        with self._cond:
            self._checked_out.discard(worker)
            self._deaths += 1
            self._cond.notify()
