"""Tiny urllib-based client for the service's HTTP endpoint.

:class:`ServiceClient` mirrors the :class:`~repro.service.SearchService`
surface over HTTP -- submit / status / events / result / cancel --
using nothing beyond :mod:`urllib.request`.  ``repro submit`` is a thin
shell around it, and the service-smoke CI job drives a live server with
it.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.plans import RunPlan

#: Job states the client treats as terminal when waiting.
_TERMINAL = ("done", "failed", "cancelled")


class ServiceError(RuntimeError):
    """An HTTP error response from the service (status + body)."""

    def __init__(self, status: int, body: str):
        super().__init__(f"service returned HTTP {status}: {body}")
        self.status = status
        self.body = body


class ServiceClient:
    """Talk to a running ``repro serve`` endpoint.

    Parameters:
        base_url: e.g. ``http://127.0.0.1:8765`` (trailing slash
            optional).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- raw calls -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> bytes:
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                exc.code, exc.read().decode(errors="replace")
            ) from None

    def _json(self, method: str, path: str,
              body: dict[str, Any] | None = None) -> dict[str, Any]:
        return json.loads(self._request(method, path, body))

    # -- service surface -----------------------------------------------------

    def health(self) -> dict[str, Any]:
        """``GET /health``."""
        return self._json("GET", "/health")

    def submit(self, plan: RunPlan | dict[str, Any],
               priority: int = 0) -> dict[str, Any]:
        """Submit a plan (object or already-serialized dict)."""
        plan_doc = plan.to_dict() if isinstance(plan, RunPlan) else plan
        return self._json(
            "POST", "/jobs", {"plan": plan_doc, "priority": priority}
        )

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /jobs`` -> job summaries."""
        return self._json("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/<id>``."""
        return self._json("GET", f"/jobs/{job_id}")

    def events(self, job_id: str, since: int = 0) -> dict[str, Any]:
        """``GET /jobs/<id>/events?since=N`` (cursor in ``"next"``)."""
        return self._json("GET", f"/jobs/{job_id}/events?since={since}")

    def result_bytes(self, job_id: str) -> bytes:
        """``GET /jobs/<id>/result`` -- the canonical stored bytes."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``POST /jobs/<id>/cancel``."""
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def shutdown(self) -> dict[str, Any]:
        """``POST /shutdown`` -- drain and stop the server."""
        return self._json("POST", "/shutdown")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`TimeoutError` when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            info = self.status(job_id)
            if info["state"] in _TERMINAL:
                return info
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {info['state']} after {timeout}s"
                )
            time.sleep(poll)
