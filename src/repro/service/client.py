"""Tiny urllib-based client for the service's HTTP endpoint.

:class:`ServiceClient` mirrors the :class:`~repro.service.SearchService`
surface over HTTP -- submit / status / events / result / cancel --
using nothing beyond :mod:`urllib.request`.  ``repro submit`` is a thin
shell around it, the service-smoke CI job drives a live server with it,
and :class:`~repro.service.agent.WorkerAgent` speaks the ``/agents``
federation protocol through the same instance.

The client is retry-aware where retrying is safe: connection errors,
timeouts and 5xx responses on *idempotent* calls are retried with
bounded exponential backoff plus jitter.  Idempotency here is a
property of the service's semantics, not of the HTTP verb -- ``submit``
is idempotent because submissions dedup on the canonical plan hash
(re-sending the same plan coalesces onto the same job), while
``shutdown`` is not retried (a lost reply does not mean a lost
shutdown).  4xx responses are never retried: they are answers, not
infrastructure failures.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Iterator

from repro.plans import RunPlan

#: Job states the client treats as terminal when waiting.
_TERMINAL = ("done", "failed", "cancelled")

#: Cap on a single backoff sleep between retries, in seconds.
_BACKOFF_CAP = 2.0

#: Cap on the grown poll interval inside :meth:`ServiceClient.wait`.
_POLL_CAP = 2.0


class ServiceError(RuntimeError):
    """An HTTP error response from the service (status + body)."""

    def __init__(self, status: int, body: str):
        super().__init__(f"service returned HTTP {status}: {body}")
        self.status = status
        self.body = body


class JobTimeoutError(TimeoutError):
    """A :meth:`ServiceClient.wait` deadline elapsed.

    Subclasses :class:`TimeoutError`, so existing ``except
    TimeoutError`` handlers keep working; :attr:`info` carries the last
    job status dict observed before giving up, so callers can log the
    job's actual state (and run/event counts) instead of guessing.
    """

    def __init__(self, message: str, info: dict[str, Any]):
        super().__init__(message)
        self.info = info


class ServiceClient:
    """Talk to a running ``repro serve`` endpoint.

    Parameters:
        base_url: e.g. ``http://127.0.0.1:8765`` (trailing slash
            optional).
        timeout: per-request socket timeout in seconds.
        max_retries: extra attempts after the first failed request
            (idempotent calls only; 0 disables retrying).
        backoff: base backoff sleep in seconds; attempt *n* sleeps
            ``backoff * 2**n`` (capped, jittered by a factor in
            ``[0.5, 1.0)`` so synchronized clients fan out).
        api_key: tenant API key, sent as ``X-API-Key`` on every
            request (required against servers started with
            ``--tenants``; ignored by open servers).
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 max_retries: int = 3, backoff: float = 0.1,
                 api_key: str | None = None):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff <= 0:
            raise ValueError(f"backoff must be positive, got {backoff}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.api_key = api_key

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        return headers

    # -- raw calls -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None,
                 idempotent: bool = True) -> bytes:
        data = None if body is None else json.dumps(body).encode()
        attempts = 1 + (self.max_retries if idempotent else 0)
        last: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self._backoff_sleep(attempt - 1)
            request = urllib.request.Request(
                f"{self.base_url}{path}", data=data, method=method,
                headers=self._headers(),
            )
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                error = ServiceError(
                    exc.code, exc.read().decode(errors="replace"))
                if exc.code < 500:
                    raise error from None  # an answer, not a failure
                last = error
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    OSError, http.client.HTTPException) as exc:
                # HTTPException covers torn replies (IncompleteRead,
                # BadStatusLine) from half-closed connections -- as
                # retryable as never having connected at all.
                last = exc
        assert last is not None
        raise last

    def _backoff_sleep(self, failures: int) -> None:
        """Sleep before retry number ``failures + 1`` (jittered)."""
        delay = min(self.backoff * (2 ** failures), _BACKOFF_CAP)
        time.sleep(delay * (0.5 + random.random() / 2))

    def _json(self, method: str, path: str,
              body: dict[str, Any] | None = None,
              idempotent: bool = True) -> dict[str, Any]:
        return json.loads(self._request(method, path, body,
                                        idempotent=idempotent))

    # -- service surface -----------------------------------------------------

    def health(self) -> dict[str, Any]:
        """``GET /health``."""
        return self._json("GET", "/health")

    def submit(self, plan: RunPlan | dict[str, Any],
               priority: int = 0) -> dict[str, Any]:
        """Submit a plan (object or already-serialized dict).

        Retried on connection failure: submissions dedup on the
        canonical plan hash, so a retry after a lost reply lands on
        the same job.
        """
        plan_doc = plan.to_dict() if isinstance(plan, RunPlan) else plan
        return self._json(
            "POST", "/jobs", {"plan": plan_doc, "priority": priority}
        )

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /jobs`` -> job summaries."""
        return self._json("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/<id>``."""
        return self._json("GET", f"/jobs/{job_id}")

    def events(self, job_id: str, since: int = 0,
               wait: float | None = None) -> dict[str, Any]:
        """``GET /jobs/<id>/events?since=N`` (cursor in ``"next"``).

        ``wait`` long-polls: the async gateway parks the request up to
        that many seconds until the job's log grows past ``since``
        (or the job ends).  Old sync servers ignore the parameter and
        answer immediately, so callers degrade to plain polling.
        """
        path = f"/jobs/{job_id}/events?since={since}"
        if wait is not None:
            path += f"&wait={wait:g}"
        return self._json("GET", path)

    def stream_events(self, job_id: str, since: int = 0,
                      poll: float = 0.2) -> "Iterator[dict[str, Any]]":
        """Yield the job's events as they happen, until it ends.

        Each yielded frame is ``{"id": cursor, "event": type_tag,
        "data": event_doc}``; the final frame has ``event == "end"``
        and carries the job's terminal state in ``data``.  Against the
        async gateway this consumes the Server-Sent Events stream
        (``/jobs/<id>/events/stream``); against a server without SSE
        support it falls back transparently to long-polling
        :meth:`events` (and ultimately plain polling every ``poll``
        seconds against servers that ignore ``wait`` too) -- same
        frames either way.
        """
        # Probe the job first so "unknown job" surfaces as its own 404
        # instead of masquerading as a missing stream route.
        self.status(job_id)
        try:
            yield from self._stream_sse(job_id, since)
            return
        except ServiceError as exc:
            if exc.status not in (404, 405):
                raise
            # No SSE route: an old sync server.  Fall back.
        yield from self._stream_poll(job_id, since, poll)

    def _stream_sse(self, job_id: str,
                    since: int) -> "Iterator[dict[str, Any]]":
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events/stream?since={since}",
            headers=self._headers())
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                exc.code, exc.read().decode(errors="replace")) from None
        with response:
            frame: dict[str, str] = {}
            for raw in response:
                line = raw.decode().rstrip("\n")
                if line.startswith(":"):
                    continue  # heartbeat comment
                if line:
                    name, _, value = line.partition(":")
                    frame[name.strip()] = value.strip()
                    continue
                if not frame:
                    continue
                parsed = {
                    "id": int(frame.get("id", "0")),
                    "event": frame.get("event", "event"),
                    "data": json.loads(frame.get("data", "{}")),
                }
                frame = {}
                yield parsed
                if parsed["event"] == "end":
                    return

    def _stream_poll(self, job_id: str, since: int,
                     poll: float) -> "Iterator[dict[str, Any]]":
        cursor = since
        interval = poll
        while True:
            started = time.monotonic()
            page = self.events(job_id, since=cursor,
                               wait=_POLL_CAP * 2)
            for doc in page["events"]:
                cursor += 1
                interval = poll  # progress: reset the idle backoff
                yield {"id": cursor, "event": doc.get("event", "event"),
                       "data": doc}
            if page["state"] in _TERMINAL:
                yield {"id": cursor, "event": "end",
                       "data": {"state": page["state"], "next": cursor,
                                "reason": "terminal"}}
                return
            if not page["events"] and (
                    time.monotonic() - started) < interval:
                # The server answered instantly without events: it
                # ignores ``wait`` (old sync server), so pace the poll
                # loop client-side.
                time.sleep(interval)
                interval = min(interval * 1.5, _POLL_CAP)

    def result_bytes(self, job_id: str) -> bytes:
        """``GET /jobs/<id>/result`` -- the canonical stored bytes."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``POST /jobs/<id>/cancel`` (idempotent: cancel twice = once)."""
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def shutdown(self) -> dict[str, Any]:
        """``POST /shutdown`` -- drain and stop the server (no retry)."""
        return self._json("POST", "/shutdown", idempotent=False)

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2, max_poll: float = _POLL_CAP
             ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns it.

        The poll interval starts at ``poll`` and grows 1.5x per probe
        up to ``max_poll`` -- short jobs return promptly, long waits
        stop hammering the server.  Raises :class:`JobTimeoutError`
        (a :class:`TimeoutError`) carrying the final status dict when
        ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        interval = poll
        while True:
            info = self.status(job_id)
            if info["state"] in _TERMINAL:
                return info
            if time.monotonic() >= deadline:
                raise JobTimeoutError(
                    f"job {job_id} still {info['state']} after {timeout}s",
                    info=info,
                )
            time.sleep(min(interval, max(0.0, deadline - time.monotonic())))
            interval = min(interval * 1.5, max_poll)

    # -- agent federation protocol -------------------------------------------

    def register_agent(self, name: str | None = None,
                       agent_id: str | None = None) -> dict[str, Any]:
        """``POST /agents`` -- register; returns id + lease terms.

        Idempotent by ``agent_id``, so it retries safely -- exactly how
        an agent recovers from a coordinator restart.
        """
        return self._json(
            "POST", "/agents", {"name": name, "agent_id": agent_id})

    def agents(self) -> list[dict[str, Any]]:
        """``GET /agents`` -> registered agent summaries."""
        return self._json("GET", "/agents")["agents"]

    def claim(self, agent_id: str) -> dict[str, Any] | None:
        """``POST /agents/<id>/claim`` -- lease the next queued job.

        Returns the job descriptor (plan, lease terms, checkpoint dir)
        or ``None`` when the queue holds nothing claimable.
        """
        return self._json("POST", f"/agents/{agent_id}/claim")["job"]

    def agent_heartbeat(self, agent_id: str,
                        jobs: tuple[str, ...] | list[str] = ()
                        ) -> dict[str, Any]:
        """``POST /agents/<id>/heartbeat`` -- renew the listed leases.

        Returns the coordinator's directives (``lost`` / ``cancel``
        job-id lists).  NOT auto-retried here: the agent's own
        heartbeat loop owns the retry cadence (a blind client-level
        retry would hide exactly the latency the lease clock measures).
        """
        return self._json("POST", f"/agents/{agent_id}/heartbeat",
                          {"jobs": list(jobs)}, idempotent=False)

    def agent_leave(self, agent_id: str) -> dict[str, Any]:
        """``POST /agents/<id>/leave`` -- deregister gracefully."""
        return self._json("POST", f"/agents/{agent_id}/leave")

    def agent_events(self, agent_id: str, job_id: str,
                     events: list[dict[str, Any]]) -> dict[str, Any]:
        """``POST .../jobs/<id>/events`` -- stream event docs back.

        Safe to retry (appending the same batch twice cannot corrupt
        state and the window only opens on a torn connection); raises
        :class:`ServiceError` 409 when the lease is gone.
        """
        return self._json(
            "POST", f"/agents/{agent_id}/jobs/{job_id}/events",
            {"events": events})

    def agent_complete(self, agent_id: str, job_id: str, outcome: str,
                       payload: dict[str, Any] | None = None,
                       message: str | None = None,
                       completed: int = 0) -> dict[str, Any]:
        """``POST .../jobs/<id>/complete`` -- upload the terminal outcome.

        Idempotent under the lease: a retry after a torn reply hits
        :class:`StaleLeaseError` 409 (the first upload released the
        lease), which the agent treats as success-elsewhere.
        """
        return self._json(
            "POST", f"/agents/{agent_id}/jobs/{job_id}/complete",
            {"outcome": outcome, "payload": payload,
             "message": message, "completed": completed})
