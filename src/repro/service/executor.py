"""The one workload dispatcher every execution surface shares.

:func:`execute_plan` is the single place a :class:`~repro.plans.RunPlan`
turns into work.  :meth:`repro.api.Session.run` reaches it through a
one-job :class:`~repro.service.SearchService`; the long-lived service's
worker threads call it directly; nothing else in the codebase executes
a plan.  That is the redesign's invariant: *exactly one execution
engine*, so a plan produces byte-identical results whichever surface
submitted it.

Progress is reported as typed :mod:`repro.events` records through the
``emit`` callable; the ``search`` and ``sweep`` workloads run through
the :class:`~repro.orchestration.campaign.Campaign` runner (one shard
for a single search), which is also what makes their event streams
identical across surfaces and gives them cooperative cancellation with
checkpointing (``should_stop``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.events import Event, RunFinished, RunStarted, SearchStarted, legacy_event
from repro.plans import RunPlan

#: Workloads whose in-process engine accepts a live evaluator override
#: (everything else rebuilds evaluators from the plan's registry key).
EVALUATOR_OVERRIDE_WORKLOADS = ("table1", "figure6", "figure7", "paired")


def check_evaluator_override(plan: RunPlan, evaluator: Any) -> None:
    """Reject live-evaluator overrides for workloads that rebuild them.

    Raising here (synchronously, before any queueing) keeps the old
    :meth:`Session.run` contract: an injected evaluator instance is
    never silently dropped.
    """
    if evaluator is not None and plan.workload not in EVALUATOR_OVERRIDE_WORKLOADS:
        raise ValueError(
            f"the {plan.workload!r} workload rebuilds its evaluator from the "
            "plan's registry key and cannot honor a live evaluator "
            "override; register the evaluator "
            "(repro.registry.EVALUATORS) and name it in the plan instead"
        )


def execute_plan(
    plan: RunPlan,
    emit: Callable[[Event], None] | None = None,
    evaluator: Any = None,
    should_stop: Callable[[], bool] | None = None,
    fallback_checkpoint_dir: str | None = None,
    store: Any = None,
) -> Any:
    """Execute one plan's workload and return its result object.

    Parameters:
        plan: the declarative run description.
        emit: receives every typed progress event, in order.
        evaluator: live evaluator override (in-process paired
            workloads only; see :func:`check_evaluator_override`).
        should_stop: cooperative-cancellation poll, honored between
            trials by every search-running workload (``search``,
            ``sweep``, ``paired``, ``table1``, ``figure6``,
            ``figure7``); checkpointed runs snapshot before raising
            :class:`~repro.core.search.SearchCancelled`.  ``figure8``,
            ``ablations`` and ``report`` check only before starting.
        fallback_checkpoint_dir: checkpoint directory used when the
            plan's execution policy names none -- how the service makes
            every job durable/resumable without rewriting (and thus
            re-hashing) the submitted plan.
        store: a :class:`~repro.service.store.ResultStore` the
            campaign-backed workloads (``search``, ``sweep``) memoize
            shards through: each shard is read through the store at
            its canonical hash before running and written back after,
            so a sweep overlapping an earlier one executes only its
            novel shards (:class:`~repro.events.ShardCached` events
            mark the rest).  ``None`` disables shard memoization.

    Result types by workload: ``table1`` -> ``Table1Result``,
    ``figure6`` -> ``Figure6Result``, ``figure7`` -> ``Figure7Result``,
    ``figure8`` -> ``Figure8Result``, ``figure9`` -> ``Figure9Result``,
    ``ablations`` ->
    ``(ReuseAblationResult, PruningAblationResult)``, ``report`` -> the
    markdown text (also written to ``plan.output`` when set), ``sweep``
    -> ``CampaignResult`` (artifact written to ``plan.output`` when
    set), ``paired`` -> ``PairedSearchOutcome``, ``search`` ->
    ``SearchResult``.
    """
    check_evaluator_override(plan, evaluator)

    def publish(event: Event) -> None:
        if emit is not None:
            emit(event)

    def publish_legacy(kind: str, scope: str, message: str) -> None:
        publish(legacy_event(kind, scope, message))

    if should_stop is not None and should_stop():
        from repro.core.search import SearchCancelled

        raise SearchCancelled(0)
    workload = plan.workload
    publish(RunStarted(workload, "session started"))
    runner = _WORKLOAD_RUNNERS[workload]
    result = runner(plan, publish, publish_legacy, evaluator, should_stop,
                    fallback_checkpoint_dir, store)
    publish(RunFinished(workload, "session finished"))
    return result


# -- workload runners --------------------------------------------------------


def _run_table1(plan, publish, legacy, evaluator, should_stop,
                fallback_dir, store):
    """Table 1 workload body."""
    from repro.experiments.table1 import run_table1_plan

    return run_table1_plan(plan, evaluator=evaluator, emit=legacy,
                           should_stop=should_stop)


def _run_figure6(plan, publish, legacy, evaluator, should_stop,
                 fallback_dir, store):
    """Figure 6 workload body."""
    from repro.experiments.figure6 import run_figure6_plan

    return run_figure6_plan(plan, evaluator=evaluator, emit=legacy,
                            should_stop=should_stop)


def _run_figure7(plan, publish, legacy, evaluator, should_stop,
                 fallback_dir, store):
    """Figure 7 workload body."""
    from repro.experiments.figure7 import run_figure7_plan

    return run_figure7_plan(plan, evaluator=evaluator, emit=legacy,
                            should_stop=should_stop)


def _run_figure8(plan, publish, legacy, evaluator, should_stop,
                 fallback_dir, store):
    """Figure 8 workload body."""
    from repro.experiments.figure8 import run_figure8

    return run_figure8()


def _run_figure9(plan, publish, legacy, evaluator, should_stop,
                 fallback_dir, store):
    """Figure 9 workload body (conv-type Pareto fronts, DRAM devices)."""
    from repro.experiments.figure9 import run_figure9_plan

    return run_figure9_plan(plan, emit=legacy, should_stop=should_stop)


def _run_ablations(plan, publish, legacy, evaluator, should_stop,
                   fallback_dir, store):
    """Ablation-study workload body."""
    from repro.experiments.ablation import (
        run_pruning_ablation,
        run_reuse_ablation,
    )

    reuse = run_reuse_ablation()
    pruning = run_pruning_ablation(
        trials=plan.search.trials,
        seed=plan.search.seed,
        batch_size=plan.execution.batch_size,
    )
    return reuse, pruning


def _run_report(plan, publish, legacy, evaluator, should_stop,
                fallback_dir, store):
    """Report workload body (writes ``plan.output`` when set)."""
    from repro.experiments.report import generate_report_plan

    text = generate_report_plan(plan, emit=legacy)
    if plan.output is not None:
        Path(plan.output).write_text(text)
    return text


def _run_sweep(plan, publish, legacy, evaluator, should_stop,
               fallback_dir, store):
    """Sweep workload body: the full campaign runtime."""
    from repro.orchestration import (
        Campaign,
        plan_shards,
        save_campaign_result,
    )

    shards = plan_shards(plan)
    publish(SearchStarted(
        "sweep",
        f"{len(shards)} shard(s), "
        f"{plan.execution.shard_workers} worker(s)",
    ))
    result = Campaign(
        shards,
        checkpoint_dir=_checkpoint_dir(plan, fallback_dir),
        checkpoint_every=plan.execution.checkpoint_every,
        progress=publish,
        store=store,
        batch_trials=plan.execution.shard_batch_trials,
    ).run(max_workers=plan.execution.shard_workers, should_stop=should_stop)
    if plan.output is not None:
        save_campaign_result(result, plan.output)
    return result


def _run_paired(plan, publish, legacy, evaluator, should_stop,
                fallback_dir, store):
    """Paired NAS+FNAS workload body."""
    from repro.experiments.runner import run_paired_plan

    return run_paired_plan(plan, evaluator=evaluator, emit=legacy,
                           should_stop=should_stop)


def _run_search(plan, publish, legacy, evaluator, should_stop,
                fallback_dir, store):
    """Single-search workload body: a one-shard campaign.

    Going through :class:`~repro.orchestration.campaign.Campaign` (not
    a bare ``run_shard``) is deliberate: the shard-level event sequence
    and the checkpoint/resume/cancel behavior are then *identical* to a
    campaign running the same shard -- the golden event-stream property.
    """
    from repro.orchestration import Campaign
    from repro.orchestration.shards import ShardSpec

    spec = ShardSpec.from_plan(plan)
    outcome = Campaign(
        [spec],
        checkpoint_dir=_checkpoint_dir(plan, fallback_dir),
        checkpoint_every=plan.execution.checkpoint_every,
        progress=publish,
        store=store,
    ).run(max_workers=1, should_stop=should_stop)
    return outcome.outcomes[0].result


def _checkpoint_dir(plan: RunPlan, fallback_dir: str | None) -> str | None:
    """The plan's checkpoint directory, or the caller's fallback."""
    if plan.execution.checkpoint_dir is not None:
        return plan.execution.checkpoint_dir
    return fallback_dir


_WORKLOAD_RUNNERS = {
    "table1": _run_table1,
    "figure6": _run_figure6,
    "figure7": _run_figure7,
    "figure8": _run_figure8,
    "figure9": _run_figure9,
    "ablations": _run_ablations,
    "report": _run_report,
    "sweep": _run_sweep,
    "paired": _run_paired,
    "search": _run_search,
}
