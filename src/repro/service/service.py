"""The asynchronous job service: queue, dedupe, run, cache, cancel.

:class:`SearchService` accepts :class:`~repro.plans.RunPlan` submissions
and executes them on a bounded pool of workers:

* **priority queue** -- higher ``priority`` runs first, FIFO within a
  priority level;
* **dedup** -- submissions are keyed by the canonical
  :func:`repro.plans.plan_hash`; a plan identical to a queued/running
  one coalesces onto that job, and one identical to a stored result is
  answered from the :class:`~repro.service.store.ResultStore` as a
  byte-identical cache hit, without re-running;
* **lifecycle** -- ``queued -> running -> done | failed | cancelled``,
  every transition published on the service's typed
  :class:`~repro.events.EventBus`, recorded in the job's own event
  log, and (when the service has a journal) appended to the
  crash-consistent :class:`~repro.service.journal.JobJournal`, from
  which a restarted service re-queues unfinished work;
* **execution back-ends** -- every claimed job runs through
  :func:`~repro.service.executor.execute_plan`, either directly on the
  worker thread (``backend="thread"``, the exactness-first default) or
  in a dedicated subprocess streaming typed events back over a pipe
  (``backend="process"``, see :mod:`repro.service.workers`), which is
  what lets the serve worker count scale GIL-bound searches with cores; the
  two back-ends produce identical event sequences and byte-identical
  stored results;
* **cancellation that checkpoints** -- a cancelled running job stops
  cooperatively between trials *after* forcing a snapshot (see
  :class:`~repro.core.search.SearchCancelled`), and resubmitting the
  same plan re-queues the job, whose shards then **resume** from those
  snapshots instead of restarting.

:meth:`repro.api.Session.run` is a one-job instance of exactly this
machinery, so the service is not a parallel implementation -- it *is*
the execution engine.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.events import (
    AgentJoined,
    AgentLost,
    CacheHit,
    Event,
    EventBus,
    JobCancelled,
    JobCompleted,
    JobFailed,
    JobLeased,
    JobQueued,
    JobStarted,
    LeaseExpired,
)
from repro.plans import EXECUTION_BACKENDS, RunPlan, plan_hash
from repro.service import store as store_mod
from repro.service.executor import check_evaluator_override, execute_plan
from repro.service.journal import JOURNAL_FILENAME, JobJournal
from repro.service.store import ResultStore

#: Job lifecycle states, in rough temporal order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a submission can coalesce onto (dedup targets).
_COALESCE_STATES = ("queued", "running", "done")

#: Default lease term for agent-claimed jobs, in seconds.
DEFAULT_LEASE_SECONDS = 15.0

#: Heartbeats the coordinator expects per lease term; the advertised
#: heartbeat interval is ``lease / HEARTBEATS_PER_LEASE``, so a lease
#: expires after missing roughly this many heartbeats in a row.
HEARTBEATS_PER_LEASE = 3


class UnknownJobError(KeyError):
    """Raised when a job id does not name a job of this service."""


class UnknownAgentError(KeyError):
    """Raised when an agent id is not (or no longer) registered.

    Agents that miss enough heartbeats are deregistered, so a slow
    agent can see this on its next call -- the remedy is simply to
    re-register under the same id and re-claim work.
    """


class StaleLeaseError(RuntimeError):
    """Raised when an agent acts on a lease it no longer holds.

    Covers event uploads and completions for jobs whose lease expired
    (and possibly re-queued or finished elsewhere).  The HTTP layer
    maps it to ``409 Conflict``; agents drop the work on receipt --
    the coordinator has already arranged for the job to finish
    elsewhere, byte-identically.
    """


class RemoteJobError(RuntimeError):
    """A job failed on a remote agent; ``message`` carries the cause."""

    def __init__(self, message: str, agent: str | None = None):
        super().__init__(message)
        self.agent = agent


class JobCancelledError(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job was cancelled."""


class _Job:
    """Internal mutable job record (guarded by the service lock)."""

    def __init__(self, job_id: str, plan: RunPlan, digest: str,
                 priority: int, evaluator: Any,
                 tenant: str | None = None):
        self.id = job_id
        self.plan = plan
        self.plan_hash = digest
        self.priority = priority
        self.evaluator = evaluator
        self.tenant = tenant
        self.state = "queued"
        self.error: BaseException | None = None
        self.result_obj: Any = None
        self.result_bytes: bytes | None = None
        self.cached = False
        self.runs = 0
        self.events: list[Event] = []
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()
        #: Lease bookkeeping: the holding agent's id (None when the job
        #: runs locally or is not running), the lease term, and the
        #: monotonic deadline a heartbeat must renew before.
        self.agent: str | None = None
        self.lease_seconds: float | None = None
        self.lease_deadline: float | None = None

    def info(self) -> dict[str, Any]:
        """JSON-compatible status summary (the HTTP ``/jobs`` shape)."""
        return {
            "job_id": self.id,
            "state": self.state,
            "plan_hash": self.plan_hash,
            "workload": self.plan.workload,
            "priority": self.priority,
            "cached": self.cached,
            "runs": self.runs,
            "events": len(self.events),
            "error": None if self.error is None else repr(self.error),
            "agent": self.agent,
            "tenant": self.tenant,
        }

    def release_lease(self) -> None:
        """Clear lease fields (caller holds the service lock)."""
        self.agent = None
        self.lease_seconds = None
        self.lease_deadline = None


class _Agent:
    """Internal mutable agent record (guarded by the service lock)."""

    def __init__(self, agent_id: str, name: str, now: float):
        self.id = agent_id
        self.name = name
        self.joined_at = now
        self.last_seen = now
        #: Ids of jobs currently leased to this agent.
        self.jobs: set[str] = set()
        #: True when the record was rebuilt from the journal after a
        #: coordinator restart and the agent has not checked in yet.
        self.restored = False

    def info(self) -> dict[str, Any]:
        """JSON-compatible agent summary (the HTTP ``/agents`` shape)."""
        return {
            "agent_id": self.id,
            "name": self.name,
            "jobs": sorted(self.jobs),
            "restored": self.restored,
        }


class JobHandle:
    """The caller's view of one submitted job.

    Thin and safe to share: every accessor reads the live job record,
    so a handle obtained at submit time keeps reflecting the job as it
    progresses (and across cancel/resubmit cycles, which re-queue the
    same job).
    """

    def __init__(self, service: "SearchService", job: _Job):
        self._service = service
        self._job = job

    @property
    def job_id(self) -> str:
        """Stable job identifier (derived from the plan hash)."""
        return self._job.id

    @property
    def plan(self) -> RunPlan:
        """The submitted plan."""
        return self._job.plan

    @property
    def plan_hash(self) -> str:
        """Canonical plan hash (the store/dedup key)."""
        return self._job.plan_hash

    @property
    def state(self) -> str:
        """Current lifecycle state (one of :data:`JOB_STATES`)."""
        return self._job.state

    @property
    def cached(self) -> bool:
        """Whether the job was answered from the result store."""
        return self._job.cached

    def info(self) -> dict[str, Any]:
        """JSON-compatible status summary, read under the service lock.

        The one sanctioned way to snapshot a job's state: every field
        (state, error, run count, event count, ...) comes from a single
        locked read, so callers never observe a torn combination such
        as ``state="done"`` alongside a stale error from an earlier
        run.  The HTTP ``/jobs`` routes serve exactly this dict.
        """
        with self._service._lock:
            return self._job.info()

    def events(self, since: int = 0) -> list[Event]:
        """The job's typed event log from index ``since`` onwards."""
        with self._service._lock:
            return list(self._job.events[since:])

    def wait(self, timeout: float | None = None) -> str:
        """Block until the job reaches a terminal state; returns it.

        Waits in short slices so the main thread stays interruptible;
        on timeout the current (possibly non-terminal) state comes
        back.
        """
        deadline = None
        if timeout is not None:
            import time

            deadline = time.monotonic() + timeout
        while not self._job.done_event.is_set():
            remaining = 0.1
            if deadline is not None:
                import time

                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    break
            self._job.done_event.wait(remaining)
        return self._job.state

    def result(self, timeout: float | None = None) -> Any:
        """The job's result object (blocking).

        Raises :class:`JobCancelledError` for cancelled jobs,
        re-raises the original exception for failed ones, and
        :class:`TimeoutError` when ``timeout`` elapses first.  Cache
        hits decode the stored payload through the workload's codec.
        """
        state = self.wait(timeout)
        job = self._job
        if state == "done":
            if job.result_obj is None and job.result_bytes is not None:
                import json

                job.result_obj = store_mod.decode_result(
                    job.plan, json.loads(job.result_bytes)
                )
            return job.result_obj
        if state == "cancelled":
            raise JobCancelledError(
                f"job {job.id} was cancelled; resubmit the plan to resume"
            )
        if state == "failed":
            assert job.error is not None
            raise job.error
        raise TimeoutError(f"job {job.id} still {state} after {timeout}s")

    def result_bytes(self, timeout: float | None = None) -> bytes | None:
        """Canonical serialized result bytes (None when not cacheable).

        Byte-identical across every submission of the same plan -- the
        property the HTTP ``/result`` endpoint serves directly.
        """
        self.result(timeout)
        return self._job.result_bytes

    def stored_result_bytes(self) -> bytes | None:
        """The stored canonical bytes right now, without waiting.

        ``None`` both for unfinished jobs and for workloads without a
        result codec; the non-blocking read the HTTP ``/result`` route
        uses (under the service lock, so it never observes a partially
        applied terminal transition).
        """
        with self._service._lock:
            return self._job.result_bytes

    def cancel(self) -> str:
        """Request cancellation; returns the (possibly new) state."""
        return self._service.cancel(self.job_id)


class SearchService:
    """Bounded-worker, priority-queued, deduping plan execution service.

    Parameters:
        workers: concurrent jobs in flight at once.  Each job may
            still fan out internally per its plan's execution policy.
        store: a :class:`~repro.service.store.ResultStore` to share;
            default builds one (in-memory, or under ``store_dir``).
        store_dir: persistence directory for the default store.
        checkpoint_dir: root under which jobs whose plans name no
            checkpoint directory snapshot (per plan hash).  Without it
            such jobs run un-checkpointed, exactly as their plan says.
        cache_results: store/serve results for cacheable workloads
            (turn off to make every submit re-run).
        bus: an :class:`~repro.events.EventBus` to share; the default
            bus (exposed as :attr:`bus`) does not record history --
            per-job logs live on the jobs themselves, which keeps a
            long-lived service's footprint proportional to its jobs,
            not its event volume.
        backend: default execution back-end for jobs whose plans do
            not choose one -- ``"thread"`` runs the job on its worker
            thread (the exactness-first default), ``"process"`` on a
            long-lived worker process drawn from the service's shared
            :class:`~repro.service.pool.WorkerPool` (see
            :mod:`repro.service.workers`), which is what makes
            GIL-bound searches scale with cores.
            Jobs with a live evaluator override always run on the
            thread backend (the object cannot cross a process
            boundary).
        journal_path: crash-consistent job journal location (see
            :class:`~repro.service.journal.JobJournal`).  Defaults to
            ``journal.jsonl`` inside the store's directory when the
            store is persistent; ``None`` with an in-memory store
            disables journaling.
        recover: replay an existing journal at startup, re-queueing
            every job whose last recorded state is non-terminal (those
            jobs then resume from their per-hash checkpoints).
            Recovered job ids land in :attr:`recovered_jobs`; entries
            that no longer parse (e.g. a third-party component key not
            registered in this process) are skipped into
            :attr:`recovery_errors` instead of failing startup.  Jobs
            whose last journaled transition is a *lease* are restored
            leased -- the coordinator grants the recorded agent a
            fresh lease term of grace, so an agent that kept running
            through the coordinator outage keeps its claim (and its
            completion upload lands normally); only if the agent never
            heartbeats does the lease expire and the job re-queue.
        lease_seconds: default lease term for agent-claimed jobs
            (plans can override via
            :attr:`~repro.plans.ExecutionPolicy.lease_seconds`).  A
            lease not renewed within the term expires: the job
            re-queues and resumes elsewhere from its checkpoint, and
            the holding agent -- having effectively missed
            :data:`HEARTBEATS_PER_LEASE` heartbeats -- is presumed
            dead and deregistered.
        heartbeat_seconds: heartbeat interval advertised to agents
            (default: ``lease_seconds / HEARTBEATS_PER_LEASE``).
        tiling_cache_dir: directory of the shared on-disk tiling-memo
            tier (see :func:`repro.fpga.tiling.configure_disk_cache`).
            Defaults to ``<store>/tiling`` when the store is
            persistent and caching is on; both in-process estimation
            and every pool worker then read/write the same tier, so
            one job's layer designs warm the next job's workers.
            ``None`` with an in-memory store leaves the disk tier off.
    """

    def __init__(
        self,
        workers: int = 1,
        store: ResultStore | None = None,
        store_dir: str | None = None,
        checkpoint_dir: str | None = None,
        cache_results: bool = True,
        bus: EventBus | None = None,
        backend: str = "thread",
        journal_path: str | None = None,
        recover: bool = True,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        heartbeat_seconds: float | None = None,
        tiling_cache_dir: str | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                + ", ".join(EXECUTION_BACKENDS)
            )
        if lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        if heartbeat_seconds is not None and not (
                0 < heartbeat_seconds < lease_seconds):
            raise ValueError(
                f"heartbeat_seconds must be in (0, lease_seconds), got "
                f"{heartbeat_seconds} vs lease {lease_seconds}"
            )
        self.bus = bus if bus is not None else EventBus()
        self.store = store if store is not None else ResultStore(store_dir)
        self.checkpoint_dir = checkpoint_dir
        self.cache_results = cache_results
        self.backend = backend
        explicit_tiling_dir = tiling_cache_dir is not None
        if (tiling_cache_dir is None and cache_results
                and self.store.directory is not None):
            tiling_cache_dir = str(self.store.directory / "tiling")
        self.tiling_cache_dir = tiling_cache_dir
        if explicit_tiling_dir:
            # Only an *explicit* directory reconfigures this process's
            # own tiling memo (thread-backend jobs estimate in-process;
            # the global must not change under other services in the
            # same process).  Pool workers always get
            # self.tiling_cache_dir, derived or explicit.
            from repro.fpga.tiling import configure_disk_cache

            configure_disk_cache(tiling_cache_dir)
        #: One persistent WorkerPool for every process-backend job this
        #: service runs, created lazily on the first such job so
        #: thread-only deployments never fork anything.
        self._pool: Any = None
        self._pool_size = workers
        self._pool_lock = threading.Lock()
        self.lease_seconds = float(lease_seconds)
        self.heartbeat_seconds = (
            float(heartbeat_seconds) if heartbeat_seconds is not None
            else self.lease_seconds / HEARTBEATS_PER_LEASE
        )
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._queue: list[tuple[int, int, _Job]] = []
        self._seq = itertools.count()
        self._jobs: dict[str, _Job] = {}
        self._by_hash: dict[str, _Job] = {}
        self._agents: dict[str, _Agent] = {}
        self._agent_seq = itertools.count()
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        self._shutdown = False
        self._recovering = False
        self._job_listeners: list[Callable[[str], None]] = []
        #: Job ids re-queued from the journal at startup.
        self.recovered_jobs: list[str] = []
        #: Journal entries that could not be re-submitted, as messages.
        self.recovery_errors: list[str] = []
        if journal_path is None and self.store.directory is not None:
            journal_path = str(self.store.directory / JOURNAL_FILENAME)
        self._journal: JobJournal | None = None
        if journal_path is not None:
            pending = []
            if recover and Path(journal_path).exists():
                pending = JobJournal.pending_jobs(
                    JobJournal.replay(journal_path)
                )
            self._journal = JobJournal(journal_path)
            if pending:
                # Workers are not running yet, so recovery submissions
                # simply queue up (and re-journal themselves).
                self._recover(pending)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"search-service-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission / lookup -------------------------------------------------

    def submit(self, plan: RunPlan, priority: int = 0,
               evaluator: Any = None,
               tenant: str | None = None) -> JobHandle:
        """Queue a plan for execution; returns its :class:`JobHandle`.

        Dedup semantics (all keyed on the canonical plan hash, skipped
        when a live ``evaluator`` override makes the job
        un-addressable):

        * stored result -> an already-``done`` job answered from the
          cache (:class:`~repro.events.CacheHit`), byte-identical to
          the original;
        * identical plan queued/running/done -> the same job (and the
          same handle semantics);
        * identical plan previously ``cancelled``/``failed`` -> the job
          is re-queued, and its shards resume from their checkpoints.

        ``tenant`` attributes the job to a named tenant (the HTTP
        front ends pass the authenticated tenant's name): it lands in
        the job's :meth:`~JobHandle.info`, the journal's ``queued``
        entry (so accounting survives restarts) and the per-tenant
        queue-depth metrics.  A job keeps its original tenant across
        dedup coalescing and cancel/resubmit cycles.
        """
        check_evaluator_override(plan, evaluator)
        digest = plan_hash(plan)
        to_publish: list[Event] = []
        try:
            with self._lock:
                if self._shutdown:
                    raise RuntimeError("service is shut down")
                if evaluator is None:
                    existing = self._by_hash.get(digest)
                    if (existing is not None
                            and existing.state in _COALESCE_STATES):
                        return JobHandle(self, existing)
                    cached = (
                        self.store.get_bytes(digest)
                        if self.cache_results and store_mod.is_cacheable(plan)
                        else None
                    )
                    if cached is not None:
                        job = existing
                        if job is None:
                            job = _Job(self._job_id(digest, evaluator=None),
                                       plan, digest, priority, None,
                                       tenant=tenant)
                            self._register(job)
                        job.state = "done"
                        job.cached = True
                        job.result_bytes = cached
                        job.result_obj = None
                        job.error = None
                        job.done_event.set()
                        self._journal_record("done", job)
                        to_publish = self._record(job, [
                            CacheHit(
                                job.id, "identical plan already solved; "
                                "returning stored result", plan_hash=digest),
                            JobCompleted(
                                job.id, "served from the result store",
                                plan_hash=digest),
                        ])
                        return JobHandle(self, job)
                    if existing is not None:
                        # cancelled / failed: resubmit re-queues the same
                        # job; checkpoints written before cancellation make
                        # the re-run a resume.  The job log entry lands
                        # *before* the job becomes visible to workers, so
                        # JobQueued always precedes JobStarted in it.
                        job = existing
                        job.state = "queued"
                        job.priority = priority
                        job.error = None
                        if job.tenant is None:
                            job.tenant = tenant
                        job.cancel_event.clear()
                        job.done_event.clear()
                        self._journal_record("queued", job, with_plan=True)
                        to_publish = self._record(job, [JobQueued(
                            job.id, self._queued_message(
                                "resubmitted; checkpointed shards will "
                                "resume"),
                            plan_hash=digest)])
                        self._enqueue(job)
                        return JobHandle(self, job)
                job = _Job(self._job_id(digest, evaluator), plan, digest,
                           priority, evaluator, tenant=tenant)
                self._register(job)
                self._journal_record("queued", job, with_plan=True)
                to_publish = self._record(job, [JobQueued(
                    job.id,
                    self._queued_message(f"queued at priority {priority}"),
                    plan_hash=digest)])
                self._enqueue(job)
                return JobHandle(self, job)
        finally:
            for event in to_publish:
                self.bus.publish(event)

    def job(self, job_id: str) -> JobHandle:
        """Look a job up by id."""
        with self._lock:
            job = self._jobs.get(job_id)
            known = sorted(self._jobs)
        if job is None:
            listing = ", ".join(known) if known else "(no jobs submitted yet)"
            raise UnknownJobError(f"unknown job {job_id!r}; known: {listing}")
        return JobHandle(self, job)

    def jobs(self) -> list[JobHandle]:
        """Handles for every job, in submission order."""
        with self._lock:
            return [JobHandle(self, j) for j in self._jobs.values()]

    def job_by_hash(self, digest: str) -> JobHandle | None:
        """The hash-addressable job for ``digest``, or ``None``.

        What the front ends use to recognise a dedup-coalescing submit
        before admission control runs: a resubmission of a plan the
        service already tracks adds no load, so quota/backpressure
        gates wave it through.
        """
        with self._lock:
            job = self._by_hash.get(digest)
            return None if job is None else JobHandle(self, job)

    def tenant_load(self, tenant: str | None) -> dict[str, int]:
        """One tenant's current ``{"queued": n, "running": n}`` load.

        Read under the service lock; the admission gates in the HTTP
        front ends compare these counts against the tenant's quotas
        and feed the queued+running sum into the fair-share priority.
        """
        queued = running = 0
        with self._lock:
            for job in self._jobs.values():
                if job.tenant != tenant:
                    continue
                if job.state == "queued":
                    queued += 1
                elif job.state == "running":
                    running += 1
        return {"queued": queued, "running": running}

    def queued_count(self) -> int:
        """How many jobs are queued right now (backpressure input)."""
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.state == "queued")

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns its state after the request.

        Queued jobs cancel immediately.  Running search-driven jobs
        (``search``, ``sweep``, ``paired``, ``table1``, ``figure6``,
        ``figure7``) stop cooperatively at the next trial boundary,
        snapshotting first when checkpointing is configured (the worker
        then publishes :class:`~repro.events.JobCancelled`); the
        remaining workloads (``figure8``, ``ablations``, ``report``)
        poll only before starting and otherwise run to completion.
        Terminal jobs are left untouched.
        """
        handle = self.job(job_id)
        job = handle._job
        to_publish: list[Event] = []
        with self._lock:
            if job.state == "queued":
                job.state = "cancelled"
                job.cancel_event.set()
                job.done_event.set()
                self._journal_record("cancelled", job)
                to_publish = self._record(job, [JobCancelled(
                    job.id, "cancelled while queued",
                    plan_hash=job.plan_hash)])
            elif job.state == "running":
                job.cancel_event.set()
        for event in to_publish:
            self.bus.publish(event)
        return job.state

    # -- federation: agents and leases ---------------------------------------

    def register_agent(self, name: str | None = None,
                       agent_id: str | None = None) -> dict[str, Any]:
        """Register (or re-register) a worker agent; returns its terms.

        Agents pick their own stable ``agent_id`` when they have one --
        re-registration after a network partition or coordinator
        restart is idempotent and revives any lease the journal
        restored to that id.  The returned dict carries the id plus the
        lease/heartbeat terms the agent must honor.
        """
        now = time.monotonic()
        to_publish: list[Event] = []
        with self._lock:
            if self._shutdown:
                raise RuntimeError("service is shut down")
            if agent_id is None:
                agent_id = f"agent-{name or 'worker'}-{next(self._agent_seq)}"
            agent = self._agents.get(agent_id)
            if agent is None:
                agent = _Agent(agent_id, name or agent_id, now)
                self._agents[agent_id] = agent
                to_publish.append(AgentJoined(
                    agent_id, f"agent {agent.name!r} joined",
                    name=agent.name))
            agent.last_seen = now
            agent.restored = False
        self._ensure_monitor()
        for event in to_publish:
            self.bus.publish(event)
        return {
            "agent_id": agent_id,
            "lease_seconds": self.lease_seconds,
            "heartbeat_seconds": self.heartbeat_seconds,
        }

    def deregister_agent(self, agent_id: str,
                         reason: str = "agent left") -> None:
        """Remove an agent; its leases expire (jobs re-queue) at once."""
        to_publish: list[Event] = []
        with self._lock:
            agent = self._agents.pop(agent_id, None)
            if agent is None:
                return
            to_publish.append(AgentLost(
                agent_id, f"agent {agent.name!r} removed: {reason}",
                name=agent.name))
            for job_id in sorted(agent.jobs):
                job = self._jobs.get(job_id)
                if job is not None and job.agent == agent_id:
                    to_publish.extend(
                        self._expire_lease(job, f"agent removed: {reason}")
                    )
            agent.jobs.clear()
            # Local workers may need to take over the re-queued work.
            self._work_ready.notify_all()
        for event in to_publish:
            self.bus.publish(event)

    def agents(self) -> list[dict[str, Any]]:
        """Registered agents' summaries, in registration order."""
        with self._lock:
            return [agent.info() for agent in self._agents.values()]

    def claim_job(self, agent_id: str) -> dict[str, Any] | None:
        """Lease the next hash-addressable queued job to an agent.

        Returns ``None`` when nothing is claimable, else a JSON-ready
        job descriptor: the job id, canonical plan document, plan
        hash, the lease/heartbeat terms for *this* job (plans can
        override the service defaults), the checkpoint directory the
        execution must snapshot under (shared-filesystem contract --
        failover resumes from it), and the execution backend to use.
        Claiming also counts as a heartbeat for the agent itself.
        """
        now = time.monotonic()
        to_publish: list[Event] = []
        with self._lock:
            agent = self._require_agent(agent_id)
            agent.last_seen = now
            job = None if self._shutdown else self._pop_queued(remote=True)
            if job is None:
                return None
            term = (job.plan.execution.lease_seconds or self.lease_seconds)
            heartbeat = job.plan.execution.heartbeat_seconds or min(
                self.heartbeat_seconds, term / HEARTBEATS_PER_LEASE
            )
            job.state = "running"
            job.runs += 1
            job.agent = agent_id
            job.lease_seconds = float(term)
            job.lease_deadline = now + float(term)
            agent.jobs.add(job.id)
            if self._journal is not None and job.evaluator is None:
                self._journal.record(
                    "leased", job.plan_hash, job.id, agent=agent_id,
                    lease_seconds=float(term),
                )
            to_publish = self._record(job, [
                JobLeased(job.id,
                          f"leased to agent {agent_id} for {term:g}s",
                          plan_hash=job.plan_hash, agent=agent_id,
                          lease_seconds=float(term)),
                JobStarted(job.id, f"run {job.runs} started (agent "
                           f"{agent_id})", plan_hash=job.plan_hash),
            ])
            descriptor = {
                "job_id": job.id,
                "plan": job.plan.to_dict(),
                "plan_hash": job.plan_hash,
                "lease_seconds": float(term),
                "heartbeat_seconds": float(heartbeat),
                "checkpoint_dir": self._effective_checkpoint_dir(job),
                "backend": job.plan.execution.backend,
                "store_dir": self._shared_store_dir(),
            }
        for event in to_publish:
            self.bus.publish(event)
        return descriptor

    def heartbeat(self, agent_id: str,
                  jobs: list[str] | tuple[str, ...] = ()) -> dict[str, Any]:
        """Renew an agent's liveness and its listed jobs' leases.

        Returns directives for the agent: ``lost`` names jobs it no
        longer holds (expired and re-queued elsewhere -- stop working
        on them), ``cancel`` names leased jobs whose cancellation was
        requested (stop cooperatively, checkpointing first).  Unknown
        agents raise :class:`UnknownAgentError`; the agent's remedy is
        to re-register under the same id.
        """
        now = time.monotonic()
        with self._lock:
            agent = self._require_agent(agent_id)
            agent.last_seen = now
            agent.restored = False
            lost: list[str] = []
            cancel: list[str] = []
            for job_id in jobs:
                job = self._jobs.get(job_id)
                if (job is None or job.agent != agent_id
                        or job.state != "running"):
                    lost.append(job_id)
                    continue
                assert job.lease_seconds is not None
                job.lease_deadline = now + job.lease_seconds
                if job.cancel_event.is_set():
                    cancel.append(job_id)
            return {"lost": lost, "cancel": cancel}

    def record_agent_events(self, agent_id: str, job_id: str,
                            events: list[Event]) -> int:
        """Append events an agent streamed for a job it holds.

        The remote twin of the in-process ``emit`` callback: events
        land in the job's ordered log and on the bus, exactly where
        local execution would have put them.  Raises
        :class:`StaleLeaseError` when the agent no longer holds the
        job's lease (the events are dropped -- the job's next holder
        will re-emit them while resuming).
        """
        with self._lock:
            job = self._require_lease(agent_id, job_id)
            to_publish = self._record(job, list(events))
        for event in to_publish:
            self.bus.publish(event)
        return len(to_publish)

    def complete_job(
        self,
        agent_id: str,
        job_id: str,
        outcome: str,
        payload: dict[str, Any] | None = None,
        message: str | None = None,
        completed: int = 0,
    ) -> dict[str, Any]:
        """Apply a remote job's terminal outcome under its lease.

        ``outcome`` is ``"done"`` (with the canonical result
        ``payload`` for cacheable workloads, stored content-addressed
        exactly as local execution stores it), ``"failed"`` (with the
        error ``message``) or ``"cancelled"`` (with the count of
        ``completed`` units).  Raises :class:`StaleLeaseError` when
        the lease is gone -- the upload is discarded; whoever holds
        the job now will finish it byte-identically.  Returns the
        job's post-transition info dict.
        """
        if outcome not in ("done", "failed", "cancelled"):
            raise ValueError(
                f"unknown outcome {outcome!r}; expected done, failed or "
                "cancelled"
            )
        to_publish: list[Event] = []
        with self._lock:
            job = self._require_lease(agent_id, job_id)
            agent = self._agents.get(agent_id)
            if agent is not None:
                agent.last_seen = time.monotonic()
                agent.jobs.discard(job_id)
            job.release_lease()
            if outcome == "done":
                result_bytes = None
                cacheable = store_mod.is_cacheable(job.plan)
                if cacheable and self.cache_results and payload is not None:
                    result_bytes = self.store.put(job.plan_hash, payload)
                to_publish = self._terminalize(
                    job, "done",
                    JobCompleted(job.id, f"completed (agent {agent_id})",
                                 plan_hash=job.plan_hash),
                    result_bytes=result_bytes,
                )
            elif outcome == "failed":
                error = RemoteJobError(
                    message or "job failed on remote agent", agent=agent_id
                )
                to_publish = self._terminalize(
                    job, "failed",
                    JobFailed(job.id, f"{message or 'remote failure'} "
                              f"(agent {agent_id})",
                              plan_hash=job.plan_hash),
                    error=error,
                )
            else:
                to_publish = self._terminalize(
                    job, "cancelled",
                    JobCancelled(
                        job.id,
                        f"cancelled after {completed} completed unit(s) on "
                        f"agent {agent_id}; checkpoints (if configured) "
                        "preserved",
                        plan_hash=job.plan_hash),
                )
            info = job.info()
        for event in to_publish:
            self.bus.publish(event)
        return info

    def _require_agent(self, agent_id: str) -> _Agent:
        """The agent record, or :class:`UnknownAgentError` (lock held)."""
        agent = self._agents.get(agent_id)
        if agent is None:
            raise UnknownAgentError(
                f"unknown agent {agent_id!r}; (re-)register first"
            )
        return agent

    def _require_lease(self, agent_id: str, job_id: str) -> _Job:
        """The job iff leased to the agent, else raise (lock held)."""
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        if job.agent != agent_id or job.state != "running":
            raise StaleLeaseError(
                f"agent {agent_id} does not hold the lease on job "
                f"{job_id} (state {job.state!r}, holder {job.agent!r}); "
                "the lease expired -- drop the work"
            )
        return job

    def _effective_checkpoint_dir(self, job: _Job) -> str | None:
        """Where the job's execution snapshots (plan's own dir wins)."""
        if job.plan.execution.checkpoint_dir is not None:
            return job.plan.execution.checkpoint_dir
        return self._job_checkpoint_dir(job)

    def _expire_lease(self, job: _Job, reason: str) -> list[Event]:
        """Reclaim one lease and re-queue its job (lock held).

        Returns the events to publish after the lock drops.  The job
        goes back to ``queued`` (journaled ``lease-expired`` then
        ``queued``), so the next claimant -- another agent, or a local
        worker once no live agents remain -- resumes it from its
        per-hash checkpoint.
        """
        agent_id = job.agent or ""
        job.release_lease()
        job.state = "queued"
        if self._journal is not None and job.evaluator is None:
            self._journal.record(
                "lease-expired", job.plan_hash, job.id, agent=agent_id
            )
        self._journal_record("queued", job, with_plan=True)
        events = self._record(job, [
            LeaseExpired(job.id,
                         f"lease held by agent {agent_id} expired: {reason}",
                         plan_hash=job.plan_hash, agent=agent_id),
            JobQueued(job.id,
                      f"lease expired; re-queued to resume from its "
                      f"checkpoint (was agent {agent_id})",
                      plan_hash=job.plan_hash),
        ])
        self._enqueue(job)
        return events

    def _ensure_monitor(self) -> None:
        """Start the lease/liveness monitor thread (idempotent)."""
        with self._lock:
            if self._monitor is not None or self._shutdown:
                return
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="search-service-leases",
                daemon=True,
            )
            self._monitor.start()

    def _monitor_loop(self) -> None:
        """Expire overdue leases and presumed-dead agents periodically."""
        interval = max(0.02, min(1.0, self.lease_seconds / 10.0))
        while not self._monitor_stop.wait(interval):
            self._expire_overdue()

    def _expire_overdue(self) -> None:
        """One monitor sweep: lost agents first, then overdue leases."""
        now = time.monotonic()
        to_publish: list[Event] = []
        with self._lock:
            for agent_id in list(self._agents):
                agent = self._agents[agent_id]
                if now - agent.last_seen <= self.lease_seconds:
                    continue
                del self._agents[agent_id]
                to_publish.append(AgentLost(
                    agent_id,
                    f"agent {agent.name!r} missed its heartbeats "
                    f"(last seen {now - agent.last_seen:.1f}s ago); "
                    "presumed dead", name=agent.name))
                for job_id in sorted(agent.jobs):
                    job = self._jobs.get(job_id)
                    if job is not None and job.agent == agent_id:
                        to_publish.extend(self._expire_lease(
                            job, "holding agent presumed dead"))
            for job in self._jobs.values():
                if (job.state == "running" and job.agent is not None
                        and job.lease_deadline is not None
                        and job.lease_deadline < now):
                    agent = self._agents.get(job.agent)
                    if agent is not None:
                        agent.jobs.discard(job.id)
                    to_publish.extend(self._expire_lease(
                        job, "no heartbeat within the lease term"))
            if to_publish:
                # Re-queued work may need the local workers.
                self._work_ready.notify_all()
        for event in to_publish:
            self.bus.publish(event)

    def shutdown(self, wait: bool = True, cancel_running: bool = False) -> None:
        """Stop accepting work and wind the worker pool down.

        Queued jobs are cancelled.  Running jobs finish normally unless
        ``cancel_running`` asks them to stop cooperatively.  With
        ``wait`` the call joins every worker thread (and the lease
        monitor, when one started).
        """
        to_publish: list[Event] = []
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            self._monitor_stop.set()
            monitor = self._monitor
            while self._queue:
                _, _, job = heapq.heappop(self._queue)
                if job.state == "queued":
                    job.state = "cancelled"
                    job.cancel_event.set()
                    job.done_event.set()
                    self._journal_record("cancelled", job)
                    to_publish.extend(self._record(job, [JobCancelled(
                        job.id, "service shut down while queued",
                        plan_hash=job.plan_hash)]))
            if cancel_running:
                for job in self._jobs.values():
                    if job.state == "running":
                        job.cancel_event.set()
            self._work_ready.notify_all()
        for event in to_publish:
            self.bus.publish(event)
        if wait:
            for thread in self._workers:
                thread.join()
            if monitor is not None:
                monitor.join()
            # Workers are done: their terminal entries have landed, so
            # the journal can close (a non-waiting shutdown leaves it
            # open for the still-running workers).
            if self._journal is not None:
                self._journal.close()
            # Every worker thread has drained its in-flight job, so
            # the process pool (if one was ever built) is idle.
            with self._pool_lock:
                pool, self._pool = self._pool, None
            if pool is not None:
                pool.close()
        self.bus.close()

    def __enter__(self) -> "SearchService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit shuts the service down (waiting)."""
        self.shutdown(wait=True)

    # -- internals -----------------------------------------------------------

    def _job_id(self, digest: str, evaluator: Any) -> str:
        """Derive a job id: hash-based, unique for un-addressable jobs."""
        base = f"j-{digest[:12]}"
        if evaluator is None:
            return base
        return f"{base}-live{next(self._seq)}"

    def _register(self, job: _Job) -> None:
        self._jobs[job.id] = job
        if job.evaluator is None:
            self._by_hash[job.plan_hash] = job

    def _enqueue(self, job: _Job) -> None:
        heapq.heappush(self._queue, (-job.priority, next(self._seq), job))
        self._work_ready.notify()

    def _record(self, job: _Job, events: list[Event]) -> list[Event]:
        """Append events to the job's log (caller holds the lock).

        Returns the events so the caller can publish them to the bus
        *after* releasing the lock -- the job log is therefore ordered
        even when a worker races the tail of ``submit``, and bus
        subscribers can never deadlock the service by calling back in.
        """
        job.events.extend(events)
        if events:
            self._notify_job(job.id)
        return list(events)

    def _publish(self, job: _Job, event: Event) -> None:
        """Log one event under the lock, then deliver it to the bus."""
        with self._lock:
            job.events.append(event)
            self._notify_job(job.id)
        self.bus.publish(event)

    def add_job_listener(self, callback: Callable[[str], None]
                         ) -> Callable[[str], None]:
        """Register a per-job event-log notifier; returns ``callback``.

        ``callback(job_id)`` fires every time events are appended to
        that job's log -- lifecycle transitions *and* in-flight shard
        events, which plain bus subscription cannot attribute to a job.
        The async gateway's SSE/long-poll fanout hangs off this hook.

        The callback runs on service worker threads, sometimes under
        the service lock: it must be cheap, must never block, and must
        never call back into the service (hand off to another thread or
        an event loop instead, e.g. ``loop.call_soon_threadsafe``).
        Exceptions it raises are swallowed.
        """
        with self._lock:
            self._job_listeners.append(callback)
        return callback

    def remove_job_listener(self, callback: Callable[[str], None]) -> None:
        """Deregister a listener added by :meth:`add_job_listener`."""
        with self._lock:
            try:
                self._job_listeners.remove(callback)
            except ValueError:
                pass

    def _notify_job(self, job_id: str) -> None:
        """Fire job listeners (callers may or may not hold the lock)."""
        for callback in list(self._job_listeners):
            try:
                callback(job_id)
            except Exception:  # noqa: BLE001 - listeners must not kill workers
                pass

    def _journal_record(
        self, op: str, job: _Job, with_plan: bool = False
    ) -> None:
        """Append one journal transition (caller holds the lock).

        Only hash-addressable jobs are journaled -- a live evaluator
        override cannot be rebuilt from the plan document, so such
        jobs are (deliberately) not recoverable.
        """
        if self._journal is None or job.evaluator is not None:
            return
        self._journal.record(
            op, job.plan_hash, job.id,
            priority=job.priority if with_plan else None,
            plan_doc=job.plan.to_dict() if with_plan else None,
            tenant=job.tenant if with_plan else None,
        )

    def _queued_message(self, base: str) -> str:
        """The JobQueued message, marked during journal recovery."""
        if self._recovering:
            return f"{base} (recovered from journal)"
        return base

    def _recover(self, pending: list) -> None:
        """Re-queue journal-recovered submissions (startup only).

        Plain non-terminal jobs re-submit (and re-queue); jobs whose
        last transition was a lease claim are restored *leased* to the
        recorded agent with a fresh term of grace, so an agent that
        outlived the coordinator keeps its claim -- see
        :meth:`_restore_lease`.
        """
        self._recovering = True
        try:
            for item in pending:
                try:
                    plan = RunPlan.from_dict(item.plan_doc)
                    if item.last_state == "leased" and item.agent:
                        handle = self._restore_lease(plan, item)
                    else:
                        handle = self.submit(plan, priority=item.priority,
                                             tenant=item.tenant)
                except (KeyError, ValueError, TypeError) as exc:
                    self.recovery_errors.append(
                        f"journal entry {item.plan_hash[:12]}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                else:
                    self.recovered_jobs.append(handle.job_id)
        finally:
            self._recovering = False

    def _restore_lease(self, plan: RunPlan, item: Any) -> JobHandle:
        """Rebuild one leased job + its agent record from the journal.

        The job comes back ``running`` with its lease intact (fresh
        deadline), the agent record comes back marked ``restored``, and
        the claim is re-journaled so a second crash still knows.  If
        the agent never heartbeats again the normal expiry path takes
        over: the lease expires, the job re-queues, and it resumes
        elsewhere from its checkpoint.
        """
        digest = plan_hash(plan)
        now = time.monotonic()
        term = (
            item.lease_seconds
            or plan.execution.lease_seconds
            or self.lease_seconds
        )
        to_publish: list[Event] = []
        with self._lock:
            job = _Job(self._job_id(digest, evaluator=None), plan, digest,
                       item.priority, None, tenant=item.tenant)
            self._register(job)
            job.state = "running"
            job.runs = 1
            job.agent = item.agent
            job.lease_seconds = float(term)
            job.lease_deadline = now + float(term)
            agent = self._agents.get(item.agent)
            if agent is None:
                agent = _Agent(item.agent, item.agent, now)
                agent.restored = True
                self._agents[item.agent] = agent
            agent.jobs.add(job.id)
            self._journal_record("queued", job, with_plan=True)
            if self._journal is not None:
                self._journal.record(
                    "leased", job.plan_hash, job.id, agent=item.agent,
                    lease_seconds=float(term),
                )
            to_publish = self._record(job, [
                JobQueued(job.id, self._queued_message(
                    "lease restored; awaiting the agent's heartbeat"),
                    plan_hash=digest),
                JobLeased(job.id,
                          f"lease restored to agent {item.agent} from the "
                          f"journal ({term:g}s grace)",
                          plan_hash=digest, agent=item.agent,
                          lease_seconds=float(term)),
            ])
        self._ensure_monitor()
        for event in to_publish:
            self.bus.publish(event)
        return JobHandle(self, job)

    def _backend_for(self, job: _Job) -> str:
        """The execution back-end this job runs on.

        The plan's :attr:`~repro.plans.ExecutionPolicy.backend` wins
        when set; otherwise the service default applies.  Jobs carrying
        a live evaluator override always run on the thread backend --
        the object cannot cross a process boundary.
        """
        if job.evaluator is not None:
            return "thread"
        return job.plan.execution.backend or self.backend

    def _pop_queued(self, remote: bool = False) -> "_Job | None":
        """Pop the next claimable queued job (caller holds the lock).

        Stale heap entries (jobs cancelled while queued) are discarded
        in passing.  ``remote`` claims skip jobs carrying a live
        evaluator override -- those cannot cross the wire and stay
        queued for the local workers.
        """
        kept: list[tuple[int, int, _Job]] = []
        found: _Job | None = None
        while self._queue:
            entry = heapq.heappop(self._queue)
            job = entry[2]
            if job.state != "queued":
                continue
            if remote and job.evaluator is not None:
                kept.append(entry)
                continue
            found = job
            break
        for entry in kept:
            heapq.heappush(self._queue, entry)
        return found

    def _claim_local(self) -> "_Job | None":
        """Pop the next job a *local* worker may run (lock held).

        While agents are registered the local workers yield the queue
        to them -- remote execution is strictly more parallel -- except
        for live-evaluator jobs, which cannot cross a process boundary
        and therefore always run locally.  With zero agents (none ever
        joined, or all were lost) the service degrades gracefully to
        plain local execution, exactly the pre-federation behavior.
        """
        if not self._agents:
            return self._pop_queued()
        kept: list[tuple[int, int, _Job]] = []
        found: _Job | None = None
        while self._queue:
            entry = heapq.heappop(self._queue)
            job = entry[2]
            if job.state != "queued":
                continue
            if job.evaluator is None:
                kept.append(entry)
                continue
            found = job
            break
        for entry in kept:
            heapq.heappush(self._queue, entry)
        return found

    def _worker_loop(self) -> None:
        while True:
            with self._work_ready:
                while True:
                    job = self._claim_local()
                    if job is not None or self._shutdown:
                        break
                    self._work_ready.wait()
                if job is None:
                    return  # shutdown with nothing locally runnable
                job.state = "running"
                job.runs += 1
                self._journal_record("running", job)
                started = self._record(job, [JobStarted(
                    job.id, f"run {job.runs} started",
                    plan_hash=job.plan_hash)])
            for event in started:
                self.bus.publish(event)
            self._execute(job)

    def _execute(self, job: _Job) -> None:
        from repro.core.search import SearchCancelled

        backend = self._backend_for(job)
        try:
            payload = None
            if backend == "process":
                from repro.service.workers import run_job_in_process

                result, payload = run_job_in_process(
                    job.plan,
                    emit=lambda event: self._publish(job, event),
                    cancel_requested=job.cancel_event.is_set,
                    fallback_checkpoint_dir=self._job_checkpoint_dir(job),
                    store_dir=self._shared_store_dir(),
                    pool=self._get_pool(),
                    tiling_dir=self.tiling_cache_dir,
                )
            else:
                result = execute_plan(
                    job.plan,
                    emit=lambda event: self._publish(job, event),
                    evaluator=job.evaluator,
                    should_stop=job.cancel_event.is_set,
                    fallback_checkpoint_dir=self._job_checkpoint_dir(job),
                    store=self._memo_store(job),
                )
        except SearchCancelled as exc:
            self._finish(job, "cancelled", JobCancelled(
                job.id,
                f"cancelled after {exc.completed} completed unit(s); "
                "checkpoints (if configured) preserved",
                plan_hash=job.plan_hash))
        except BaseException as exc:  # noqa: BLE001 -- workers must survive
            self._finish(job, "failed", JobFailed(
                job.id, f"{type(exc).__name__}: {exc}",
                plan_hash=job.plan_hash), error=exc)
        else:
            try:
                cacheable = (job.evaluator is None
                             and store_mod.is_cacheable(job.plan))
                result_bytes = None
                if cacheable and self.cache_results:
                    if payload is None:
                        payload = store_mod.encode_result(job.plan, result)
                    result_bytes = self.store.put(job.plan_hash, payload)
                if result is None and payload is not None:
                    # Process backend: the payload crossed the pipe
                    # unscrubbed, so decoding here hands the caller the
                    # same live object (real wall_seconds included) the
                    # thread backend would have -- backend parity covers
                    # handle.result(), not just the stored bytes.
                    result = store_mod.decode_result(job.plan, payload)
            except BaseException as exc:  # noqa: BLE001 - must terminate
                # encode/put/decode failures (disk full, codec bug) must
                # still land the job in a terminal state: leaving it
                # 'running' would hang every waiter and kill the worker.
                self._finish(job, "failed", JobFailed(
                    job.id,
                    f"result post-processing failed: "
                    f"{type(exc).__name__}: {exc}",
                    plan_hash=job.plan_hash), error=exc)
            else:
                self._finish(job, "done", JobCompleted(
                    job.id, "completed", plan_hash=job.plan_hash),
                    result_obj=result, result_bytes=result_bytes)

    def _finish(
        self,
        job: _Job,
        state: str,
        event: Event,
        error: BaseException | None = None,
        result_obj: Any = None,
        result_bytes: bytes | None = None,
    ) -> None:
        """Apply a terminal transition atomically, then publish it.

        All job fields change under the service lock (so
        :meth:`JobHandle.info` snapshots are never torn), the journal
        entry lands in the same critical section, and the bus sees the
        event only after the lock is released.
        """
        with self._lock:
            events = self._terminalize(
                job, state, event, error=error, result_obj=result_obj,
                result_bytes=result_bytes,
            )
        for item in events:
            self.bus.publish(item)

    def _terminalize(
        self,
        job: _Job,
        state: str,
        event: Event,
        error: BaseException | None = None,
        result_obj: Any = None,
        result_bytes: bytes | None = None,
    ) -> list[Event]:
        """Land a terminal transition (caller holds the lock).

        The lock-held core of :meth:`_finish`, shared with
        :meth:`complete_job` so a remote completion can verify the
        lease and apply the transition in one critical section (no
        window for the monitor to expire the lease in between).
        Returns the events for the caller to publish after unlocking.
        """
        job.state = state
        job.error = error
        job.result_obj = result_obj
        job.result_bytes = (
            result_bytes if result_bytes is not None else job.result_bytes
        )
        if state != "done":
            job.result_obj = None
        self._journal_record(state, job)
        events = self._record(job, [event])
        job.done_event.set()
        return events

    def _job_checkpoint_dir(self, job: _Job) -> str | None:
        """Service-level checkpoint fallback, keyed by plan hash."""
        if self.checkpoint_dir is None:
            return None
        import os

        return os.path.join(self.checkpoint_dir, job.plan_hash)

    def _memo_store(self, job: _Job) -> Any:
        """The store thread-backend jobs memoize shards through.

        ``None`` (memoization off) when result caching is disabled or
        the job carries a live evaluator override -- an injected
        evaluator can change shard results, so serving another run's
        cached shards for it would be wrong.
        """
        if not self.cache_results or job.evaluator is not None:
            return None
        return self.store

    def _shared_store_dir(self) -> str | None:
        """The persistent store directory, for out-of-process workers.

        A live store handle cannot cross a process boundary, so the
        process backend and remote agents get the directory path and
        rebuild a :class:`~repro.service.store.ResultStore` on it --
        the same shared-filesystem contract as the checkpoint
        directory.  ``None`` when caching is disabled or the store is
        in-memory only (nothing durable to share).
        """
        if not self.cache_results or self.store.directory is None:
            return None
        return str(self.store.directory)

    def _get_pool(self) -> Any:
        """The service's persistent :class:`WorkerPool` (lazily built).

        Sized to the service's worker-thread count: each thread runs
        at most one process-backend job at a time, so ``workers``
        pool slots can never starve a thread.
        """
        from repro.service.pool import WorkerPool

        with self._pool_lock:
            if self._pool is None:
                self._pool = WorkerPool(self._pool_size,
                                        name="search-service")
            return self._pool

    def pool_stats(self) -> dict[str, int]:
        """Worker-pool counters for ``/metrics`` (zeros before first use)."""
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return {
                "pool.dispatch": 0,
                "worker.reuse": 0,
                "worker.spawn": 0,
                "worker.death": 0,
                "workers.alive": 0,
            }
        return pool.stats()
