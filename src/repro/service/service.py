"""The asynchronous job service: queue, dedupe, run, cache, cancel.

:class:`SearchService` accepts :class:`~repro.plans.RunPlan` submissions
and executes them on a bounded pool of worker threads (each worker may
itself fan out across process pools via the campaign runtime -- the
thread is the *job* unit, not the *compute* unit):

* **priority queue** -- higher ``priority`` runs first, FIFO within a
  priority level;
* **dedup** -- submissions are keyed by the canonical
  :func:`repro.plans.plan_hash`; a plan identical to a queued/running
  one coalesces onto that job, and one identical to a stored result is
  answered from the :class:`~repro.service.store.ResultStore` as a
  byte-identical cache hit, without re-running;
* **lifecycle** -- ``queued -> running -> done | failed | cancelled``,
  every transition published on the service's typed
  :class:`~repro.events.EventBus` and recorded in the job's own event
  log;
* **cancellation that checkpoints** -- a cancelled running job stops
  cooperatively between trials *after* forcing a snapshot (see
  :class:`~repro.core.search.SearchCancelled`), and resubmitting the
  same plan re-queues the job, whose shards then **resume** from those
  snapshots instead of restarting.

:meth:`repro.api.Session.run` is a one-job instance of exactly this
machinery, so the service is not a parallel implementation -- it *is*
the execution engine.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any

from repro.events import (
    CacheHit,
    Event,
    EventBus,
    JobCancelled,
    JobCompleted,
    JobFailed,
    JobQueued,
    JobStarted,
)
from repro.plans import RunPlan, plan_hash
from repro.service import store as store_mod
from repro.service.executor import check_evaluator_override, execute_plan
from repro.service.store import ResultStore

#: Job lifecycle states, in rough temporal order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a submission can coalesce onto (dedup targets).
_COALESCE_STATES = ("queued", "running", "done")


class UnknownJobError(KeyError):
    """Raised when a job id does not name a job of this service."""


class JobCancelledError(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job was cancelled."""


class _Job:
    """Internal mutable job record (guarded by the service lock)."""

    def __init__(self, job_id: str, plan: RunPlan, digest: str,
                 priority: int, evaluator: Any):
        self.id = job_id
        self.plan = plan
        self.plan_hash = digest
        self.priority = priority
        self.evaluator = evaluator
        self.state = "queued"
        self.error: BaseException | None = None
        self.result_obj: Any = None
        self.result_bytes: bytes | None = None
        self.cached = False
        self.runs = 0
        self.events: list[Event] = []
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()

    def info(self) -> dict[str, Any]:
        """JSON-compatible status summary (the HTTP ``/jobs`` shape)."""
        return {
            "job_id": self.id,
            "state": self.state,
            "plan_hash": self.plan_hash,
            "workload": self.plan.workload,
            "priority": self.priority,
            "cached": self.cached,
            "runs": self.runs,
            "events": len(self.events),
            "error": None if self.error is None else repr(self.error),
        }


class JobHandle:
    """The caller's view of one submitted job.

    Thin and safe to share: every accessor reads the live job record,
    so a handle obtained at submit time keeps reflecting the job as it
    progresses (and across cancel/resubmit cycles, which re-queue the
    same job).
    """

    def __init__(self, service: "SearchService", job: _Job):
        self._service = service
        self._job = job

    @property
    def job_id(self) -> str:
        """Stable job identifier (derived from the plan hash)."""
        return self._job.id

    @property
    def plan(self) -> RunPlan:
        """The submitted plan."""
        return self._job.plan

    @property
    def plan_hash(self) -> str:
        """Canonical plan hash (the store/dedup key)."""
        return self._job.plan_hash

    @property
    def state(self) -> str:
        """Current lifecycle state (one of :data:`JOB_STATES`)."""
        return self._job.state

    @property
    def cached(self) -> bool:
        """Whether the job was answered from the result store."""
        return self._job.cached

    def events(self, since: int = 0) -> list[Event]:
        """The job's typed event log from index ``since`` onwards."""
        return list(self._job.events[since:])

    def wait(self, timeout: float | None = None) -> str:
        """Block until the job reaches a terminal state; returns it.

        Waits in short slices so the main thread stays interruptible;
        on timeout the current (possibly non-terminal) state comes
        back.
        """
        deadline = None
        if timeout is not None:
            import time

            deadline = time.monotonic() + timeout
        while not self._job.done_event.is_set():
            remaining = 0.1
            if deadline is not None:
                import time

                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    break
            self._job.done_event.wait(remaining)
        return self._job.state

    def result(self, timeout: float | None = None) -> Any:
        """The job's result object (blocking).

        Raises :class:`JobCancelledError` for cancelled jobs,
        re-raises the original exception for failed ones, and
        :class:`TimeoutError` when ``timeout`` elapses first.  Cache
        hits decode the stored payload through the workload's codec.
        """
        state = self.wait(timeout)
        job = self._job
        if state == "done":
            if job.result_obj is None and job.result_bytes is not None:
                import json

                job.result_obj = store_mod.decode_result(
                    job.plan, json.loads(job.result_bytes)
                )
            return job.result_obj
        if state == "cancelled":
            raise JobCancelledError(
                f"job {job.id} was cancelled; resubmit the plan to resume"
            )
        if state == "failed":
            assert job.error is not None
            raise job.error
        raise TimeoutError(f"job {job.id} still {state} after {timeout}s")

    def result_bytes(self, timeout: float | None = None) -> bytes | None:
        """Canonical serialized result bytes (None when not cacheable).

        Byte-identical across every submission of the same plan -- the
        property the HTTP ``/result`` endpoint serves directly.
        """
        self.result(timeout)
        return self._job.result_bytes

    def cancel(self) -> str:
        """Request cancellation; returns the (possibly new) state."""
        return self._service.cancel(self.job_id)


class SearchService:
    """Bounded-worker, priority-queued, deduping plan execution service.

    Parameters:
        workers: worker threads (= jobs in flight at once).  Each job
            may still fan out internally per its plan's execution
            policy.
        store: a :class:`~repro.service.store.ResultStore` to share;
            default builds one (in-memory, or under ``store_dir``).
        store_dir: persistence directory for the default store.
        checkpoint_dir: root under which jobs whose plans name no
            checkpoint directory snapshot (per plan hash).  Without it
            such jobs run un-checkpointed, exactly as their plan says.
        cache_results: store/serve results for cacheable workloads
            (turn off to make every submit re-run).
        bus: an :class:`~repro.events.EventBus` to share; the default
            bus (exposed as :attr:`bus`) does not record history --
            per-job logs live on the jobs themselves, which keeps a
            long-lived service's footprint proportional to its jobs,
            not its event volume.
    """

    def __init__(
        self,
        workers: int = 1,
        store: ResultStore | None = None,
        store_dir: str | None = None,
        checkpoint_dir: str | None = None,
        cache_results: bool = True,
        bus: EventBus | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.bus = bus if bus is not None else EventBus()
        self.store = store if store is not None else ResultStore(store_dir)
        self.checkpoint_dir = checkpoint_dir
        self.cache_results = cache_results
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._queue: list[tuple[int, int, _Job]] = []
        self._seq = itertools.count()
        self._jobs: dict[str, _Job] = {}
        self._by_hash: dict[str, _Job] = {}
        self._shutdown = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"search-service-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission / lookup -------------------------------------------------

    def submit(self, plan: RunPlan, priority: int = 0,
               evaluator: Any = None) -> JobHandle:
        """Queue a plan for execution; returns its :class:`JobHandle`.

        Dedup semantics (all keyed on the canonical plan hash, skipped
        when a live ``evaluator`` override makes the job
        un-addressable):

        * stored result -> an already-``done`` job answered from the
          cache (:class:`~repro.events.CacheHit`), byte-identical to
          the original;
        * identical plan queued/running/done -> the same job (and the
          same handle semantics);
        * identical plan previously ``cancelled``/``failed`` -> the job
          is re-queued, and its shards resume from their checkpoints.
        """
        check_evaluator_override(plan, evaluator)
        digest = plan_hash(plan)
        to_publish: list[Event] = []
        try:
            with self._lock:
                if self._shutdown:
                    raise RuntimeError("service is shut down")
                if evaluator is None:
                    existing = self._by_hash.get(digest)
                    if (existing is not None
                            and existing.state in _COALESCE_STATES):
                        return JobHandle(self, existing)
                    cached = (
                        self.store.get_bytes(digest)
                        if self.cache_results and store_mod.is_cacheable(plan)
                        else None
                    )
                    if cached is not None:
                        job = existing
                        if job is None:
                            job = _Job(self._job_id(digest, evaluator=None),
                                       plan, digest, priority, None)
                            self._register(job)
                        job.state = "done"
                        job.cached = True
                        job.result_bytes = cached
                        job.result_obj = None
                        job.error = None
                        job.done_event.set()
                        to_publish = self._record(job, [
                            CacheHit(
                                job.id, "identical plan already solved; "
                                "returning stored result", plan_hash=digest),
                            JobCompleted(
                                job.id, "served from the result store",
                                plan_hash=digest),
                        ])
                        return JobHandle(self, job)
                    if existing is not None:
                        # cancelled / failed: resubmit re-queues the same
                        # job; checkpoints written before cancellation make
                        # the re-run a resume.  The job log entry lands
                        # *before* the job becomes visible to workers, so
                        # JobQueued always precedes JobStarted in it.
                        job = existing
                        job.state = "queued"
                        job.priority = priority
                        job.error = None
                        job.cancel_event.clear()
                        job.done_event.clear()
                        to_publish = self._record(job, [JobQueued(
                            job.id, "resubmitted; checkpointed shards will "
                            "resume", plan_hash=digest)])
                        self._enqueue(job)
                        return JobHandle(self, job)
                job = _Job(self._job_id(digest, evaluator), plan, digest,
                           priority, evaluator)
                self._register(job)
                to_publish = self._record(job, [JobQueued(
                    job.id, f"queued at priority {priority}",
                    plan_hash=digest)])
                self._enqueue(job)
                return JobHandle(self, job)
        finally:
            for event in to_publish:
                self.bus.publish(event)

    def job(self, job_id: str) -> JobHandle:
        """Look a job up by id."""
        with self._lock:
            job = self._jobs.get(job_id)
            known = sorted(self._jobs)
        if job is None:
            listing = ", ".join(known) if known else "(no jobs submitted yet)"
            raise UnknownJobError(f"unknown job {job_id!r}; known: {listing}")
        return JobHandle(self, job)

    def jobs(self) -> list[JobHandle]:
        """Handles for every job, in submission order."""
        with self._lock:
            return [JobHandle(self, j) for j in self._jobs.values()]

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns its state after the request.

        Queued jobs cancel immediately.  Running search-driven jobs
        (``search``, ``sweep``, ``paired``, ``table1``, ``figure6``,
        ``figure7``) stop cooperatively at the next trial boundary,
        snapshotting first when checkpointing is configured (the worker
        then publishes :class:`~repro.events.JobCancelled`); the
        remaining workloads (``figure8``, ``ablations``, ``report``)
        poll only before starting and otherwise run to completion.
        Terminal jobs are left untouched.
        """
        handle = self.job(job_id)
        job = handle._job
        to_publish: list[Event] = []
        with self._lock:
            if job.state == "queued":
                job.state = "cancelled"
                job.cancel_event.set()
                job.done_event.set()
                to_publish = self._record(job, [JobCancelled(
                    job.id, "cancelled while queued",
                    plan_hash=job.plan_hash)])
            elif job.state == "running":
                job.cancel_event.set()
        for event in to_publish:
            self.bus.publish(event)
        return job.state

    def shutdown(self, wait: bool = True, cancel_running: bool = False) -> None:
        """Stop accepting work and wind the worker pool down.

        Queued jobs are cancelled.  Running jobs finish normally unless
        ``cancel_running`` asks them to stop cooperatively.  With
        ``wait`` the call joins every worker thread.
        """
        to_publish: list[Event] = []
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            while self._queue:
                _, _, job = heapq.heappop(self._queue)
                if job.state == "queued":
                    job.state = "cancelled"
                    job.cancel_event.set()
                    job.done_event.set()
                    to_publish.extend(self._record(job, [JobCancelled(
                        job.id, "service shut down while queued",
                        plan_hash=job.plan_hash)]))
            if cancel_running:
                for job in self._jobs.values():
                    if job.state == "running":
                        job.cancel_event.set()
            self._work_ready.notify_all()
        for event in to_publish:
            self.bus.publish(event)
        if wait:
            for thread in self._workers:
                thread.join()
        self.bus.close()

    def __enter__(self) -> "SearchService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit shuts the service down (waiting)."""
        self.shutdown(wait=True)

    # -- internals -----------------------------------------------------------

    def _job_id(self, digest: str, evaluator: Any) -> str:
        """Derive a job id: hash-based, unique for un-addressable jobs."""
        base = f"j-{digest[:12]}"
        if evaluator is None:
            return base
        return f"{base}-live{next(self._seq)}"

    def _register(self, job: _Job) -> None:
        self._jobs[job.id] = job
        if job.evaluator is None:
            self._by_hash[job.plan_hash] = job

    def _enqueue(self, job: _Job) -> None:
        heapq.heappush(self._queue, (-job.priority, next(self._seq), job))
        self._work_ready.notify()

    def _record(self, job: _Job, events: list[Event]) -> list[Event]:
        """Append events to the job's log (caller holds the lock).

        Returns the events so the caller can publish them to the bus
        *after* releasing the lock -- the job log is therefore ordered
        even when a worker races the tail of ``submit``, and bus
        subscribers can never deadlock the service by calling back in.
        """
        job.events.extend(events)
        return list(events)

    def _publish(self, job: _Job, event: Event) -> None:
        job.events.append(event)
        self.bus.publish(event)

    def _worker_loop(self) -> None:
        while True:
            with self._work_ready:
                while not self._queue and not self._shutdown:
                    self._work_ready.wait()
                if not self._queue:
                    return  # shutdown with an empty queue
                _, _, job = heapq.heappop(self._queue)
                if job.state != "queued":
                    continue  # cancelled while queued; stale heap entry
                job.state = "running"
                job.runs += 1
            self._execute(job)

    def _execute(self, job: _Job) -> None:
        from repro.core.search import SearchCancelled

        self._publish(job, JobStarted(
            job.id, f"run {job.runs} started", plan_hash=job.plan_hash))
        try:
            result = execute_plan(
                job.plan,
                emit=lambda event: self._publish(job, event),
                evaluator=job.evaluator,
                should_stop=job.cancel_event.is_set,
                fallback_checkpoint_dir=self._job_checkpoint_dir(job),
            )
        except SearchCancelled as exc:
            job.state = "cancelled"
            self._publish(job, JobCancelled(
                job.id,
                f"cancelled after {exc.completed} completed unit(s); "
                "checkpoints (if configured) preserved",
                plan_hash=job.plan_hash))
        except BaseException as exc:  # noqa: BLE001 -- workers must survive
            job.state = "failed"
            job.error = exc
            self._publish(job, JobFailed(
                job.id, f"{type(exc).__name__}: {exc}",
                plan_hash=job.plan_hash))
        else:
            job.result_obj = result
            if (job.evaluator is None and self.cache_results
                    and store_mod.is_cacheable(job.plan)):
                payload = store_mod.encode_result(job.plan, result)
                job.result_bytes = self.store.put(job.plan_hash, payload)
            job.state = "done"
            self._publish(job, JobCompleted(
                job.id, "completed", plan_hash=job.plan_hash))
        finally:
            job.done_event.set()

    def _job_checkpoint_dir(self, job: _Job) -> str | None:
        """Service-level checkpoint fallback, keyed by plan hash."""
        if self.checkpoint_dir is None:
            return None
        import os

        return os.path.join(self.checkpoint_dir, job.plan_hash)
