"""The federated worker agent: claim, lease, execute, report, survive.

:class:`WorkerAgent` (the ``repro agent`` process) connects to a
coordinator -- a ``repro serve`` endpoint -- over the plain HTTP JSON
``/agents`` protocol and turns it into a distributed execution fleet:

* **register** under a stable agent id (idempotent, so re-registering
  after a network partition or coordinator restart revives any lease
  the coordinator's journal restored to that id);
* **claim** queued jobs, receiving the canonical plan document, the
  lease terms, and the checkpoint directory to snapshot under (a
  shared-filesystem path -- that is what lets another agent resume the
  work if this one dies);
* **execute** each claimed job through the existing
  :func:`repro.service.workers.run_job_in_process` process backend.
  The child's orphan detection doubles as the agent's dead-man switch:
  if the agent process is SIGKILLed, the job child notices its parent
  pid change, checkpoints, and exits -- so the very failure the lease
  protocol re-queues the job for also preserves the progress the next
  holder resumes from;
* **heartbeat** while holding leases, renewing them at the advertised
  interval with bounded exponential backoff on coordinator hiccups;
  a heartbeat answer naming the job as ``lost`` means the lease
  expired -- the agent cancels the child and *discards* the work
  (the coordinator already re-queued the job; byte-identical results
  make double execution safe and the coordinator's 409 replies make
  double reporting impossible);
* **stream** typed events back in batches (advisory telemetry -- the
  ``/result`` bytes are the contract, so undeliverable batches are
  dropped after retries rather than blocking execution);
* **upload** the terminal outcome under the lease; a 409 means some
  other holder finished the job and the upload is happily discarded.

Named :func:`repro.service.faults.crash_point` calls mark the
interesting instants to die (just after claiming, mid event stream,
just before completing) for the chaos test matrix.
"""

from __future__ import annotations

import http.client
import os
import queue
import signal
import threading
import urllib.error
from typing import Any

from repro.plans import RunPlan
from repro.service.client import ServiceClient, ServiceError
from repro.service.faults import crash_point

#: Seconds an idle agent sleeps between claim attempts.
DEFAULT_POLL_SECONDS = 0.5

#: Event-upload batches are capped at this many events per POST.
_EVENT_BATCH = 64

#: Consecutive delivery failures after which an event batch is dropped.
_EVENT_RETRIES = 3


class WorkerAgent:
    """One agent process's lifecycle against a coordinator.

    Parameters:
        coordinator: the coordinator's base URL
            (e.g. ``http://127.0.0.1:8765``).
        name: human-readable agent name (lands in ``AgentJoined`` /
            ``/agents`` listings); defaults to ``host-pid``.
        agent_id: stable identity to (re-)register under; ``None``
            lets the coordinator mint one at first registration.
        poll_seconds: idle sleep between claim attempts (claims also
            count as agent heartbeats, so this must stay well under
            the lease term -- it does, by orders of magnitude).
        max_jobs: exit after completing this many jobs (``None`` runs
            until :meth:`stop`); chaos tests use 1-job agents.
        client: a pre-built :class:`ServiceClient` (tests inject
            flaky ones); default builds one with retrying enabled.
    """

    def __init__(
        self,
        coordinator: str,
        name: str | None = None,
        agent_id: str | None = None,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        max_jobs: int | None = None,
        client: ServiceClient | None = None,
    ):
        if poll_seconds <= 0:
            raise ValueError(
                f"poll_seconds must be positive, got {poll_seconds}")
        self.coordinator = coordinator
        self.name = name or f"{os.uname().nodename}-{os.getpid()}"
        self.agent_id = agent_id
        self.poll_seconds = poll_seconds
        self.max_jobs = max_jobs
        self.client = client if client is not None else ServiceClient(
            coordinator, timeout=30.0, max_retries=4, backoff=0.1)
        self.heartbeat_seconds = 5.0  # overwritten by registration
        #: Jobs this agent finished (any outcome), for tests/benches.
        self.jobs_done = 0
        self._stop = threading.Event()
        #: Lazily-built one-worker pool jobs execute on.  Persistent
        #: across claims: the 40th job of a long-lived agent runs on a
        #: warm worker instead of paying a fresh spawn.
        self._pool: Any = None

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        """Ask the claim loop to exit after the current job."""
        self._stop.set()

    def register(self) -> str:
        """(Re-)register with the coordinator; returns the agent id.

        Adopts the coordinator's advertised heartbeat interval.  Safe
        to call repeatedly -- it is how the agent recovers from both
        coordinator restarts and its own deregistration after a
        heartbeat lapse.
        """
        terms = self.client.register_agent(
            name=self.name, agent_id=self.agent_id)
        self.agent_id = terms["agent_id"]
        self.heartbeat_seconds = float(terms["heartbeat_seconds"])
        return self.agent_id

    def run(self) -> int:
        """Register and serve claims until :meth:`stop` (or max_jobs).

        Returns the number of jobs executed.  Coordinator outages are
        survived, not propagated: connection failures back off and
        retry, and an ``unknown agent`` answer (the coordinator forgot
        us -- restart without journal, or heartbeat lapse) triggers
        re-registration under the same id.
        """
        self.register()
        idle_sleep = self.poll_seconds
        while not self._stop.is_set():
            if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                break
            try:
                claim = self.client.claim(self.agent_id)
            except ServiceError as exc:
                if exc.status == 404:
                    self.register()
                    continue
                raise
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError, http.client.HTTPException):
                # Coordinator unreachable even after client retries:
                # keep trying (it may be restarting around its journal).
                self._stop.wait(min(idle_sleep * 2, 5.0))
                continue
            if claim is None:
                self._stop.wait(idle_sleep)
                continue
            crash_point("agent.claimed")
            self._run_job(claim)
            self.jobs_done += 1
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._leave()
        return self.jobs_done

    def _leave(self) -> None:
        """Best-effort graceful deregistration."""
        if self.agent_id is None:
            return
        try:
            self.client.agent_leave(self.agent_id)
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass

    # -- one job -------------------------------------------------------------

    def _run_job(self, claim: dict[str, Any]) -> None:
        """Execute one claimed job end to end (blocking)."""
        job_id = claim["job_id"]
        plan = RunPlan.from_dict(claim["plan"])
        heartbeat = float(claim.get("heartbeat_seconds")
                          or self.heartbeat_seconds)
        lost = threading.Event()      # lease gone: drop everything
        cancel = threading.Event()    # cooperative cancel requested
        done = threading.Event()      # job finished: stop the threads
        events: queue.Queue = queue.Queue()

        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(job_id, heartbeat, lost, cancel, done),
            name=f"agent-heartbeat-{job_id}", daemon=True)
        sender = threading.Thread(
            target=self._event_sender, args=(job_id, events, lost, done),
            name=f"agent-events-{job_id}", daemon=True)
        beat.start()
        sender.start()
        try:
            outcome = self._execute(plan, claim, events, lost, cancel)
        finally:
            done.set()
            beat.join()
            sender.join()
        if lost.is_set():
            return  # the coordinator re-queued the job; drop the work
        crash_point("agent.complete")
        self._upload_outcome(job_id, plan, outcome)

    def _execute(self, plan: RunPlan, claim: dict[str, Any],
                 events: queue.Queue, lost: threading.Event,
                 cancel: threading.Event) -> tuple[str, Any]:
        """Run the plan on the agent's pool worker; returns ``(tag, value)``.

        ``("done", (result, payload))`` on success, ``("cancelled",
        completed_count)`` on cooperative stop (which the *lost* path
        also takes -- the child checkpoints either way), ``("failed",
        message)`` otherwise.  The worker process persists across
        claims (see :class:`~repro.service.pool.WorkerPool`); its
        parent-death watch doubles as the dead-man switch -- a
        SIGKILLed agent orphans the worker, whose next poll checkpoints
        and exits.
        """
        from repro.core.search import SearchCancelled
        from repro.service.pool import WorkerPool
        from repro.service.workers import run_job_in_process

        if self._pool is None:
            self._pool = WorkerPool(1, name=f"agent-{self.name}")

        def emit(event: Any) -> None:
            crash_point("agent.event")
            events.put(event.to_dict())

        try:
            result, payload = run_job_in_process(
                plan,
                emit=emit,
                cancel_requested=lambda: (cancel.is_set() or lost.is_set()
                                          or self._stop.is_set()),
                fallback_checkpoint_dir=claim.get("checkpoint_dir"),
                store_dir=claim.get("store_dir"),
                pool=self._pool,
            )
        except SearchCancelled as exc:
            return ("cancelled", exc.completed)
        except BaseException as exc:  # noqa: BLE001 - must reach the wire
            return ("failed", f"{type(exc).__name__}: {exc}")
        return ("done", (result, payload))

    def _upload_outcome(self, job_id: str, plan: RunPlan,
                        outcome: tuple[str, Any]) -> None:
        """Report the terminal outcome under the lease (retrying).

        A 409 answer means the lease moved on and someone else owns
        the finish -- the upload is discarded without complaint; 404
        (agent forgotten) re-registers once and retries.
        """
        tag, value = outcome
        if tag == "done":
            result, payload = value
            if payload is None and result is not None:
                from repro.service import store as store_mod

                if store_mod.is_cacheable(plan):
                    payload = store_mod.encode_result(plan, result)
            kwargs: dict[str, Any] = {"payload": payload}
        elif tag == "cancelled":
            kwargs = {"completed": int(value)}
        else:
            kwargs = {"message": str(value)}
        for attempt in (1, 2):
            try:
                self.client.agent_complete(
                    self.agent_id, job_id, tag, **kwargs)
                return
            except ServiceError as exc:
                if exc.status == 409:
                    return  # stale lease: finished elsewhere
                if exc.status == 404 and attempt == 1:
                    try:
                        self.register()
                        continue
                    except Exception:  # noqa: BLE001
                        return
                return
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError, http.client.HTTPException):
                return  # client retries exhausted; lease will expire

    # -- background threads --------------------------------------------------

    def _heartbeat_loop(self, job_id: str, interval: float,
                        lost: threading.Event, cancel: threading.Event,
                        done: threading.Event) -> None:
        """Renew the job's lease until the job finishes.

        Transient delivery failures retry at an exponentially growing
        pace (never beyond the interval itself); a ``lost`` directive
        or an unrecoverable answer sets the ``lost`` flag, which makes
        the executing child stop at its next boundary.
        """
        failures = 0
        while not done.wait(interval if failures == 0 else
                            min(interval, 0.05 * (2 ** failures))):
            crash_point("agent.heartbeat")
            try:
                answer = self.client.agent_heartbeat(self.agent_id, [job_id])
            except ServiceError as exc:
                if exc.status == 404:
                    try:
                        self.register()
                    except Exception:  # noqa: BLE001
                        failures += 1
                    continue
                failures += 1
                continue
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError, http.client.HTTPException):
                failures += 1
                continue
            failures = 0
            if job_id in answer.get("lost", []):
                lost.set()
                return
            if job_id in answer.get("cancel", []):
                cancel.set()

    def _event_sender(self, job_id: str, events: queue.Queue,
                      lost: threading.Event,
                      done: threading.Event) -> None:
        """Drain the event queue into batched ``/events`` POSTs.

        Events are advisory (the stored result bytes are the
        contract), so a batch that keeps failing is dropped rather
        than allowed to wedge the pipeline; a 409 means the lease is
        gone and the whole stream stops.
        """
        while True:
            batch: list[dict[str, Any]] = []
            try:
                batch.append(events.get(timeout=0.05))
            except queue.Empty:
                if done.is_set() and events.empty():
                    return
                continue
            while len(batch) < _EVENT_BATCH:
                try:
                    batch.append(events.get_nowait())
                except queue.Empty:
                    break
            if lost.is_set():
                continue  # drain silently; nobody wants these anymore
            for _ in range(_EVENT_RETRIES):
                try:
                    self.client.agent_events(self.agent_id, job_id, batch)
                    break
                except ServiceError as exc:
                    if exc.status == 409:
                        lost.set()
                    break  # 4xx answers are final; 5xx already retried
                except (urllib.error.URLError, ConnectionError,
                        TimeoutError, OSError,
                        http.client.HTTPException):
                    continue


def run_agent(
    coordinator: str,
    name: str | None = None,
    agent_id: str | None = None,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    max_jobs: int | None = None,
    handle_signals: bool = True,
) -> int:
    """Run a :class:`WorkerAgent` to completion (the CLI entry point).

    With ``handle_signals`` (main-thread only), SIGTERM and SIGINT
    request a graceful stop: the current job finishes, the agent
    deregisters, and its leases release cleanly instead of having to
    expire.  Returns the number of jobs executed.
    """
    agent = WorkerAgent(coordinator, name=name, agent_id=agent_id,
                        poll_seconds=poll_seconds, max_jobs=max_jobs)
    if handle_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: agent.stop())
    return agent.run()
