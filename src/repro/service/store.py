"""Content-addressed result storage keyed by canonical plan hashes.

The service's dedup guarantee rests on two pieces:

* **codecs** -- per-workload ``(encode, decode)`` pairs turning a
  workload's result object into a JSON-compatible payload and back.
  Workloads with a lossless codec are *cacheable*; the rest (the
  matplotlib-style figure studies whose result types predate
  serialization) simply re-run on every submit.
* :class:`ResultStore` -- a mapping from :func:`repro.plans.plan_hash`
  to the payload's **canonical bytes** (sorted keys, minimal
  separators).  The bytes are stored once and returned verbatim on
  every hit, which is what makes a duplicate submit byte-identical to
  the first, and they optionally persist under a directory
  (``<hash>.json``, atomic writes) so a restarted service keeps its
  cache.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from repro.plans import RunPlan


def _encode_search(result: Any) -> dict[str, Any]:
    from repro.core.serialization import search_result_to_dict

    return search_result_to_dict(result)


def _decode_search(payload: dict[str, Any]) -> Any:
    from repro.core.serialization import search_result_from_dict

    return search_result_from_dict(payload)


def _encode_paired(result: Any) -> dict[str, Any]:
    return result.to_dict()


def _decode_paired(payload: dict[str, Any]) -> Any:
    from repro.experiments.runner import PairedSearchOutcome

    return PairedSearchOutcome.from_dict(payload)


def _encode_sweep(result: Any) -> dict[str, Any]:
    return result.to_dict()


def _decode_sweep(payload: dict[str, Any]) -> Any:
    from repro.orchestration.campaign import CampaignResult

    return CampaignResult.from_dict(payload)


def _encode_report(result: Any) -> dict[str, Any]:
    return {"text": result}


def _decode_report(payload: dict[str, Any]) -> Any:
    return payload["text"]


#: Workload -> (encode, decode); membership defines cacheability.
RESULT_CODECS: dict[
    str,
    tuple[Callable[[Any], dict[str, Any]], Callable[[dict[str, Any]], Any]],
] = {
    "search": (_encode_search, _decode_search),
    "paired": (_encode_paired, _decode_paired),
    "sweep": (_encode_sweep, _decode_sweep),
    "report": (_encode_report, _decode_report),
}


def is_cacheable(plan: RunPlan) -> bool:
    """Whether the plan's result can be served from the store.

    Requires a lossless result codec for the workload *and* no
    ``output`` artifact path: answering an ``output``-bearing plan from
    the store would skip the artifact write the plan document promises,
    so those plans always execute.
    """
    return plan.workload in RESULT_CODECS and plan.output is None


def encode_result(plan: RunPlan, result: Any) -> dict[str, Any]:
    """Serialize a workload result for storage (cacheable workloads)."""
    try:
        encode, _ = RESULT_CODECS[plan.workload]
    except KeyError:
        raise ValueError(
            f"workload {plan.workload!r} has no result codec; cacheable "
            "workloads: " + ", ".join(sorted(RESULT_CODECS))
        ) from None
    return encode(result)


def decode_result(plan: RunPlan, payload: dict[str, Any]) -> Any:
    """Inverse of :func:`encode_result`."""
    try:
        _, decode = RESULT_CODECS[plan.workload]
    except KeyError:
        raise ValueError(
            f"workload {plan.workload!r} has no result codec; cacheable "
            "workloads: " + ", ".join(sorted(RESULT_CODECS))
        ) from None
    return decode(payload)


def scrub_volatile(payload: Any) -> Any:
    """Zero out run-environment noise from a result payload, recursively.

    A stored result is the content-addressed value of a *deterministic*
    computation, but result documents carry two fields that depend on
    how (not what) the run executed: ``wall_seconds`` (host speed,
    interruptions) and ``resumed_from`` (checkpoint paths).  Scrubbing
    them -- wall clocks to ``0.0``, resume provenance to ``None`` --
    makes the canonical bytes a pure function of the plan: a job killed
    mid-run and resumed after a service restart stores *byte-identical*
    results to an uninterrupted run (the recovery CI job asserts
    exactly that).  Returns a scrubbed deep copy; the input is not
    modified.
    """
    if isinstance(payload, dict):
        scrubbed = {}
        for key, value in payload.items():
            if key == "wall_seconds":
                scrubbed[key] = 0.0
            elif key == "resumed_from":
                scrubbed[key] = None
            else:
                scrubbed[key] = scrub_volatile(value)
        return scrubbed
    if isinstance(payload, list):
        return [scrub_volatile(item) for item in payload]
    return payload


def canonical_payload_bytes(payload: dict[str, Any]) -> bytes:
    """One fixed byte rendering of a stored payload.

    Same canonicalisation rules as
    :func:`repro.plans.canonical_plan_json`: sorted keys, minimal
    separators, UTF-8 -- applied after :func:`scrub_volatile`, so the
    bytes depend only on the plan's deterministic outcome.  Every store
    hit returns exactly these bytes.
    """
    return json.dumps(
        scrub_volatile(payload), sort_keys=True, separators=(",", ":")
    ).encode()


class ResultStore:
    """Plan-hash -> canonical result bytes, in memory and on disk.

    Parameters:
        directory: when given, every entry also lands at
            ``<directory>/<hash>.json`` (atomic temp-file-then-replace
            writes) and lookups fall back to disk, so the cache
            survives service restarts.
    """

    def __init__(self, directory: str | Path | None = None):
        self._memory: dict[str, bytes] = {}
        self.directory = None if directory is None else Path(directory)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def put(self, key: str, payload: dict[str, Any]) -> bytes:
        """Store a payload under ``key``; returns its canonical bytes.

        Idempotent: re-putting under an existing key keeps the original
        bytes (first write wins -- the store is content-addressed by
        the *plan*, so a second identical plan's result is by
        construction the same result).
        """
        existing = self.get_bytes(key)
        if existing is not None:
            return existing
        blob = canonical_payload_bytes(payload)
        self._memory[key] = blob
        if self.directory is not None:
            path = self._path(key)
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_bytes(blob)
            import os

            os.replace(tmp, path)
        return blob

    def get_bytes(self, key: str) -> bytes | None:
        """The stored canonical bytes for ``key`` (None on a miss)."""
        blob = self._memory.get(key)
        if blob is not None:
            return blob
        if self.directory is not None:
            path = self._path(key)
            if path.exists():
                blob = path.read_bytes()
                self._memory[key] = blob
                return blob
        return None

    def get_payload(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, parsed (None on a miss)."""
        blob = self.get_bytes(key)
        return None if blob is None else json.loads(blob)

    def __contains__(self, key: str) -> bool:
        """Membership by hash (memory or disk)."""
        return self.get_bytes(key) is not None

    def __len__(self) -> int:
        """Number of entries (disk entries included when persistent)."""
        keys = set(self._memory)
        if self.directory is not None:
            keys.update(p.stem for p in self.directory.glob("*.json"))
        return len(keys)
