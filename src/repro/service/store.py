"""Content-addressed result storage keyed by canonical plan hashes.

The service's dedup guarantee rests on two pieces:

* **codecs** -- per-workload ``(encode, decode)`` pairs turning a
  workload's result object into a JSON-compatible payload and back.
  Workloads with a lossless codec are *cacheable*; the rest (the
  matplotlib-style figure studies whose result types predate
  serialization) simply re-run on every submit.
* :class:`ResultStore` -- a mapping from :func:`repro.plans.plan_hash`
  to the payload's **canonical bytes** (sorted keys, minimal
  separators).  The bytes are stored once and returned verbatim on
  every hit, which is what makes a duplicate submit byte-identical to
  the first, and they optionally persist under a directory
  (``<hash>.json``, atomic writes) so a restarted service keeps its
  cache.

The store is keyed at **two granularities** sharing one namespace:
whole-plan hashes (what :meth:`SearchService.submit` dedups on) and
*shard* hashes -- each campaign shard's canonical single-search plan
hash (:attr:`repro.orchestration.shards.ShardSpec.shard_hash`), which
:class:`~repro.orchestration.campaign.Campaign` reads through before
running a shard and writes through after.  Two sweeps overlapping in
most of their shards therefore share those shards' results, and a
re-submitted sweep with one changed spec re-pays ~one shard, not N.

Long-lived deployments reclaim space with :meth:`ResultStore.gc`
(surfaced as ``repro store gc``): entries referenced by the job
journal's non-terminal jobs (:func:`live_store_keys`) are pinned;
everything else ages out under ``--max-age`` / ``--max-bytes``
budgets.  Disk reads validate before serving, so a torn or corrupt
entry is a miss that gets recomputed and atomically overwritten --
never served.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.plans import RunPlan


def _encode_search(result: Any) -> dict[str, Any]:
    from repro.core.serialization import search_result_to_dict

    return search_result_to_dict(result)


def _decode_search(payload: dict[str, Any]) -> Any:
    from repro.core.serialization import search_result_from_dict

    return search_result_from_dict(payload)


def _encode_paired(result: Any) -> dict[str, Any]:
    return result.to_dict()


def _decode_paired(payload: dict[str, Any]) -> Any:
    from repro.experiments.runner import PairedSearchOutcome

    return PairedSearchOutcome.from_dict(payload)


def _encode_sweep(result: Any) -> dict[str, Any]:
    return result.to_dict()


def _decode_sweep(payload: dict[str, Any]) -> Any:
    from repro.orchestration.campaign import CampaignResult

    return CampaignResult.from_dict(payload)


def _encode_report(result: Any) -> dict[str, Any]:
    return {"text": result}


def _decode_report(payload: dict[str, Any]) -> Any:
    return payload["text"]


#: Workload -> (encode, decode); membership defines cacheability.
RESULT_CODECS: dict[
    str,
    tuple[Callable[[Any], dict[str, Any]], Callable[[dict[str, Any]], Any]],
] = {
    "search": (_encode_search, _decode_search),
    "paired": (_encode_paired, _decode_paired),
    "sweep": (_encode_sweep, _decode_sweep),
    "report": (_encode_report, _decode_report),
}


def is_cacheable(plan: RunPlan) -> bool:
    """Whether the plan's result can be served from the store.

    Requires a lossless result codec for the workload *and* no
    ``output`` artifact path: answering an ``output``-bearing plan from
    the store would skip the artifact write the plan document promises,
    so those plans always execute.
    """
    return plan.workload in RESULT_CODECS and plan.output is None


def encode_result(plan: RunPlan, result: Any) -> dict[str, Any]:
    """Serialize a workload result for storage (cacheable workloads)."""
    try:
        encode, _ = RESULT_CODECS[plan.workload]
    except KeyError:
        raise ValueError(
            f"workload {plan.workload!r} has no result codec; cacheable "
            "workloads: " + ", ".join(sorted(RESULT_CODECS))
        ) from None
    return encode(result)


def decode_result(plan: RunPlan, payload: dict[str, Any]) -> Any:
    """Inverse of :func:`encode_result`."""
    try:
        _, decode = RESULT_CODECS[plan.workload]
    except KeyError:
        raise ValueError(
            f"workload {plan.workload!r} has no result codec; cacheable "
            "workloads: " + ", ".join(sorted(RESULT_CODECS))
        ) from None
    return decode(payload)


def scrub_volatile(payload: Any) -> Any:
    """Zero out run-environment noise from a result payload, recursively.

    A stored result is the content-addressed value of a *deterministic*
    computation, but result documents carry two fields that depend on
    how (not what) the run executed: ``wall_seconds`` (host speed,
    interruptions) and ``resumed_from`` (checkpoint paths).  Scrubbing
    them -- wall clocks to ``0.0``, resume provenance to ``None`` --
    makes the canonical bytes a pure function of the plan: a job killed
    mid-run and resumed after a service restart stores *byte-identical*
    results to an uninterrupted run (the recovery CI job asserts
    exactly that).  Returns a scrubbed deep copy; the input is not
    modified.
    """
    if isinstance(payload, dict):
        scrubbed = {}
        for key, value in payload.items():
            if key == "wall_seconds":
                scrubbed[key] = 0.0
            elif key == "resumed_from":
                scrubbed[key] = None
            else:
                scrubbed[key] = scrub_volatile(value)
        return scrubbed
    if isinstance(payload, list):
        return [scrub_volatile(item) for item in payload]
    return payload


def canonical_payload_bytes(payload: dict[str, Any]) -> bytes:
    """One fixed byte rendering of a stored payload.

    Same canonicalisation rules as
    :func:`repro.plans.canonical_plan_json`: sorted keys, minimal
    separators, UTF-8 -- applied after :func:`scrub_volatile`, so the
    bytes depend only on the plan's deterministic outcome.  Every store
    hit returns exactly these bytes.
    """
    return json.dumps(
        scrub_volatile(payload), sort_keys=True, separators=(",", ":")
    ).encode()


class ResultStore:
    """Plan-hash -> canonical result bytes, in memory and on disk.

    Parameters:
        directory: when given, every entry also lands at
            ``<directory>/<hash>.json`` (atomic temp-file-then-replace
            writes) and lookups fall back to disk, so the cache
            survives service restarts.
    """

    def __init__(self, directory: str | Path | None = None):
        self._memory: dict[str, bytes] = {}
        self.directory = None if directory is None else Path(directory)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._stats_lock = threading.Lock()
        #: Lookup counters (served / not-served), behind ``/metrics``.
        #: Only caller-facing :meth:`get_bytes` lookups count -- the
        #: existence probe inside :meth:`put` does not.
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def put(self, key: str, payload: dict[str, Any]) -> bytes:
        """Store a payload under ``key``; returns its canonical bytes.

        Idempotent: re-putting under an existing key keeps the original
        bytes (first write wins -- the store is content-addressed by
        the *plan*, so a second identical plan's result is by
        construction the same result).
        """
        existing = self._lookup(key)
        if existing is not None:
            return existing
        blob = canonical_payload_bytes(payload)
        self._memory[key] = blob
        if self.directory is not None:
            path = self._path(key)
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        return blob

    def get_bytes(self, key: str) -> bytes | None:
        """The stored canonical bytes for ``key`` (None on a miss).

        Disk entries are *validated* before they are served or cached
        in memory: a file that cannot be read or whose bytes do not
        parse as a JSON object -- a torn write, a crash mid-``put``
        before the atomic rename, outside corruption -- is treated as
        a miss, never returned.  The caller then recomputes and
        ``put`` atomically overwrites the damaged file (first-write-
        wins only applies to entries that validate).
        """
        blob = self._lookup(key)
        with self._stats_lock:
            if blob is None:
                self.misses += 1
            else:
                self.hits += 1
        return blob

    def _lookup(self, key: str) -> bytes | None:
        """The raw lookup behind :meth:`get_bytes`, without stats."""
        blob = self._memory.get(key)
        if blob is not None:
            return blob
        if self.directory is not None:
            blob = self._read_disk(key)
            if blob is not None:
                self._memory[key] = blob
                return blob
        return None

    def _read_disk(self, key: str) -> bytes | None:
        """One validated disk read: bytes, or None for missing/corrupt."""
        return self._validate_file(self._path(key))

    @staticmethod
    def _validate_file(path: Path) -> bytes | None:
        """A file's bytes if they parse as a JSON object, else None."""
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            payload = json.loads(blob)
        except ValueError:
            return None
        if not isinstance(payload, dict):
            return None
        return blob

    def get_payload(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, parsed (None on a miss)."""
        blob = self.get_bytes(key)
        return None if blob is None else json.loads(blob)

    def __contains__(self, key: str) -> bool:
        """Membership by hash (memory or disk; not counted in stats)."""
        return self._lookup(key) is not None

    def __len__(self) -> int:
        """Number of entries (disk entries included when persistent)."""
        keys = set(self._memory)
        if self.directory is not None:
            keys.update(p.stem for p in self.directory.glob("*.json"))
        return len(keys)

    def gc(
        self,
        live: frozenset[str] | set[str] = frozenset(),
        max_age_seconds: float | None = None,
        max_bytes: int | None = None,
        dry_run: bool = False,
    ) -> "StoreGCReport":
        """Reclaim dead and corrupt entries from a persistent store.

        ``live`` keys -- typically :func:`live_store_keys` over the
        job journal: the whole-plan hashes of every non-terminal job
        plus the shard hashes those plans expand to -- are **never**
        removed, however old or over-budget the store is.  Everything
        else is *dead* (no in-flight job references it) and reclaimable
        under two budgets:

        * ``max_age_seconds`` -- dead entries whose file is at least
          this old are removed (``0`` reclaims every dead entry);
        * ``max_bytes`` -- after the age pass, dead entries are
          removed oldest-first until the store fits the byte budget
          (live entries count against it but are never evicted).

        Entries whose file no longer validates (torn or corrupt JSON)
        are removed unconditionally -- they can only ever be misses.
        With no budget given, only that corrupt-file cleanup runs.
        ``dry_run`` computes the same report without deleting.
        Removed keys are also dropped from the in-memory cache.
        Raises :class:`ValueError` on in-memory-only stores (nothing
        durable to collect).

        The shared tiling-memo cache (``<store>/tiling/*.json``, see
        :class:`repro.fpga.tiling.TilingDiskCache`) is swept in the
        same pass, reported under ``tiling/<hash>`` pseudo-keys.
        Those entries are *always* dead -- each is a recomputable
        pure-function value no journal can pin -- so they age out and
        budget-evict like any unreferenced result entry.
        """
        if self.directory is None:
            raise ValueError(
                "gc requires a persistent store (a directory); in-memory "
                "stores die with their process"
            )
        now = time.time()
        corrupt: list[str] = []
        expired: list[str] = []
        over_budget: list[str] = []
        #: key -> (age_seconds, size_bytes) of dead-but-valid entries.
        dead: dict[str, tuple[float, int]] = {}
        paths: dict[str, Path] = {
            path.stem: path
            for path in sorted(self.directory.glob("*.json"))
        }
        paths.update({
            f"tiling/{path.stem}": path
            for path in sorted((self.directory / "tiling").glob("*.json"))
        })
        live_bytes = 0
        kept_live = 0
        reclaimed = 0
        examined = 0
        for key, path in paths.items():
            try:
                stat = path.stat()
            except OSError:
                continue  # vanished under us
            examined += 1
            if self._validate_file(path) is None:
                corrupt.append(key)
                reclaimed += stat.st_size
                continue
            if key in live:
                kept_live += 1
                live_bytes += stat.st_size
                continue
            age = max(0.0, now - stat.st_mtime)
            if max_age_seconds is not None and age >= max_age_seconds:
                expired.append(key)
                reclaimed += stat.st_size
                continue
            dead[key] = (age, stat.st_size)
        if max_bytes is not None:
            total = live_bytes + sum(size for _, size in dead.values())
            # Oldest dead entries go first; live entries are untouchable
            # even when they alone exceed the budget.
            for key, (age, size) in sorted(
                dead.items(), key=lambda item: -item[1][0]
            ):
                if total <= max_bytes:
                    break
                over_budget.append(key)
                reclaimed += size
                total -= size
        removed = (*corrupt, *expired, *over_budget)
        if not dry_run:
            for key in removed:
                try:
                    paths[key].unlink()
                except OSError:
                    pass  # already gone; the report still counts it
                self._memory.pop(key, None)
        return StoreGCReport(
            examined=examined,
            kept=examined - len(removed),
            live=kept_live,
            removed_corrupt=tuple(corrupt),
            removed_expired=tuple(expired),
            removed_over_budget=tuple(over_budget),
            reclaimed_bytes=reclaimed,
            dry_run=dry_run,
        )


@dataclass(frozen=True)
class StoreGCReport:
    """What one :meth:`ResultStore.gc` sweep examined and reclaimed.

    Attributes:
        examined: persisted entries the sweep looked at.
        kept: entries still present after the sweep.
        live: entries protected by the caller's ``live`` set.
        removed_corrupt: keys whose files no longer validated.
        removed_expired: dead keys past the ``max_age_seconds`` budget.
        removed_over_budget: dead keys evicted (oldest-first) to fit
            ``max_bytes``.
        reclaimed_bytes: on-disk bytes freed (or freeable, under
            ``dry_run``).
        dry_run: whether the sweep only reported, without deleting.
    """

    examined: int
    kept: int
    live: int
    removed_corrupt: tuple[str, ...] = ()
    removed_expired: tuple[str, ...] = ()
    removed_over_budget: tuple[str, ...] = ()
    reclaimed_bytes: int = 0
    dry_run: bool = False

    @property
    def removed(self) -> int:
        """Total entries reclaimed by the sweep."""
        return (len(self.removed_corrupt) + len(self.removed_expired)
                + len(self.removed_over_budget))

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (the CLI's machine-readable output)."""
        return {
            "examined": self.examined,
            "kept": self.kept,
            "live": self.live,
            "removed": self.removed,
            "removed_corrupt": list(self.removed_corrupt),
            "removed_expired": list(self.removed_expired),
            "removed_over_budget": list(self.removed_over_budget),
            "reclaimed_bytes": self.reclaimed_bytes,
            "dry_run": self.dry_run,
        }

    def format(self) -> str:
        """One-line human summary (what ``repro store gc`` prints)."""
        verb = "would reclaim" if self.dry_run else "reclaimed"
        return (
            f"examined {self.examined} entr{'y' if self.examined == 1 else 'ies'}: "
            f"kept {self.kept} ({self.live} live), {verb} {self.removed} "
            f"({len(self.removed_corrupt)} corrupt, "
            f"{len(self.removed_expired)} expired, "
            f"{len(self.removed_over_budget)} over budget; "
            f"{self.reclaimed_bytes} bytes)"
        )


def live_store_keys(entries: Iterable[dict[str, Any]]) -> frozenset[str]:
    """Store keys the journal's non-terminal jobs still reference.

    The GC refcount rule, computed from replayed
    :class:`~repro.service.journal.JobJournal` entries: every job whose
    last recorded transition is non-terminal contributes

    * its **whole-plan hash** (the entry a completed job will be
      answered from), and
    * for ``sweep`` and ``search`` plans, the **shard hashes** its
      scenario expands to (the entries its campaign reads through
      while resuming).

    Defensive like the journal itself: a recorded hash stays live even
    when its plan document is missing or no longer parses in this
    process (e.g. a third-party component key) -- liveness errs toward
    keeping, never toward deleting an entry a recovering job needs.
    """
    from repro.service.journal import JobJournal

    live: set[str] = set()
    for digest, plan_doc in JobJournal.live_jobs(list(entries)):
        live.add(digest)
        if not isinstance(plan_doc, dict):
            continue
        try:
            plan = RunPlan.from_dict(plan_doc)
        except Exception:  # noqa: BLE001 - conservative: keep the hash only
            continue
        live.update(_shard_keys(plan))
    return frozenset(live)


def _shard_keys(plan: RunPlan) -> set[str]:
    """The shard hashes a plan's execution reads/writes through."""
    if plan.workload == "sweep":
        from repro.orchestration.shards import plan_shards

        try:
            return {shard.shard_hash for shard in plan_shards(plan)}
        except (KeyError, ValueError):
            return set()
    if plan.workload == "search":
        from repro.orchestration.shards import ShardSpec

        try:
            return {ShardSpec.from_plan(plan).shard_hash}
        except (KeyError, ValueError):
            return set()
    return set()
