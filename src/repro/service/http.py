"""Stdlib-only HTTP JSON front-end for a :class:`SearchService`.

``repro serve`` binds a :class:`ServiceHTTPServer`
(:class:`http.server.ThreadingHTTPServer` underneath -- no third-party
dependency) over one in-process service.  The surface is deliberately
small and plain JSON:

=========  ================================  ============================
Method     Path                              Meaning
=========  ================================  ============================
GET        ``/health``                       liveness + job counts
POST       ``/jobs``                         submit ``{"plan": ...,
                                             "priority"}``
GET        ``/jobs``                         list job summaries
GET        ``/jobs/<id>``                    one job summary
POST       ``/jobs/<id>/cancel``             cancel (checkpoint-
                                             preserving)
GET        ``/jobs/<id>/events``             typed events (``?since=N``
                                             cursor)
GET        ``/jobs/<id>/result``             stored canonical result
                                             bytes
POST       ``/shutdown``                     drain and stop the server
POST       ``/agents``                       register ``{"name",
                                             "agent_id"?}``
GET        ``/agents``                       list registered agents
POST       ``/agents/<a>/heartbeat``         renew ``{"jobs": [...]}``
POST       ``/agents/<a>/claim``             lease the next queued job
POST       ``/agents/<a>/leave``             deregister (leases expire)
POST       ``/agents/<a>/jobs/<j>/events``   stream typed events back
POST       ``/agents/<a>/jobs/<j>/complete``  upload terminal outcome
=========  ================================  ============================

The ``/agents`` family is the worker-agent federation protocol spoken
by :class:`repro.service.agent.WorkerAgent` (``repro agent``).  Errors
are typed: an unknown agent id is ``404`` (the agent re-registers under
the same id), and acting on a lease no longer held is ``409`` (the
agent drops the work -- the job re-queued and will finish elsewhere,
byte-identically).

``/result`` streams the result store's canonical bytes verbatim, so two
submissions of an identical plan receive byte-identical bodies -- the
service-smoke CI job asserts exactly that.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.events import event_from_dict
from repro.plans import RunPlan
from repro.service.service import (
    SearchService,
    StaleLeaseError,
    UnknownAgentError,
    UnknownJobError,
)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to one :class:`SearchService`."""

    #: Threads die with the process; ``/shutdown`` is the clean path.
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SearchService):
        super().__init__(address, _Handler)
        self.service = service
        self._shutdown_requested = threading.Event()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (from a handler thread)."""
        self._shutdown_requested.set()
        # shutdown() must not run on a handler thread (it joins the
        # serve loop); a helper thread breaks the cycle.
        threading.Thread(target=self.shutdown, daemon=True).start()


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the bound service; JSON in, JSON out."""

    server: ServiceHTTPServer
    #: Quieter than the default (no per-request stderr lines).
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        """Suppress the default per-request stderr logging."""

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch GET routes."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["health"]:
                self._send_json(200, self._health())
            elif parts == ["jobs"]:
                service = self.server.service
                self._send_json(
                    200,
                    {"jobs": [h.info() for h in service.jobs()]},
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                handle = self.server.service.job(parts[1])
                self._send_json(200, handle.info())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                self._get_events(parts[1], url.query)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                self._get_result(parts[1])
            elif parts == ["agents"]:
                self._send_json(
                    200, {"agents": self.server.service.agents()})
            else:
                self._send_json(404, {"error": f"unknown path {url.path!r}"})
        except UnknownJobError as exc:
            self._send_json(404, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch POST routes."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                self._post_job()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                state = self.server.service.cancel(parts[1])
                self._send_json(
                    200, self.server.service.job(parts[1]).info()
                    | {"state": state})
            elif parts == ["agents"]:
                self._post_register()
            elif (len(parts) == 3 and parts[0] == "agents"
                    and parts[2] in ("heartbeat", "claim", "leave")):
                self._post_agent_verb(parts[1], parts[2])
            elif (len(parts) == 5 and parts[0] == "agents"
                    and parts[2] == "jobs"
                    and parts[4] in ("events", "complete")):
                self._post_agent_job(parts[1], parts[3], parts[4])
            elif parts == ["shutdown"]:
                # Finish the reply *before* the serve loop starts dying:
                # flush the bytes to the socket and mark the connection
                # for close, only then trigger shutdown -- handler
                # threads are daemonic, so an unflushed reply would race
                # process exit and the client could read a torn body.
                self._send_json(200, {"status": "shutting down"})
                self.wfile.flush()
                self.close_connection = True
                self.server.request_shutdown()
            else:
                self._send_json(404, {"error": f"unknown path {url.path!r}"})
        except (UnknownJobError, UnknownAgentError) as exc:
            self._send_json(404, {"error": str(exc)})
        except StaleLeaseError as exc:
            self._send_json(409, {"error": str(exc)})

    # -- route bodies --------------------------------------------------------

    def _health(self) -> dict[str, Any]:
        service = self.server.service
        states: dict[str, int] = {}
        for handle in service.jobs():
            states[handle.state] = states.get(handle.state, 0) + 1
        return {"status": "ok", "jobs": states,
                "agents": len(service.agents()),
                "store_entries": len(service.store)}

    def _post_job(self) -> None:
        try:
            body = self._read_body()
            plan = RunPlan.from_dict(body["plan"])
            priority = int(body.get("priority", 0))
        except (KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad submission: {exc}"})
            return
        before = {h.job_id for h in self.server.service.jobs()}
        handle = self.server.service.submit(plan, priority=priority)
        info = handle.info()
        info["deduped"] = handle.job_id in before
        self._send_json(200, info)

    def _get_events(self, job_id: str, query: str) -> None:
        handle = self.server.service.job(job_id)
        params = parse_qs(query)
        since = int(params.get("since", ["0"])[0])
        events = handle.events(since=since)
        self._send_json(200, {
            "job_id": handle.job_id,
            "state": handle.state,
            "since": since,
            "next": since + len(events),
            "events": [e.to_dict() for e in events],
        })

    def _post_register(self) -> None:
        try:
            body = self._read_body()
            name = body.get("name")
            agent_id = body.get("agent_id")
            for value in (name, agent_id):
                if value is not None and not isinstance(value, str):
                    raise ValueError("name/agent_id must be strings")
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad registration: {exc}"})
            return
        self._send_json(
            200, self.server.service.register_agent(
                name=name, agent_id=agent_id))

    def _post_agent_verb(self, agent_id: str, verb: str) -> None:
        service = self.server.service
        if verb == "claim":
            claim = service.claim_job(agent_id)
            self._send_json(200, {"job": claim})
            return
        if verb == "leave":
            service.deregister_agent(agent_id)
            self._send_json(200, {"status": "left"})
            return
        try:
            body = self._read_body()
            jobs = body.get("jobs", [])
            if not isinstance(jobs, list):
                raise ValueError("'jobs' must be a list of job ids")
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad heartbeat: {exc}"})
            return
        self._send_json(
            200, service.heartbeat(agent_id, [str(j) for j in jobs]))

    def _post_agent_job(self, agent_id: str, job_id: str, verb: str) -> None:
        service = self.server.service
        try:
            body = self._read_body()
            if verb == "events":
                events = [event_from_dict(doc) for doc in body["events"]]
            else:
                outcome = body["outcome"]
                if outcome not in ("done", "failed", "cancelled"):
                    raise ValueError(f"unknown outcome {outcome!r}")
        except (KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad upload: {exc}"})
            return
        if verb == "events":
            recorded = service.record_agent_events(agent_id, job_id, events)
            self._send_json(200, {"recorded": recorded})
            return
        info = service.complete_job(
            agent_id, job_id, outcome,
            payload=body.get("payload"),
            message=body.get("message"),
            completed=int(body.get("completed", 0)),
        )
        self._send_json(200, info)

    def _get_result(self, job_id: str) -> None:
        handle = self.server.service.job(job_id)
        state = handle.state
        if state != "done":
            self._send_json(409, {
                "error": f"job {job_id} is {state}, not done",
                "state": state,
            })
            return
        blob = handle.stored_result_bytes()
        if blob is None:
            self._send_json(406, {
                "error": f"workload {handle.plan.workload!r} has no result "
                "codec; inspect the job in-process instead",
            })
            return
        self._send_bytes(200, blob)

    # -- plumbing ------------------------------------------------------------

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b"{}"
        data = json.loads(raw)
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        self._send_bytes(status, json.dumps(payload).encode())

    def _send_bytes(self, status: int, blob: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)


def make_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    service: SearchService | None = None,
    **service_kwargs: Any,
) -> ServiceHTTPServer:
    """Build (without starting) a bound service HTTP server.

    ``port=0`` binds an ephemeral port (tests); ``service_kwargs`` go
    to the :class:`SearchService` constructor when no service is
    passed.
    """
    if service is None:
        service = SearchService(**service_kwargs)
    return ServiceHTTPServer((host, port), service)


def run_server(server: ServiceHTTPServer) -> None:
    """Serve until ``/shutdown`` or Ctrl-C, then tear down cleanly.

    Blocks the calling thread; the bound service is shut down (asking
    running jobs to stop cooperatively, then waiting) before
    returning.  Both :func:`serve` and the ``repro serve`` CLI verb
    run through here, so teardown semantics exist once.
    """
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.shutdown(wait=True, cancel_running=True)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    service: SearchService | None = None,
    **service_kwargs: Any,
) -> None:
    """Build a bound server and run it (see :func:`run_server`)."""
    run_server(make_server(host, port, service=service, **service_kwargs))
