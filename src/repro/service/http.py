"""Stdlib-only HTTP JSON front-end for a :class:`SearchService`.

``repro serve`` binds a :class:`ServiceHTTPServer`
(:class:`http.server.ThreadingHTTPServer` underneath -- no third-party
dependency) over one in-process service.  The surface is deliberately
small and plain JSON:

=========  ================================  ============================
Method     Path                              Meaning
=========  ================================  ============================
GET        ``/health``                       liveness + job counts
GET        ``/metrics``                      JSON counters (jobs by
                                             state, per-tenant queue
                                             depth, store hit/miss,
                                             uptime)
POST       ``/jobs``                         submit ``{"plan": ...,
                                             "priority"}``
GET        ``/jobs``                         list job summaries
GET        ``/jobs/<id>``                    one job summary
POST       ``/jobs/<id>/cancel``             cancel (checkpoint-
                                             preserving)
GET        ``/jobs/<id>/events``             typed events (``?since=N``
                                             cursor)
GET        ``/jobs/<id>/result``             stored canonical result
                                             bytes
POST       ``/shutdown``                     drain and stop the server
POST       ``/agents``                       register ``{"name",
                                             "agent_id"?}``
GET        ``/agents``                       list registered agents
POST       ``/agents/<a>/heartbeat``         renew ``{"jobs": [...]}``
POST       ``/agents/<a>/claim``             lease the next queued job
POST       ``/agents/<a>/leave``             deregister (leases expire)
POST       ``/agents/<a>/jobs/<j>/events``   stream typed events back
POST       ``/agents/<a>/jobs/<j>/complete``  upload terminal outcome
=========  ================================  ============================

The ``/agents`` family is the worker-agent federation protocol spoken
by :class:`repro.service.agent.WorkerAgent` (``repro agent``).  Errors
are typed: an unknown agent id is ``404`` (the agent re-registers under
the same id), and acting on a lease no longer held is ``409`` (the
agent drops the work -- the job re-queued and will finish elsewhere,
byte-identically).

``/result`` streams the result store's canonical bytes verbatim, so two
submissions of an identical plan receive byte-identical bodies -- the
service-smoke CI job asserts exactly that.

This module also owns the **request-limit policy** both front ends
share (:data:`MAX_BODY_BYTES` / :data:`REQUEST_TIMEOUT_SECONDS` and
the :func:`validate_content_length` helper): a request body larger
than the cap is refused with ``413`` before it is read, and a client
that stalls mid-request is cut off with ``408`` instead of pinning a
handler thread forever.  The asyncio gateway
(:mod:`repro.service.gateway`) imports the same constants, so the two
front ends can never drift apart on what they accept.

With a :class:`~repro.service.tenants.TenantRegistry` bound
(``make_server(tenants=...)`` / ``repro serve --tenants``), job routes
require an API key (``X-API-Key`` or ``Authorization: Bearer``) and
submissions pass per-tenant quota checks (429 + ``Retry-After`` on
breach) and fair-share priority weighting -- the same
:mod:`repro.service.tenants` gates the gateway uses.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.events import event_from_dict
from repro.plans import RunPlan, plan_hash
from repro.service.metrics import MetricsRegistry
from repro.service.service import (
    JobHandle,
    SearchService,
    StaleLeaseError,
    UnknownAgentError,
    UnknownJobError,
)
from repro.service.tenants import (
    QuotaExceededError,
    TenantAuthError,
    TenantRegistry,
    api_key_from_headers,
    check_quota,
    fair_share_priority,
)

#: Largest request body either front end accepts (413 beyond this).
#: Plans are small JSON documents; remote-agent result uploads are the
#: biggest legitimate bodies and sit far below this.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Socket/read timeout for one request on either front end (408 when a
#: client stalls mid-body; idle keep-alive connections are just closed).
REQUEST_TIMEOUT_SECONDS = 30.0


class BodyTooLargeError(RuntimeError):
    """A request body exceeds :data:`MAX_BODY_BYTES` (HTTP 413).

    Deliberately *not* a ``ValueError``: route handlers map
    ``ValueError`` to 400, and an oversized body must surface as 413
    even from inside those handlers.
    """


class RequestTimeoutError(OSError):
    """A client stalled mid-request past the read timeout (HTTP 408)."""


def validate_content_length(raw: str | None,
                            limit: int = MAX_BODY_BYTES) -> int:
    """Parse and bound a ``Content-Length`` header value.

    Returns the length (0 for a missing header).  Raises
    :class:`ValueError` for non-integer or negative values (HTTP 400)
    and :class:`BodyTooLargeError` beyond ``limit`` (HTTP 413) --
    *before* any body byte is read, so oversized uploads cost nothing.
    """
    if raw is None:
        return 0
    try:
        length = int(raw)
    except (TypeError, ValueError):
        raise ValueError(f"invalid Content-Length {raw!r}") from None
    if length < 0:
        raise ValueError(f"invalid Content-Length {raw!r}")
    if length > limit:
        raise BodyTooLargeError(
            f"request body of {length} bytes exceeds the {limit}-byte limit"
        )
    return length


def health_payload(service: SearchService) -> dict[str, Any]:
    """The ``/health`` JSON document (shared by both front ends)."""
    states: dict[str, int] = {}
    for handle in service.jobs():
        state = handle.state
        states[state] = states.get(state, 0) + 1
    return {"status": "ok", "jobs": states,
            "agents": len(service.agents()),
            "store_entries": len(service.store)}


def events_payload(handle: JobHandle, since: int) -> dict[str, Any]:
    """The ``/jobs/<id>/events`` JSON page (shared by both front ends).

    The state is read *before* the event log: the service appends a
    job's final events and flips it to a terminal state under one lock
    hold, so a page whose ``state`` is terminal is guaranteed to carry
    the complete tail of the log.  Read the other way round, a client
    could see ``"state": "done"`` with the completion events missing
    and stop polling one page early.
    """
    state = handle.state
    events = handle.events(since=since)
    return {
        "job_id": handle.job_id,
        "state": state,
        "since": since,
        "next": since + len(events),
        "events": [e.to_dict() for e in events],
    }


class BackpressureError(RuntimeError):
    """The service's accept queue is saturated (HTTP 503).

    Attributes:
        retry_after: suggested client wait before retrying, seconds.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


def admit_submission(
    service: SearchService,
    tenants: TenantRegistry | None,
    headers: dict[str, str],
    plan: RunPlan,
    priority: int,
    max_pending: int | None = None,
) -> tuple[JobHandle, bool]:
    """The one admission path both front ends submit through.

    Runs, in order: tenant authentication (:class:`TenantAuthError`
    -> 401/403), dedup short-circuit (a plan the service already
    tracks as queued/running/done coalesces regardless of quotas -- it
    adds no load), per-tenant quota checks
    (:class:`QuotaExceededError` -> 429), service-wide backpressure
    (``max_pending`` queued jobs -> :class:`BackpressureError` ->
    503), fair-share priority weighting, and finally
    :meth:`SearchService.submit`.  Returns ``(handle, deduped)``,
    where ``deduped`` means the service already knew this plan (the
    wire field old clients rely on).
    """
    tenant = None
    if tenants is not None:
        tenant = tenants.authenticate(api_key_from_headers(headers))
    tenant_name = None if tenant is None else tenant.name
    existing = service.job_by_hash(plan_hash(plan))
    if existing is not None and existing.state in ("queued", "running",
                                                   "done"):
        # Coalesce: the service hands back the job it already tracks,
        # so this submission adds no load and bypasses quota checks.
        return service.submit(plan, priority=priority,
                              tenant=tenant_name), True
    effective = priority
    if tenant is not None:
        load = service.tenant_load(tenant_name)
        check_quota(tenant, load["queued"], load["running"])
        effective = fair_share_priority(
            priority, tenant.weight, load["queued"] + load["running"])
    if max_pending is not None and service.queued_count() >= max_pending:
        raise BackpressureError(
            f"accept queue is full ({max_pending} queued jobs); "
            "retry shortly"
        )
    handle = service.submit(plan, priority=effective, tenant=tenant_name)
    return handle, existing is not None


def require_tenant(tenants: TenantRegistry | None,
                   headers: dict[str, str]) -> None:
    """Authenticate a non-submit job route when tenancy is enabled.

    No-op without a registry (open mode).  Raises
    :class:`TenantAuthError` subclasses for missing/unknown keys.
    """
    if tenants is not None:
        tenants.authenticate(api_key_from_headers(headers))


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to one :class:`SearchService`.

    ``tenants`` (a :class:`TenantRegistry`) switches the job routes to
    authenticated multi-tenant mode; ``max_pending`` bounds the accept
    queue (503 + ``Retry-After`` beyond it).  Both default to off so a
    bare server keeps the historical open, unbounded behaviour.
    """

    #: Threads die with the process; ``/shutdown`` is the clean path.
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SearchService,
                 tenants: TenantRegistry | None = None,
                 max_pending: int | None = None):
        super().__init__(address, _Handler)
        self.service = service
        self.tenants = tenants
        self.max_pending = max_pending
        self.metrics = MetricsRegistry(service)
        self._shutdown_requested = threading.Event()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (from a handler thread)."""
        self._shutdown_requested.set()
        # shutdown() must not run on a handler thread (it joins the
        # serve loop); a helper thread breaks the cycle.
        threading.Thread(target=self.shutdown, daemon=True).start()


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the bound service; JSON in, JSON out."""

    server: ServiceHTTPServer
    #: Quieter than the default (no per-request stderr lines).
    protocol_version = "HTTP/1.1"
    #: Socket timeout (StreamRequestHandler applies it in setup());
    #: a client that stalls mid-request gets 408 instead of pinning a
    #: handler thread forever.
    timeout = REQUEST_TIMEOUT_SECONDS

    def log_message(self, format: str, *args: Any) -> None:
        """Suppress the default per-request stderr logging."""

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch GET routes."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["health"]:
                self._send_json(200, health_payload(self.server.service))
            elif parts == ["metrics"]:
                self._send_json(200, self.server.metrics.snapshot())
            elif parts == ["jobs"]:
                self._require_tenant()
                service = self.server.service
                self._send_json(
                    200,
                    {"jobs": [h.info() for h in service.jobs()]},
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                self._require_tenant()
                handle = self.server.service.job(parts[1])
                self._send_json(200, handle.info())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                self._require_tenant()
                self._get_events(parts[1], url.query)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                self._require_tenant()
                self._get_result(parts[1])
            elif parts == ["agents"]:
                self._send_json(
                    200, {"agents": self.server.service.agents()})
            else:
                self._send_json(404, {"error": f"unknown path {url.path!r}"})
        except UnknownJobError as exc:
            self._send_json(404, {"error": str(exc)})
        except TenantAuthError as exc:
            self._send_json(exc.status, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch POST routes."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                self._post_job()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._require_tenant()
                state = self.server.service.cancel(parts[1])
                self._send_json(
                    200, self.server.service.job(parts[1]).info()
                    | {"state": state})
            elif parts == ["agents"]:
                self._post_register()
            elif (len(parts) == 3 and parts[0] == "agents"
                    and parts[2] in ("heartbeat", "claim", "leave")):
                self._post_agent_verb(parts[1], parts[2])
            elif (len(parts) == 5 and parts[0] == "agents"
                    and parts[2] == "jobs"
                    and parts[4] in ("events", "complete")):
                self._post_agent_job(parts[1], parts[3], parts[4])
            elif parts == ["shutdown"]:
                self._require_tenant()
                # Finish the reply *before* the serve loop starts dying:
                # flush the bytes to the socket and mark the connection
                # for close, only then trigger shutdown -- handler
                # threads are daemonic, so an unflushed reply would race
                # process exit and the client could read a torn body.
                self._send_json(200, {"status": "shutting down"})
                self.wfile.flush()
                self.close_connection = True
                self.server.request_shutdown()
            else:
                self._send_json(404, {"error": f"unknown path {url.path!r}"})
        except (UnknownJobError, UnknownAgentError) as exc:
            self._send_json(404, {"error": str(exc)})
        except StaleLeaseError as exc:
            self._send_json(409, {"error": str(exc)})
        except TenantAuthError as exc:
            self._send_json(exc.status, {"error": str(exc)})
        except QuotaExceededError as exc:
            self.server.metrics.inc("quota_rejections")
            self._send_json(429, {"error": str(exc),
                                  "tenant": exc.tenant, "limit": exc.limit},
                            headers={"Retry-After":
                                     f"{exc.retry_after:g}"})
        except BackpressureError as exc:
            self.server.metrics.inc("backpressure_rejections")
            self._send_json(503, {"error": str(exc)},
                            headers={"Retry-After":
                                     f"{exc.retry_after:g}"})
        except BodyTooLargeError as exc:
            # The oversized body was never read, so the connection is
            # unusable for another request -- close it with the reply.
            self._send_json(413, {"error": str(exc)})
            self.close_connection = True
        except (RequestTimeoutError, socket.timeout) as exc:
            self._send_json(408, {"error": f"request timed out: {exc}"})
            self.close_connection = True

    # -- route bodies --------------------------------------------------------

    def _require_tenant(self) -> None:
        require_tenant(self.server.tenants, self._header_map())

    def _header_map(self) -> dict[str, str]:
        return {k.lower(): v for k, v in self.headers.items()}

    def _post_job(self) -> None:
        try:
            body = self._read_body()
            plan = RunPlan.from_dict(body["plan"])
            priority = int(body.get("priority", 0))
        except (KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad submission: {exc}"})
            return
        handle, deduped = admit_submission(
            self.server.service, self.server.tenants, self._header_map(),
            plan, priority, max_pending=self.server.max_pending)
        self.server.metrics.inc("submissions")
        info = handle.info()
        info["deduped"] = deduped
        self._send_json(200, info)

    def _get_events(self, job_id: str, query: str) -> None:
        handle = self.server.service.job(job_id)
        params = parse_qs(query)
        try:
            since = int(params.get("since", ["0"])[0])
        except ValueError:
            self._send_json(
                400, {"error": "since must be an integer cursor"})
            return
        self._send_json(200, events_payload(handle, since))

    def _post_register(self) -> None:
        try:
            body = self._read_body()
            name = body.get("name")
            agent_id = body.get("agent_id")
            for value in (name, agent_id):
                if value is not None and not isinstance(value, str):
                    raise ValueError("name/agent_id must be strings")
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad registration: {exc}"})
            return
        self._send_json(
            200, self.server.service.register_agent(
                name=name, agent_id=agent_id))

    def _post_agent_verb(self, agent_id: str, verb: str) -> None:
        service = self.server.service
        if verb == "claim":
            claim = service.claim_job(agent_id)
            self._send_json(200, {"job": claim})
            return
        if verb == "leave":
            service.deregister_agent(agent_id)
            self._send_json(200, {"status": "left"})
            return
        try:
            body = self._read_body()
            jobs = body.get("jobs", [])
            if not isinstance(jobs, list):
                raise ValueError("'jobs' must be a list of job ids")
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad heartbeat: {exc}"})
            return
        self._send_json(
            200, service.heartbeat(agent_id, [str(j) for j in jobs]))

    def _post_agent_job(self, agent_id: str, job_id: str, verb: str) -> None:
        service = self.server.service
        try:
            body = self._read_body()
            if verb == "events":
                events = [event_from_dict(doc) for doc in body["events"]]
            else:
                outcome = body["outcome"]
                if outcome not in ("done", "failed", "cancelled"):
                    raise ValueError(f"unknown outcome {outcome!r}")
        except (KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad upload: {exc}"})
            return
        if verb == "events":
            recorded = service.record_agent_events(agent_id, job_id, events)
            self._send_json(200, {"recorded": recorded})
            return
        info = service.complete_job(
            agent_id, job_id, outcome,
            payload=body.get("payload"),
            message=body.get("message"),
            completed=int(body.get("completed", 0)),
        )
        self._send_json(200, info)

    def _get_result(self, job_id: str) -> None:
        handle = self.server.service.job(job_id)
        state = handle.state
        if state != "done":
            self._send_json(409, {
                "error": f"job {job_id} is {state}, not done",
                "state": state,
            })
            return
        blob = handle.stored_result_bytes()
        if blob is None:
            self._send_json(406, {
                "error": f"workload {handle.plan.workload!r} has no result "
                "codec; inspect the job in-process instead",
            })
            return
        self._send_bytes(200, blob)

    # -- plumbing ------------------------------------------------------------

    def _read_body(self) -> dict[str, Any]:
        length = validate_content_length(
            self.headers.get("Content-Length"))
        try:
            raw = self.rfile.read(length) if length else b"{}"
        except socket.timeout as exc:
            raise RequestTimeoutError(
                f"client stalled mid-body after sending "
                f"{length}-byte Content-Length") from exc
        if length and len(raw) < length:
            # The client closed early; nothing sensible to parse.
            raise ValueError(
                f"body truncated: got {len(raw)} of {length} bytes")
        data = json.loads(raw)
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _send_json(self, status: int, payload: dict[str, Any],
                   headers: dict[str, str] | None = None) -> None:
        self._send_bytes(status, json.dumps(payload).encode(),
                         headers=headers)

    def _send_bytes(self, status: int, blob: bytes,
                    headers: dict[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)


def make_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    service: SearchService | None = None,
    tenants: TenantRegistry | None = None,
    max_pending: int | None = None,
    **service_kwargs: Any,
) -> ServiceHTTPServer:
    """Build (without starting) a bound service HTTP server.

    ``port=0`` binds an ephemeral port (tests); ``service_kwargs`` go
    to the :class:`SearchService` constructor when no service is
    passed.  ``tenants`` / ``max_pending`` enable multi-tenant
    admission and backpressure (see :class:`ServiceHTTPServer`).
    """
    if service is None:
        service = SearchService(**service_kwargs)
    return ServiceHTTPServer((host, port), service, tenants=tenants,
                             max_pending=max_pending)


def run_server(server: ServiceHTTPServer) -> None:
    """Serve until ``/shutdown`` or Ctrl-C, then tear down cleanly.

    Blocks the calling thread; the bound service is shut down (asking
    running jobs to stop cooperatively, then waiting) before
    returning.  Both :func:`serve` and the ``repro serve`` CLI verb
    run through here, so teardown semantics exist once.
    """
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.shutdown(wait=True, cancel_running=True)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    service: SearchService | None = None,
    tenants: TenantRegistry | None = None,
    max_pending: int | None = None,
    **service_kwargs: Any,
) -> None:
    """Build a bound server and run it (see :func:`run_server`)."""
    run_server(make_server(host, port, service=service, tenants=tenants,
                           max_pending=max_pending, **service_kwargs))
