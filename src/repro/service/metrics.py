"""Service observability: one registry, one ``/metrics`` JSON shape.

Both HTTP front ends -- the sync :mod:`repro.service.http` server and
the asyncio :mod:`repro.service.gateway` -- answer ``GET /metrics``
from a :class:`MetricsRegistry` bound to their
:class:`~repro.service.SearchService`.  The snapshot is plain JSON
counters and gauges, cheap enough to poll:

* ``jobs`` -- job counts by lifecycle state;
* ``queue_depth`` -- queued jobs per tenant (anonymous submissions
  count under :data:`ANONYMOUS_TENANT`);
* ``store`` -- result-store entries plus hit/miss counters;
* ``estimator`` -- process-wide latency-estimator cache counters: the
  tiling-memo hit/miss rates per layer-kind bucket (``depthwise`` /
  ``pointwise`` / ``standard`` and the ``all`` total), so the dw/pw
  tiling path of MobileNet-class jobs is observable; when a shared
  on-disk tiling tier is configured, a ``disk`` bucket reports its
  hit rate (how often another worker's designs answered a lookup);
* ``pool`` -- the service's :class:`~repro.service.pool.WorkerPool`
  counters (``pool.dispatch``, ``worker.reuse``, ``worker.spawn``,
  ``worker.death``, ``workers.alive``), all zero until the first
  process-backend job builds the pool;
* ``counters`` -- front-end counters (requests served, SSE streams
  opened, events fanned out, 429/503 rejections, ...), registered by
  whoever owns the front end via :meth:`MetricsRegistry.inc`;
* ``gauges`` -- live callables (active SSE streams, open
  connections), registered via :meth:`MetricsRegistry.gauge`;
* ``uptime_seconds`` -- since the registry was built (server start).

The registry is thread-safe: worker threads bump counters while the
front end snapshots concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import SearchService

#: Tenant bucket for submissions that carried no tenant attribution.
ANONYMOUS_TENANT = "anonymous"


class MetricsRegistry:
    """Counters + gauges + service-derived stats behind ``/metrics``.

    Parameters:
        service: the service whose jobs/store the snapshot reflects.
        clock: monotonic clock (injectable for tests).
    """

    def __init__(self, service: "SearchService",
                 clock: Callable[[], float] = time.monotonic):
        self._service = service
        self._clock = clock
        self._started = clock()
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, Callable[[], Any]] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump counter ``name`` by ``amount`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """The current value of counter ``name`` (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, read: Callable[[], Any]) -> None:
        """Register a live gauge: ``read()`` is called per snapshot."""
        with self._lock:
            self._gauges[name] = read

    def snapshot(self) -> dict[str, Any]:
        """The ``/metrics`` JSON document, assembled fresh per call."""
        # Lazy import: metrics stays importable without the FPGA stack.
        from repro.fpga.tiling import process_memo_snapshot

        jobs: dict[str, int] = {}
        queue_depth: dict[str, int] = {}
        for handle in self._service.jobs():
            info = handle.info()
            state = info["state"]
            jobs[state] = jobs.get(state, 0) + 1
            if state in ("queued", "running"):
                tenant = info.get("tenant") or ANONYMOUS_TENANT
                queue_depth[tenant] = queue_depth.get(tenant, 0) + 1
        store = self._service.store
        with self._lock:
            counters = dict(self._counters)
            gauges = {name: read() for name, read in self._gauges.items()}
        return {
            "uptime_seconds": self._clock() - self._started,
            "jobs": jobs,
            "queue_depth": queue_depth,
            "store": {
                "entries": len(store),
                "hits": store.hits,
                "misses": store.misses,
            },
            "estimator": {"tiling_memo": process_memo_snapshot()},
            "pool": self._service.pool_stats(),
            "counters": counters,
            "gauges": gauges,
        }
