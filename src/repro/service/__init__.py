"""Search-as-a-service: queued, deduped, cancellable plan execution.

This package turns the one-shot execution engine into a long-lived
service:

* :class:`SearchService` -- ``submit(plan) -> JobHandle`` with a
  priority queue, a bounded worker pool, job lifecycle states
  (queued / running / cancelled / failed / done), cooperative
  cancellation that checkpoints, and in-flight dedup of identical
  plans;
* :class:`ResultStore` -- a content-addressed store keyed by
  :func:`repro.plans.plan_hash`, so resubmitting an identical plan
  returns the stored result byte-identically without re-running;
* :func:`execute_plan` -- the single workload dispatcher every
  execution surface shares (:meth:`repro.api.Session.run` is a thin
  synchronous wrapper over a one-job service);
* :func:`serve <repro.service.http.serve>` / :class:`ServiceClient` --
  a stdlib-only HTTP JSON endpoint (``repro serve``) and its client
  (``repro submit``).
"""

from repro.service.client import ServiceClient
from repro.service.executor import execute_plan
from repro.service.service import (
    JOB_STATES,
    JobCancelledError,
    JobHandle,
    SearchService,
    UnknownJobError,
)
from repro.service.store import ResultStore, is_cacheable

__all__ = [
    "JOB_STATES",
    "JobCancelledError",
    "JobHandle",
    "ResultStore",
    "SearchService",
    "ServiceClient",
    "UnknownJobError",
    "execute_plan",
    "is_cacheable",
]
